// Throughput/latency bench for the batch ranking service: runs the same
// n-job stream at increasing executor counts and writes
// BENCH_service.json (shared trace::RunReport format) with jobs/sec and
// p50/p99 job latency per worker count, plus a telemetry-overhead row
// that pins the cost of the observability plane.
//
// Job-level parallelism is the scaling story: each executor runs the
// pipeline's kernels inline (util/parallel InlineRegion), so adding
// executors multiplies concurrent jobs instead of contending for one
// kernel-level pool. The report records hardware_concurrency — on a
// single-core host every worker count serializes onto one core and the
// ratios stay flat; read the numbers in that light rather than expecting
// the k-core scaling a wider machine shows.
//
// Percentiles come from metrics::Histogram::Snapshot::quantile — the same
// bucket-interpolation formula the telemetry snapshot exporter and
// `crowdrank top` use — so the bench, the JSONL feed, and the live view
// all report latency identically.
//
// Set CROWDRANK_BENCH_SMOKE=1 for the CI canary scale (fewer jobs,
// fewer worker counts); the smoke report is ratcheted against
// bench/baselines/BENCH_service_smoke.json by tools/check_bench.py,
// which asserts the `telemetry_overhead_ok` boolean: the telemetry-on
// stream must stay within 3% (plus an additive noise floor) of the
// telemetry-off stream — and the `arena_zero_steady` boolean: once the
// executors' per-job arenas are warm, serving more jobs must request
// zero further blocks from the system allocator.
//
// The allocator overrides at the bottom route through malloc/free, which
// GCC's inliner misreads as new/free mismatches at the use sites — a
// false positive for replaced global allocators, silenced file-wide.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "crowdrank.hpp"

namespace {

/// Global allocation counters fed by the operator new overrides at the
/// bottom of this file. Read only at quiescent points (after drain()),
/// so executor-thread allocations are attributed to the pass that caused
/// them.
std::atomic<std::uint64_t> g_new_calls{0};
std::atomic<std::uint64_t> g_new_bytes{0};

using namespace crowdrank;

bool smoke_mode() {
  const char* env = std::getenv("CROWDRANK_BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

/// One simulated vote batch reused by every job (jobs differ by seed).
VoteBatch make_batch(std::size_t n, std::size_t workers, Rng& rng) {
  VoteBatch votes;
  for (WorkerId w = 0; w < workers; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        // Mostly-consistent crowd: lower id preferred 85% of the time.
        votes.push_back(Vote{w, i, j, rng.bernoulli(0.85)});
      }
    }
  }
  return votes;
}

struct SweepPoint {
  std::size_t workers;
  double wall_ms;
  double jobs_per_sec;
  double p50_ms;
  double p99_ms;
  std::size_t completed;
};

SweepPoint run_sweep(std::size_t workers, const VoteBatch& votes,
                     std::size_t object_count, std::size_t job_count,
                     obs::Telemetry* telemetry = nullptr) {
  service::ServiceConfig config;
  config.worker_count = workers;
  config.queue_capacity = job_count;
  config.telemetry = telemetry;
  service::RankingService svc(config);

  const Stopwatch wall;
  for (std::size_t k = 0; k < job_count; ++k) {
    service::RankingJob job;
    job.votes = votes;
    job.object_count = object_count;
    job.seed = k + 1;
    svc.submit(std::move(job));
  }
  const std::vector<service::JobResult> results = svc.drain();
  const double wall_ms = wall.elapsed_millis();

  SweepPoint point{};
  point.workers = workers;
  point.wall_ms = wall_ms;
  point.jobs_per_sec = 1e3 * static_cast<double>(job_count) / wall_ms;
  metrics::Histogram latency;
  for (const service::JobResult& r : results) {
    latency.observe(r.queue_ms + r.run_ms);
    if (r.outcome == service::JobOutcome::Completed) {
      ++point.completed;
    }
  }
  const metrics::Histogram::Snapshot snap = latency.snapshot();
  point.p50_ms = snap.quantile(0.50);
  point.p99_ms = snap.quantile(0.99);
  return point;
}

/// Telemetry-overhead probe: the same single-worker stream with the full
/// observability plane on (flight recorder + snapshot exporter at a
/// service-realistic period) vs off, best-of-`reps` each to shave
/// scheduler noise. The additive floor keeps the 3% band meaningful on
/// short smoke streams where two back-to-back runs jitter by more than
/// the budget.
struct OverheadPoint {
  double wall_off_ms = 0.0;
  double wall_on_ms = 0.0;
  double overhead_pct = 0.0;
  bool ok = false;
};

OverheadPoint measure_overhead(const VoteBatch& votes,
                               std::size_t object_count,
                               std::size_t job_count, int reps) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "crowdrank_bench_telemetry";
  fs::remove_all(dir);

  OverheadPoint point;
  for (int rep = 0; rep < reps; ++rep) {
    const SweepPoint off =
        run_sweep(/*workers=*/1, votes, object_count, job_count);
    if (rep == 0 || off.wall_ms < point.wall_off_ms) {
      point.wall_off_ms = off.wall_ms;
    }

    obs::TelemetryConfig config;
    config.directory = (dir / ("rep_" + std::to_string(rep))).string();
    config.period = std::chrono::milliseconds(50);
    obs::Telemetry telemetry(std::move(config), /*executor_count=*/1);
    const SweepPoint on =
        run_sweep(/*workers=*/1, votes, object_count, job_count, &telemetry);
    if (rep == 0 || on.wall_ms < point.wall_on_ms) {
      point.wall_on_ms = on.wall_ms;
    }
  }
  fs::remove_all(dir);

  point.overhead_pct =
      100.0 * (point.wall_on_ms - point.wall_off_ms) / point.wall_off_ms;
  // The gate: <3% relative, with an additive floor for short streams.
  point.ok = point.wall_on_ms <= point.wall_off_ms * 1.03 + 50.0;
  return point;
}

/// Warm-vs-cold probe: the same single-worker job stream served twice
/// against one ResultCache. The cold pass computes and stores every
/// result; the warm pass must settle each job from the cache without
/// entering the pipeline. `cache_correct` pins that every warm result is
/// a cache hit bitwise-identical to its cold counterpart — the ratchet
/// (tools/check_bench.py) asserts it, so a silently-broken cache fails
/// CI even if it happens to be fast.
struct WarmPoint {
  double wall_cold_ms = 0.0;
  double wall_warm_ms = 0.0;
  double warm_speedup = 0.0;
  double cache_hit_us = 0.0;  ///< mean per-job settle time when warm
  bool cache_correct = false;
};

WarmPoint measure_warm(const VoteBatch& votes, std::size_t object_count,
                       std::size_t job_count) {
  // Distinct seeds give every job its own content key; capacity above
  // job_count keeps the cold pass resident for the warm pass.
  service::ResultCacheConfig cache_config;
  cache_config.capacity = job_count + 1;
  service::ResultCache cache(cache_config);

  const auto run_pass = [&] {
    service::ServiceConfig config;
    config.worker_count = 1;
    config.queue_capacity = job_count;
    config.cache = &cache;
    service::RankingService svc(config);
    const Stopwatch wall;
    for (std::size_t k = 0; k < job_count; ++k) {
      service::RankingJob job;
      job.votes = votes;
      job.object_count = object_count;
      job.seed = k + 1;
      svc.submit(std::move(job));
    }
    std::vector<service::JobResult> results = svc.drain();
    return std::make_pair(wall.elapsed_millis(), std::move(results));
  };

  const auto [cold_ms, cold] = run_pass();
  const auto [warm_ms, warm] = run_pass();

  WarmPoint point;
  point.wall_cold_ms = cold_ms;
  point.wall_warm_ms = warm_ms;
  point.warm_speedup = cold_ms / warm_ms;
  point.cache_hit_us =
      1e3 * warm_ms / static_cast<double>(job_count);
  bool correct = cold.size() == warm.size();
  for (std::size_t k = 0; correct && k < cold.size(); ++k) {
    correct = warm[k].served_from_cache &&
              warm[k].outcome == cold[k].outcome &&
              warm[k].ranking == cold[k].ranking &&
              warm[k].hardening == cold[k].hardening &&
              warm[k].log_probability == cold[k].log_probability &&
              warm[k].artifact_key == cold[k].artifact_key;
  }
  point.cache_correct = correct;
  return point;
}

/// Allocation probe: the same single-worker stream served twice by ONE
/// service instance. The cold pass grows the executors' per-job arenas
/// (util/arena.hpp) to the high-water mark; the warm pass must serve every
/// job from the retained blocks. `arena_zero_steady` pins the contract:
/// the arena `system_allocs` delta across the warm pass is zero (and no
/// reset was refused), i.e. the serve path stops touching the system
/// allocator once warm. The global-new deltas quantify the remaining
/// per-job traffic — submission copies and result containers at the API
/// boundary, which deliberately live on the heap so they outlive the
/// arena rewind.
struct AllocationPoint {
  double cold_bytes_per_job = 0.0;
  double warm_bytes_per_job = 0.0;
  double cold_allocs_per_job = 0.0;
  double warm_allocs_per_job = 0.0;
  std::uint64_t arena_bytes_peak = 0;
  std::uint64_t arena_system_allocs = 0;
  std::uint64_t arena_system_allocs_delta = 0;
  bool arena_zero_steady = false;
};

AllocationPoint measure_allocation(const VoteBatch& votes,
                                   std::size_t object_count,
                                   std::size_t job_count) {
  service::ServiceConfig config;
  config.worker_count = 1;
  config.queue_capacity = job_count;
  service::RankingService svc(config);

  const auto run_pass = [&] {
    for (std::size_t k = 0; k < job_count; ++k) {
      service::RankingJob job;
      job.votes = votes;
      job.object_count = object_count;
      job.seed = k + 1;
      svc.submit(std::move(job));
    }
    (void)svc.drain();
  };

  const std::uint64_t calls0 = g_new_calls.load(std::memory_order_relaxed);
  const std::uint64_t bytes0 = g_new_bytes.load(std::memory_order_relaxed);
  run_pass();  // cold: arenas request their blocks
  const ArenaStats cold_stats = svc.arena_stats();
  const std::uint64_t calls1 = g_new_calls.load(std::memory_order_relaxed);
  const std::uint64_t bytes1 = g_new_bytes.load(std::memory_order_relaxed);
  run_pass();  // warm: retained blocks only
  const ArenaStats warm_stats = svc.arena_stats();
  const std::uint64_t calls2 = g_new_calls.load(std::memory_order_relaxed);
  const std::uint64_t bytes2 = g_new_bytes.load(std::memory_order_relaxed);

  AllocationPoint point;
  const double jobs = static_cast<double>(job_count);
  point.cold_bytes_per_job = static_cast<double>(bytes1 - bytes0) / jobs;
  point.warm_bytes_per_job = static_cast<double>(bytes2 - bytes1) / jobs;
  point.cold_allocs_per_job = static_cast<double>(calls1 - calls0) / jobs;
  point.warm_allocs_per_job = static_cast<double>(calls2 - calls1) / jobs;
  point.arena_bytes_peak = warm_stats.bytes_peak;
  point.arena_system_allocs = warm_stats.system_allocs;
  point.arena_system_allocs_delta =
      warm_stats.system_allocs - cold_stats.system_allocs;
  point.arena_zero_steady = point.arena_system_allocs_delta == 0 &&
                            warm_stats.skipped_resets == 0;
  return point;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const std::size_t n = bench::full_scale() ? 40 : (smoke ? 16 : 24);
  const std::size_t crowd = 8;
  const std::size_t job_count = smoke ? 40 : 100;
  const unsigned cores = std::thread::hardware_concurrency();

  bench::banner("service throughput",
                "batch ranking service: jobs/sec and p50/p99 latency of a " +
                    std::to_string(job_count) +
                    "-job stream vs executor count, plus the telemetry "
                    "plane's overhead");
  std::cout << "hardware_concurrency: " << cores
            << " (worker counts beyond the core count serialize; scaling "
               "ratios are only meaningful up to it)\n\n";

  Rng rng(2024);
  const VoteBatch votes = make_batch(n, crowd, rng);

  trace::RunReport report("service_throughput");
  report.note("jobs", static_cast<std::int64_t>(job_count));
  report.note("objects", static_cast<std::int64_t>(n));
  report.note("votes_per_job", static_cast<std::int64_t>(votes.size()));
  report.note("hardware_concurrency", static_cast<std::int64_t>(cores));

  TableWriter table({"service_workers", "wall_ms", "jobs_per_sec",
                     "p50_ms", "p99_ms", "completed"});
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  double single_worker_rate = 0.0;
  for (const std::size_t workers : worker_counts) {
    const SweepPoint point = run_sweep(workers, votes, n, job_count);
    if (workers == 1) {
      single_worker_rate = point.jobs_per_sec;
    }
    table.add_row({std::to_string(point.workers),
                   TableWriter::fmt(point.wall_ms, 1),
                   TableWriter::fmt(point.jobs_per_sec, 1),
                   TableWriter::fmt(point.p50_ms, 2),
                   TableWriter::fmt(point.p99_ms, 2),
                   std::to_string(point.completed)});

    trace::RunReport::Run& run =
        report.add_run("workers_" + std::to_string(point.workers));
    run.note("service_workers", static_cast<std::int64_t>(point.workers));
    run.note("wall_ms", point.wall_ms);
    run.note("jobs_per_sec", point.jobs_per_sec);
    run.note("p50_ms", point.p50_ms);
    run.note("p99_ms", point.p99_ms);
    run.note("completed", static_cast<std::int64_t>(point.completed));
    run.note("speedup_vs_single", point.jobs_per_sec / single_worker_rate);
  }
  bench::emit(table);

  const OverheadPoint overhead =
      measure_overhead(votes, n, job_count, /*reps=*/smoke ? 2 : 3);
  std::cout << "\ntelemetry overhead (1 worker, best of "
            << (smoke ? 2 : 3) << "): off "
            << TableWriter::fmt(overhead.wall_off_ms, 1) << " ms, on "
            << TableWriter::fmt(overhead.wall_on_ms, 1) << " ms ("
            << TableWriter::fmt(overhead.overhead_pct, 2) << "%), "
            << (overhead.ok ? "within" : "EXCEEDS") << " the 3% budget\n";

  trace::RunReport::Run& run = report.add_run("telemetry_overhead");
  run.note("wall_off_ms", overhead.wall_off_ms);
  run.note("wall_on_ms", overhead.wall_on_ms);
  run.note("overhead_pct", overhead.overhead_pct);
  run.note("telemetry_overhead_ok", overhead.ok);

  const WarmPoint warm = measure_warm(votes, n, job_count);
  std::cout << "warm serving (result cache, 1 worker): cold "
            << TableWriter::fmt(warm.wall_cold_ms, 1) << " ms, warm "
            << TableWriter::fmt(warm.wall_warm_ms, 1) << " ms ("
            << TableWriter::fmt(warm.warm_speedup, 1) << "x, "
            << TableWriter::fmt(warm.cache_hit_us, 1)
            << " us/hit), results "
            << (warm.cache_correct ? "bitwise-identical"
                                   : "DIVERGED FROM COLD RUN")
            << "\n";

  trace::RunReport::Run& warm_run = report.add_run("warm_cache");
  warm_run.note("wall_cold_ms", warm.wall_cold_ms);
  warm_run.note("wall_warm_ms", warm.wall_warm_ms);
  warm_run.note("warm_speedup", warm.warm_speedup);
  warm_run.note("cache_hit_us", warm.cache_hit_us);
  warm_run.note("cache_correct", warm.cache_correct);

  const AllocationPoint alloc = measure_allocation(votes, n, job_count);
  std::cout << "allocation (1 worker, global new): cold "
            << TableWriter::fmt(alloc.cold_bytes_per_job / 1024.0, 1)
            << " KiB/job (" << TableWriter::fmt(alloc.cold_allocs_per_job, 0)
            << " allocs), warm "
            << TableWriter::fmt(alloc.warm_bytes_per_job / 1024.0, 1)
            << " KiB/job (" << TableWriter::fmt(alloc.warm_allocs_per_job, 0)
            << " allocs); arena peak "
            << TableWriter::fmt(
                   static_cast<double>(alloc.arena_bytes_peak) / 1024.0, 1)
            << " KiB, steady-state system allocs "
            << (alloc.arena_zero_steady ? "ZERO" : "NONZERO (regression)")
            << "\n";

  trace::RunReport::Run& alloc_run = report.add_run("allocation");
  alloc_run.note("cold_bytes_per_job", alloc.cold_bytes_per_job);
  alloc_run.note("warm_bytes_per_job", alloc.warm_bytes_per_job);
  alloc_run.note("cold_allocs_per_job", alloc.cold_allocs_per_job);
  alloc_run.note("warm_allocs_per_job", alloc.warm_allocs_per_job);
  alloc_run.note("arena_bytes_peak",
                 static_cast<std::int64_t>(alloc.arena_bytes_peak));
  alloc_run.note("arena_system_allocs",
                 static_cast<std::int64_t>(alloc.arena_system_allocs));
  alloc_run.note("arena_zero_steady", alloc.arena_zero_steady);

  if (!report.write_file("BENCH_service.json")) {
    std::cerr << "ERROR: cannot write BENCH_service.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_service.json\n";
  return (overhead.ok && warm.cache_correct && alloc.arena_zero_steady) ? 0
                                                                        : 1;
}

// ---------------------------------------------------------------------
// Allocation counting: replace the global allocator with a counting
// malloc shim. Defined after all bench code to keep the overrides obvious.
// ---------------------------------------------------------------------

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  g_new_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
