// Throughput/latency bench for the batch ranking service: runs the same
// n-job stream at increasing executor counts and writes
// BENCH_service.json (shared trace::RunReport format) with jobs/sec and
// p50/p99 job latency per worker count.
//
// Job-level parallelism is the scaling story: each executor runs the
// pipeline's kernels inline (util/parallel InlineRegion), so adding
// executors multiplies concurrent jobs instead of contending for one
// kernel-level pool. The report records hardware_concurrency — on a
// single-core host every worker count serializes onto one core and the
// ratios stay flat; read the numbers in that light rather than expecting
// the k-core scaling a wider machine shows.
#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "crowdrank.hpp"

namespace {

using namespace crowdrank;

/// One simulated vote batch reused by every job (jobs differ by seed).
VoteBatch make_batch(std::size_t n, std::size_t workers, Rng& rng) {
  VoteBatch votes;
  for (WorkerId w = 0; w < workers; ++w) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        // Mostly-consistent crowd: lower id preferred 85% of the time.
        votes.push_back(Vote{w, i, j, rng.bernoulli(0.85)});
      }
    }
  }
  return votes;
}

struct SweepPoint {
  std::size_t workers;
  double wall_ms;
  double jobs_per_sec;
  double p50_ms;
  double p99_ms;
  std::size_t completed;
};

SweepPoint run_sweep(std::size_t workers, const VoteBatch& votes,
                     std::size_t object_count, std::size_t job_count) {
  service::ServiceConfig config;
  config.worker_count = workers;
  config.queue_capacity = job_count;
  service::RankingService svc(config);

  const Stopwatch wall;
  for (std::size_t k = 0; k < job_count; ++k) {
    service::RankingJob job;
    job.votes = votes;
    job.object_count = object_count;
    job.seed = k + 1;
    svc.submit(std::move(job));
  }
  const std::vector<service::JobResult> results = svc.drain();
  const double wall_ms = wall.elapsed_millis();

  SweepPoint point{};
  point.workers = workers;
  point.wall_ms = wall_ms;
  point.jobs_per_sec = 1e3 * static_cast<double>(job_count) / wall_ms;
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const service::JobResult& r : results) {
    latencies.push_back(r.queue_ms + r.run_ms);
    if (r.outcome == service::JobOutcome::Completed) {
      ++point.completed;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    const std::size_t idx = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
    return latencies[idx];
  };
  point.p50_ms = percentile(0.50);
  point.p99_ms = percentile(0.99);
  return point;
}

}  // namespace

int main() {
  const std::size_t n = bench::full_scale() ? 40 : 24;
  const std::size_t crowd = 8;
  const std::size_t job_count = 100;
  const unsigned cores = std::thread::hardware_concurrency();

  bench::banner("service throughput",
                "batch ranking service: jobs/sec and p50/p99 latency of a " +
                    std::to_string(job_count) +
                    "-job stream vs executor count");
  std::cout << "hardware_concurrency: " << cores
            << " (worker counts beyond the core count serialize; scaling "
               "ratios are only meaningful up to it)\n\n";

  Rng rng(2024);
  const VoteBatch votes = make_batch(n, crowd, rng);

  trace::RunReport report("service_throughput");
  report.note("jobs", static_cast<std::int64_t>(job_count));
  report.note("objects", static_cast<std::int64_t>(n));
  report.note("votes_per_job", static_cast<std::int64_t>(votes.size()));
  report.note("hardware_concurrency", static_cast<std::int64_t>(cores));

  TableWriter table({"service_workers", "wall_ms", "jobs_per_sec",
                     "p50_ms", "p99_ms", "completed"});
  double single_worker_rate = 0.0;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const SweepPoint point = run_sweep(workers, votes, n, job_count);
    if (workers == 1) {
      single_worker_rate = point.jobs_per_sec;
    }
    table.add_row({std::to_string(point.workers),
                   TableWriter::fmt(point.wall_ms, 1),
                   TableWriter::fmt(point.jobs_per_sec, 1),
                   TableWriter::fmt(point.p50_ms, 2),
                   TableWriter::fmt(point.p99_ms, 2),
                   std::to_string(point.completed)});

    trace::RunReport::Run& run =
        report.add_run("workers_" + std::to_string(point.workers));
    run.note("service_workers", static_cast<std::int64_t>(point.workers));
    run.note("wall_ms", point.wall_ms);
    run.note("jobs_per_sec", point.jobs_per_sec);
    run.note("p50_ms", point.p50_ms);
    run.note("p99_ms", point.p99_ms);
    run.note("completed", static_cast<std::int64_t>(point.completed));
    run.note("speedup_vs_single", point.jobs_per_sec / single_worker_rate);
  }
  bench::emit(table);

  if (!report.write_file("BENCH_service.json")) {
    std::cerr << "ERROR: cannot write BENCH_service.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_service.json\n";
  return 0;
}
