// Ablation — Step 3 design choices: walk horizon L, direct/indirect blend
// alpha, and Sum vs Average path aggregation (DESIGN.md §6).
//
// Longer horizons push the closure toward its spectral limit, which is
// what carries the sparse-budget accuracy; Sum aggregation's magnitude
// growth flattens confident long-range weights, aligning the
// max-probability-path objective with the global order.
#include "bench/common.hpp"

namespace crowdrank {
namespace {

double accuracy_for(const PropagationConfig& propagation, double ratio,
                    std::uint64_t seed) {
  ExperimentConfig config;
  config.object_count = 100;
  config.selection_ratio = ratio;
  config.worker_pool_size = 30;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.inference.propagation = propagation;
  config.seed = seed;
  return run_experiment(config).accuracy;
}

void run() {
  bench::banner("Ablation: preference propagation (Step 3)",
                "walk horizon L, blend alpha, Sum vs Average aggregation "
                "(n = 100, medium Gaussian quality)");

  const int trials = 3;

  TableWriter l_table({"r", "L", "accuracy"});
  for (const double ratio : {0.1, 0.3, 0.5}) {
    for (const std::size_t L : {2ul, 4ul, 8ul, 12ul, 20ul}) {
      double acc = 0.0;
      for (int t = 0; t < trials; ++t) {
        PropagationConfig p;
        p.max_length = L;
        acc += accuracy_for(p, ratio, 4000 + t);
      }
      l_table.add_row({TableWriter::fmt(ratio, 1), std::to_string(L),
                       TableWriter::fmt(acc / trials)});
    }
  }
  bench::emit(l_table);

  TableWriter a_table({"r", "alpha", "accuracy"});
  for (const double ratio : {0.1, 0.5}) {
    for (const double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      double acc = 0.0;
      for (int t = 0; t < trials; ++t) {
        PropagationConfig p;
        p.alpha = alpha;
        acc += accuracy_for(p, ratio, 4100 + t);
      }
      a_table.add_row({TableWriter::fmt(ratio, 1),
                       TableWriter::fmt(alpha, 1),
                       TableWriter::fmt(acc / trials)});
    }
  }
  bench::emit(a_table);

  TableWriter agg_table({"r", "aggregation", "accuracy"});
  for (const double ratio : {0.1, 0.3, 0.5}) {
    for (const auto agg : {PathAggregation::Sum, PathAggregation::Average}) {
      double acc = 0.0;
      for (int t = 0; t < trials; ++t) {
        PropagationConfig p;
        p.aggregation = agg;
        acc += accuracy_for(p, ratio, 4200 + t);
      }
      agg_table.add_row(
          {TableWriter::fmt(ratio, 1),
           agg == PathAggregation::Sum ? "sum (paper)" : "average",
           TableWriter::fmt(acc / trials)});
    }
  }
  bench::emit(agg_table);

  // Bounded-walk horizon vs the spectral-limit doubling (the engine
  // default): identical at moderate budgets, decisive on near-spanning
  // (path-like) budgets where L = 12 leaves far pairs without evidence.
  TableWriter mode_table({"r", "mode", "accuracy"});
  for (const double ratio : {0.02, 0.1, 0.3}) {
    for (const auto mode :
         {PropagationMode::BoundedWalks, PropagationMode::SpectralLimit}) {
      double acc = 0.0;
      for (int t = 0; t < trials; ++t) {
        PropagationConfig p;
        p.mode = mode;
        acc += accuracy_for(p, ratio, 4300 + t);
      }
      mode_table.add_row(
          {TableWriter::fmt(ratio, 2),
           mode == PropagationMode::BoundedWalks ? "bounded walks (L=12)"
                                                 : "spectral limit",
           TableWriter::fmt(acc / trials)});
    }
  }
  bench::emit(mode_table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
