// Canonical end-to-end performance benchmark of the inference pipeline.
//
// Runs the full simulated experiment (assignment -> crowd -> Steps 1-4) at
// n in {100, 300, 1000} with fixed seeds, once on a single thread and once
// on the configured thread count, and writes BENCH_pipeline.json (the
// shared trace::RunReport format, stamped with build info) with wall-ms
// per stage, the threads used, the speedup, and whether the two runs
// produced identical rankings (the parallel engine guarantees they do).
// This file is the perf trajectory anchor: every future optimization PR
// should move these numbers and nothing else.
//
// The timed runs deliberately execute with NO trace sink attached — they
// double as the <2% overhead regression check for the tracing layer's
// disabled path. Set CROWDRANK_TRACE=out.json to additionally capture an
// (untimed) traced run of the largest size.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {
namespace {

struct StageTimes {
  double experiment_ms = 0.0;  ///< whole run_experiment wall time
  double total_ms = 0.0;       ///< inference only (sum of the four steps)
  PhaseTimer timings;
  std::vector<VertexId> ranking;
  double accuracy = 0.0;
};

ExperimentConfig make_config(std::size_t n) {
  ExperimentConfig config;
  config.object_count = n;
  config.selection_ratio = 0.1;
  config.worker_pool_size = 30;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.seed = 42 + n;
  return config;
}

StageTimes run_once(std::size_t n) {
  const ExperimentConfig config = make_config(n);
  Stopwatch watch;
  const ExperimentResult r = run_experiment(config);
  StageTimes out;
  out.experiment_ms = watch.elapsed_millis();
  out.timings = r.inference.timings;
  out.total_ms = out.timings.total_seconds() * 1e3;
  const auto order = r.inference.ranking.order();
  out.ranking.assign(order.begin(), order.end());
  out.accuracy = r.accuracy;
  return out;
}

void capture_run(trace::RunReport& report, const std::string& label,
                 const StageTimes& t, std::size_t threads) {
  trace::RunReport::Run& run = report.add_run(label);
  run.note("threads", static_cast<std::int64_t>(threads));
  run.note("experiment_ms", t.experiment_ms);
  run.note("inference_ms", t.total_ms);
  run.note("accuracy", t.accuracy);
  run.capture(t.timings);
}

void run() {
  bench::banner("Pipeline perf",
                "end-to-end inference wall time per stage, serial vs "
                "thread pool (fixed seeds; rankings must be identical)");

  const std::vector<std::size_t> object_counts = {100, 300, 1000};
  const std::size_t parallel_threads = configured_thread_count();

  trace::RunReport report("perf_pipeline");
  report.note("hardware_threads",
              static_cast<std::int64_t>(parallel_threads));

  TableWriter table({"n", "serial_ms", "parallel_ms", "threads", "speedup",
                     "rankings_match"});
  bool all_match = true;
  for (const std::size_t n : object_counts) {
    set_thread_count(1);
    const StageTimes serial = run_once(n);

    set_thread_count(parallel_threads);
    const StageTimes parallel = run_once(n);

    const bool match = serial.ranking == parallel.ranking;
    all_match = all_match && match;
    const double speedup =
        parallel.total_ms > 0.0 ? serial.total_ms / parallel.total_ms : 1.0;

    table.add_row({std::to_string(n), TableWriter::fmt(serial.total_ms),
                   TableWriter::fmt(parallel.total_ms),
                   std::to_string(parallel_threads),
                   TableWriter::fmt(speedup), match ? "yes" : "NO"});

    // (Built up with append rather than operator+ to dodge GCC 12's
    // -Wrestrict false positive on temporary string concatenation.)
    std::string serial_label = "n";
    serial_label.append(std::to_string(n)).append("_serial");
    std::string parallel_label = "n";
    parallel_label.append(std::to_string(n)).append("_parallel");
    capture_run(report, serial_label, serial, 1);
    trace::RunReport::Run& par = report.add_run(parallel_label);
    par.note("threads", static_cast<std::int64_t>(parallel_threads));
    par.note("experiment_ms", parallel.experiment_ms);
    par.note("inference_ms", parallel.total_ms);
    par.note("accuracy", parallel.accuracy);
    par.note("speedup", speedup);
    par.note("rankings_match", match);
    par.capture(parallel.timings);
  }
  report.note("rankings_match", all_match);

  // Optional traced rerun of the largest size (outside the timed loop, so
  // the figures above stay a pure no-sink measurement).
  if (const char* trace_path = std::getenv("CROWDRANK_TRACE")) {
    trace::TraceSink sink;
    {
      trace::ScopedSink scoped(&sink);
      run_once(object_counts.back());
    }
    std::ofstream os(trace_path);
    sink.write_chrome_trace(os);
    trace::RunReport::Run& traced = report.add_run("traced_rerun");
    traced.note("n", static_cast<std::int64_t>(object_counts.back()));
    traced.capture(sink);
    std::cout << "wrote " << trace_path << " (traced rerun, untimed)\n";
  }

  if (!report.write_file("BENCH_pipeline.json")) {
    std::cerr << "ERROR: cannot write BENCH_pipeline.json\n";
    std::exit(1);
  }

  bench::emit(table);
  std::cout << "\nwrote BENCH_pipeline.json\n";
  if (!all_match) {
    std::cerr << "ERROR: serial and parallel rankings differ\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
