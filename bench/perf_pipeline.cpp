// Canonical end-to-end performance benchmark of the inference pipeline.
//
// Runs the full simulated experiment (assignment -> crowd -> Steps 1-4) at
// n in {100, 300, 1000} with fixed seeds, once on a single thread and once
// on the configured thread count, and writes BENCH_pipeline.json (the
// shared trace::RunReport format, stamped with build info) with wall-ms
// per stage, the threads used, the speedup, and whether the two runs
// produced identical rankings (the parallel engine guarantees they do).
// This file is the perf trajectory anchor: every future optimization PR
// should move these numbers and nothing else.
//
// A second "kernels" section isolates the hot-stage kernels the pipeline
// numbers above aggregate: the cache-tiled matrix product vs the untiled
// row-block formulation it replaced (matmul_naive vs matmul_blocked), the
// Gustavson CSR x CSR product vs the dense kernel on propagation-shaped
// sparse operands (spmm_dense vs spmm_sparse — bitwise-identical output is
// asserted, the sparse-first hybrid's correctness contract), and SAPS at
// one thread vs the configured pool (saps_serial vs saps_parallel —
// identical output is asserted). Those labels land in BENCH_pipeline.json
// so the perf trajectory has per-kernel before/after rows.
//
// A third "large n" section breaks the former n=1000 ceiling: end-to-end
// runs at n in {3000, 10000} on degree-16 sparse budgets (l = 8n tasks,
// selection_ratio 16/(n-1)), contrasting spectral_horizon = 4 (Step 3
// never leaves the CSR phase; <10 s at n=10000 on one core) against
// horizon = 8 (accuracy recovers to the full-limit range, and the state
// densifies mid-loop — both regimes asserted). Smoke mode runs only the
// all-sparse n=3000 row.
//
// The timed runs deliberately execute with NO trace sink attached — they
// double as the <2% overhead regression check for the tracing layer's
// disabled path. Set CROWDRANK_TRACE=out.json to additionally capture an
// (untimed) traced run of the largest size. Set CROWDRANK_BENCH_SMOKE=1
// (the CI release job does) to run only n=100 with single reps — a fast
// regression canary that the bench binary and both kernels still work.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/saps.hpp"
#include "core/saps_kernel.hpp"
#include "util/build_info.hpp"
#include "util/matrix.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/sparse_matrix.hpp"
#include "util/trace.hpp"

namespace crowdrank {
namespace {

struct StageTimes {
  double experiment_ms = 0.0;  ///< whole run_experiment wall time
  double total_ms = 0.0;       ///< inference only (sum of the four steps)
  PhaseTimer timings;
  std::vector<VertexId> ranking;
  double accuracy = 0.0;
  PropagationStats step3;
};

ExperimentConfig make_config(std::size_t n) {
  ExperimentConfig config;
  config.object_count = n;
  config.selection_ratio = 0.1;
  config.worker_pool_size = 30;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.seed = 42 + n;
  return config;
}

StageTimes run_config(const ExperimentConfig& config) {
  Stopwatch watch;
  const ExperimentResult r = run_experiment(config);
  StageTimes out;
  out.experiment_ms = watch.elapsed_millis();
  out.timings = r.inference.timings;
  out.total_ms = out.timings.total_seconds() * 1e3;
  const auto order = r.inference.ranking.order();
  out.ranking.assign(order.begin(), order.end());
  out.accuracy = r.accuracy;
  out.step3 = r.inference.step3;
  return out;
}

StageTimes run_once(std::size_t n) { return run_config(make_config(n)); }

bool smoke_mode() {
  const char* env = std::getenv("CROWDRANK_BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

/// The pre-tiling production matmul (row-blocked i-k-j, full-width inner
/// j), kept here verbatim as the naive reference the blocked kernel is
/// measured against. Runs on the same pool with the same grain so the
/// comparison isolates the tiling.
Matrix naive_multiply(const Matrix& lhs, const Matrix& rhs) {
  const std::size_t n = lhs.rows();
  const std::size_t k_dim = lhs.cols();
  const std::size_t m = rhs.cols();
  Matrix out(n, m, 0.0);
  constexpr std::size_t kBlock = 64;
  parallel_for(0, n, 16, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t ii = r0; ii < r1; ii += kBlock) {
      const std::size_t i_end = std::min(ii + kBlock, r1);
      for (std::size_t kk = 0; kk < k_dim; kk += kBlock) {
        const std::size_t k_end = std::min(kk + kBlock, k_dim);
        for (std::size_t i = ii; i < i_end; ++i) {
          auto out_row = out.row(i);
          for (std::size_t k = kk; k < k_end; ++k) {
            const double a = lhs(i, k);
            if (a == 0.0) continue;
            const auto rhs_row = rhs.row(k);
            for (std::size_t j = 0; j < m; ++j) {
              out_row[j] += a * rhs_row[j];
            }
          }
        }
      }
    }
  });
  return out;
}

Matrix random_closure(std::size_t n, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      m(i, j) = w;
      m(j, i) = 1.0 - w;
    }
  }
  return m;
}

/// Propagation-shaped sparse operand: non-negative, ~`degree` stored
/// entries per row — the fill regime the sparse-first doubling runs in.
Matrix random_degree_matrix(std::size_t n, std::size_t degree, Rng& rng) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < degree; ++d) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j != i) {
        m(i, j) = rng.uniform(0.05, 0.95);
      }
    }
  }
  return m;
}

/// Paired timer for the floor-gated A/B kernel rows: returns the
/// minimum single-call milliseconds of each side, sampled in
/// alternating rounds (3 per side, each round ~8 ms of timed calls,
/// sized from one untimed calibration call and capped at 100 samples
/// per round). Two things make this gate-worthy where plain best-of-N
/// is not: the minimum over dozens of samples strips scheduler
/// preemptions that put a 20%+ jitter band on a best-of-3 of a 0.2 ms
/// call, and the A/B/A/B round order lands slow host-frequency drift
/// on both sides of the ratio instead of whichever side ran second.
/// `setup_a`/`setup_b` flip whatever state selects a side (simd
/// backend, pool width) and run once per round, outside the timed
/// samples — pool resizes respawn worker threads, so they must not run
/// per sample.
template <typename SetupA, typename FnA, typename SetupB, typename FnB>
std::pair<double, double> best_ms_pair(SetupA&& setup_a, FnA&& fn_a,
                                       SetupB&& setup_b, FnB&& fn_b) {
  constexpr int kRounds = 3;
  constexpr double kRoundMs = 8.0;
  const auto calibrate = [](auto&& setup, auto&& fn) {
    setup();
    Stopwatch watch;
    fn();
    const double once_ms = watch.elapsed_millis();
    const double want = kRoundMs / (once_ms > 0.01 ? once_ms : 0.01);
    return want > 100.0 ? 100 : static_cast<int>(want) + 1;
  };
  const int samples_a = calibrate(setup_a, fn_a);
  const int samples_b = calibrate(setup_b, fn_b);
  double best_a = 0.0;
  double best_b = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    setup_a();
    for (int r = 0; r < samples_a; ++r) {
      Stopwatch watch;
      fn_a();
      const double ms = watch.elapsed_millis();
      if ((round == 0 && r == 0) || ms < best_a) best_a = ms;
    }
    setup_b();
    for (int r = 0; r < samples_b; ++r) {
      Stopwatch watch;
      fn_b();
      const double ms = watch.elapsed_millis();
      if ((round == 0 && r == 0) || ms < best_b) best_b = ms;
    }
  }
  return {best_a, best_b};
}

/// Per-kernel micro rows: matmul_naive vs matmul_blocked and saps_serial
/// vs saps_parallel at each n, appended to the report under kernel_*
/// labels.
void run_kernel_benches(trace::RunReport& report,
                        const std::vector<std::size_t>& object_counts,
                        std::size_t parallel_threads) {
  TableWriter table({"n", "kernel", "baseline_ms", "new_ms", "ratio"});
  for (const std::size_t n : object_counts) {
    Rng rng(1000 + n);
    const Matrix a = random_closure(n, rng);
    const Matrix b = random_closure(n, rng);

    set_thread_count(parallel_threads);
    Matrix naive_out;
    Matrix blocked_out;
    const auto [naive_ms, blocked_ms] = best_ms_pair(
        [] {}, [&] { naive_out = naive_multiply(a, b); },  //
        [] {}, [&] { blocked_out = Matrix::multiply(a, b); });
    if (!(naive_out == blocked_out)) {
      std::cerr << "ERROR: blocked matmul diverges from naive at n=" << n
                << "\n";
      std::exit(1);
    }
    const double matmul_ratio =
        blocked_ms > 0.0 ? naive_ms / blocked_ms : 1.0;
    table.add_row({std::to_string(n), "matmul_naive/matmul_blocked",
                   TableWriter::fmt(naive_ms), TableWriter::fmt(blocked_ms),
                   TableWriter::fmt(matmul_ratio)});
    std::string matmul_label = "kernel_matmul_n";
    matmul_label.append(std::to_string(n));
    trace::RunReport::Run& matmul = report.add_run(matmul_label);
    matmul.note("n", static_cast<std::int64_t>(n));
    matmul.note("threads", static_cast<std::int64_t>(parallel_threads));
    matmul.note("matmul_naive_ms", naive_ms);
    matmul.note("matmul_blocked_ms", blocked_ms);
    matmul.note("speedup", matmul_ratio);

    // CSR x CSR vs force-densifying on degree-16 operands (the budget
    // shape Step 3's sparse phase multiplies). Both sides start and end
    // in CSR — the hybrid's actual alternative to the sparse kernel is
    // "densify this step, multiply dense, re-compress", so the baseline
    // pays that round trip too. The outputs must agree bit for bit —
    // this is the equivalence the hybrid propagator's representation
    // switch rests on, asserted on every bench run.
    Rng sparse_rng(3000 + n);
    const Matrix sa = random_degree_matrix(n, 16, sparse_rng);
    const Matrix sb = random_degree_matrix(n, 16, sparse_rng);
    const SparseMatrix csr_a = SparseMatrix::from_dense(sa);
    const SparseMatrix csr_b = SparseMatrix::from_dense(sb);
    Matrix spmm_dense_out;
    SparseMatrix spmm_roundtrip_out;
    SparseMatrix spmm_sparse_out;
    const auto [spmm_dense_ms, spmm_sparse_ms] = best_ms_pair(
        [] {},
        [&] {
          spmm_roundtrip_out = SparseMatrix::from_dense(
              Matrix::multiply(csr_a.to_dense(), csr_b.to_dense()));
        },
        [] {},
        [&] { spmm_sparse_out = SparseMatrix::multiply(csr_a, csr_b); });
    spmm_dense_out = Matrix::multiply(sa, sb);
    if (!(spmm_sparse_out.to_dense() == spmm_dense_out)) {
      std::cerr << "ERROR: sparse spmm diverges from dense matmul at n="
                << n << "\n";
      std::exit(1);
    }
    const double spmm_ratio =
        spmm_sparse_ms > 0.0 ? spmm_dense_ms / spmm_sparse_ms : 1.0;
    table.add_row({std::to_string(n), "spmm_dense/spmm_sparse",
                   TableWriter::fmt(spmm_dense_ms),
                   TableWriter::fmt(spmm_sparse_ms),
                   TableWriter::fmt(spmm_ratio)});
    std::string spmm_label = "kernel_spmm_n";
    spmm_label.append(std::to_string(n));
    trace::RunReport::Run& spmm = report.add_run(spmm_label);
    spmm.note("n", static_cast<std::int64_t>(n));
    spmm.note("threads", static_cast<std::int64_t>(parallel_threads));
    spmm.note("spmm_dense_ms", spmm_dense_ms);
    spmm.note("spmm_sparse_ms", spmm_sparse_ms);
    spmm.note("speedup", spmm_ratio);
    // The CSR entry point must never lose to force-densifying on these
    // budget shapes — the dense-fallback regime exists precisely to hold
    // this at small n, and check_bench gates on it.
    spmm.note("speedup_floor", 1.0);
    spmm.note("identical", true);

    // SAPS with the pipeline's default config on the same closure shape;
    // serial vs pooled runs must agree exactly (parallel restarts are
    // deterministic by construction).
    SapsConfig saps_config;
    if (smoke_mode()) saps_config.iterations = 500;
    SapsResult saps_serial;
    SapsResult saps_parallel;
    const auto [saps_serial_ms, saps_parallel_ms] = best_ms_pair(
        [] { set_thread_count(1); },
        [&] {
          Rng saps_rng(2000 + n);
          saps_serial = saps_search(a, saps_config, saps_rng);
        },
        [&] { set_thread_count(parallel_threads); },
        [&] {
          Rng saps_rng(2000 + n);
          saps_parallel = saps_search(a, saps_config, saps_rng);
        });
    set_thread_count(parallel_threads);
    const bool identical =
        saps_serial.best_path == saps_parallel.best_path &&
        saps_serial.log_cost == saps_parallel.log_cost;
    if (!identical) {
      std::cerr << "ERROR: saps_serial and saps_parallel diverge at n=" << n
                << "\n";
      std::exit(1);
    }
    const double saps_ratio =
        saps_parallel_ms > 0.0 ? saps_serial_ms / saps_parallel_ms : 1.0;
    table.add_row({std::to_string(n), "saps_serial/saps_parallel",
                   TableWriter::fmt(saps_serial_ms),
                   TableWriter::fmt(saps_parallel_ms),
                   TableWriter::fmt(saps_ratio)});
    std::string saps_label = "kernel_saps_n";
    saps_label.append(std::to_string(n));
    trace::RunReport::Run& saps = report.add_run(saps_label);
    saps.note("n", static_cast<std::int64_t>(n));
    saps.note("threads", static_cast<std::int64_t>(parallel_threads));
    saps.note("saps_serial_ms", saps_serial_ms);
    saps.note("saps_parallel_ms", saps_parallel_ms);
    saps.note("speedup", saps_ratio);
    // Sub-grain searches take the serial cutoff in saps_search, so the
    // pooled configuration can no longer lose to one thread on tiny n.
    saps.note("speedup_floor", 1.0);
    saps.note("identical", identical);
  }
  std::cout << "\n-- hot-path kernels --\n";
  bench::emit(table);
}

/// Scalar vs AVX2 rows for the three simd-routed kernels (util/simd.hpp):
/// the blocked dense product, the staged-dense CSR product, and the SAPS
/// log-cost matrix fill. Each row times the same call with the dispatch
/// forced to each backend, asserts the outputs are bitwise-identical (the
/// layer's whole design contract), and carries a speedup_floor the bench
/// baselines gate on: 1.5 for the compute-bound matmul and saps fills,
/// 1.0 for the bandwidth-bound staged spmm (see the comment at its call
/// site). Skipped entirely when the host lacks AVX2 — scalar-vs-scalar
/// rows would gate on pure noise.
void run_simd_benches(trace::RunReport& report,
                      const std::vector<std::size_t>& object_counts) {
  if (!simd::avx2_supported()) {
    std::cout << "\n-- simd kernels: skipped (no AVX2 on this host) --\n";
    report.note("simd_rows", false);
    return;
  }
  report.note("simd_rows", true);
  TableWriter table({"n", "kernel", "scalar_ms", "avx2_ms", "speedup"});
  const auto emit_row = [&](const char* kernel, std::size_t n,
                            double scalar_ms, double avx2_ms, bool identical,
                            double floor) {
    if (!identical) {
      std::cerr << "ERROR: scalar and avx2 " << kernel
                << " kernels diverge at n=" << n << "\n";
      std::exit(1);
    }
    const double ratio = avx2_ms > 0.0 ? scalar_ms / avx2_ms : 1.0;
    table.add_row({std::to_string(n), kernel, TableWriter::fmt(scalar_ms),
                   TableWriter::fmt(avx2_ms), TableWriter::fmt(ratio)});
    std::string label = "kernel_";
    label.append(kernel).append("_simd_n").append(std::to_string(n));
    trace::RunReport::Run& run = report.add_run(label);
    run.note("n", static_cast<std::int64_t>(n));
    run.note("scalar_ms", scalar_ms);
    run.note("avx2_ms", avx2_ms);
    run.note("speedup", ratio);
    run.note("speedup_floor", floor);
    run.note("identical", identical);
  };
  std::size_t last_spmm_n = 0;
  for (const std::size_t n : object_counts) {
    // Dense blocked product on closure-shaped operands.
    Rng rng(1000 + n);
    const Matrix a = random_closure(n, rng);
    const Matrix b = random_closure(n, rng);
    Matrix scalar_out;
    Matrix avx2_out;
    const auto [mm_scalar_ms, mm_avx2_ms] = best_ms_pair(
        [] { simd::set_backend(simd::Backend::Scalar); },
        [&] { scalar_out = Matrix::multiply(a, b); },
        [] { simd::set_backend(simd::Backend::Avx2); },
        [&] { avx2_out = Matrix::multiply(a, b); });
    emit_row("matmul", n, mm_scalar_ms, mm_avx2_ms, scalar_out == avx2_out,
             1.5);

    // CSR product on fill ~0.3 operands: dense enough for the staged-dense
    // regime (the simd-routed axpy path), the shape the late doubling
    // steps multiply right before the hybrid densifies. Sized above the
    // full dense-fallback cutoff so the row times the staged regime, not
    // the dense kernel the matmul row already covers (deduplicated when
    // several object counts clamp to the same size).
    const std::size_t spmm_n = std::max<std::size_t>(n, 300);
    if (spmm_n != last_spmm_n) {
      last_spmm_n = spmm_n;
      Rng sparse_rng(4000 + spmm_n);
      const Matrix sa =
          random_degree_matrix(spmm_n, (spmm_n * 3) / 10, sparse_rng);
      const Matrix sb =
          random_degree_matrix(spmm_n, (spmm_n * 3) / 10, sparse_rng);
      const SparseMatrix csr_a = SparseMatrix::from_dense(sa);
      const SparseMatrix csr_b = SparseMatrix::from_dense(sb);
      SparseMatrix spmm_scalar;
      SparseMatrix spmm_avx2;
      const auto [spmm_scalar_ms, spmm_avx2_ms] = best_ms_pair(
          [] { simd::set_backend(simd::Backend::Scalar); },
          [&] { spmm_scalar = SparseMatrix::multiply(csr_a, csr_b); },
          [] { simd::set_backend(simd::Backend::Avx2); },
          [&] { spmm_avx2 = SparseMatrix::multiply(csr_a, csr_b); });
      // The staged product is bandwidth-bound, not compute-bound: every
      // output row streams nnz_row * w rhs doubles through the cache
      // hierarchy, and the scalar backend's strip loop auto-vectorizes
      // to SSE2 at -O3, so the honest AVX2 edge here is ~1.1-1.4x (wider
      // loads against the same L2 traffic), unlike the register-tiled
      // compute-bound rows above and below. The gate therefore only
      // pins "AVX2 never loses".
      emit_row("spmm", spmm_n, spmm_scalar_ms, spmm_avx2_ms,
               spmm_scalar == spmm_avx2, 1.0);
    }

    // SAPS log-cost matrix fill (n^2 pinned logs per search).
    {
      simd::set_backend(simd::Backend::Scalar);
      const SapsCostCache reference(a);
      const auto [fill_scalar_ms, fill_avx2_ms] = best_ms_pair(
          [] { simd::set_backend(simd::Backend::Scalar); },
          [&] { SapsCostCache cache(a); },
          [] { simd::set_backend(simd::Backend::Avx2); },
          [&] { SapsCostCache cache(a); });
      const SapsCostCache vectorized(a);
      const bool saps_identical =
          std::equal(reference.data().begin(), reference.data().end(),
                     vectorized.data().begin(), vectorized.data().end(),
                     [](double x, double y) {
                       return std::memcmp(&x, &y, sizeof(double)) == 0;
                     });
      emit_row("saps", n, fill_scalar_ms, fill_avx2_ms, saps_identical, 1.5);
    }
  }
  simd::reset_backend();
  std::cout << "\n-- simd kernels (scalar vs avx2, bitwise-asserted) --\n";
  bench::emit(table);
}

/// End-to-end runs past the former n=1000 ceiling, all on degree-16
/// budgets (l = 8n tasks). Each row is an (n, spectral_horizon) pair:
///
///  * horizon 4 stays inside the CSR kernels from start to finish (the
///    doubling state only fills up on the final step, after the last fill
///    check) — the pure sparse-phase regime, and the only one that holds
///    Step 3 under ~10 s at n = 10000 on one core. The truncation is a
///    real accuracy trade: length <= 4 walks carry only local evidence,
///    so distant pairs pair-normalize to near-coin-flips and the global
///    Kendall accuracy collapses toward 0.5.
///  * horizon 8 recovers the long-walk global signal (accuracy back in
///    the ~0.85-0.9 range of the full spectral limit at these budgets)
///    and exercises the hybrid's mid-loop densify: the state blows past
///    the fill threshold at step 3 and the final doubling runs dense.
///
/// Both regimes are asserted, not just reported: a horizon-4 row that
/// densifies (or a horizon-8 row that doesn't) means the fill monitoring
/// broke. Single rep per row; smoke mode keeps only the fast all-sparse
/// n=3000 row.
void run_large_n(trace::RunReport& report, std::size_t parallel_threads) {
  struct LargeRun {
    std::size_t n;
    std::size_t horizon;
  };
  const std::vector<LargeRun> runs =
      smoke_mode()
          ? std::vector<LargeRun>{{3000, 4}}
          : std::vector<LargeRun>{{3000, 4}, {3000, 8}, {10000, 4}};
  TableWriter table({"n", "horizon", "experiment_ms", "step3_ms",
                     "fill_ratio", "densify_step", "sparse_gflop",
                     "accuracy"});
  set_thread_count(parallel_threads);
  for (const LargeRun& spec : runs) {
    ExperimentConfig config = make_config(spec.n);
    config.selection_ratio = 16.0 / static_cast<double>(spec.n - 1);
    config.inference.propagation.spectral_horizon = spec.horizon;
    const StageTimes t = run_config(config);
    const double step3_ms = t.timings.seconds("step3_propagation") * 1e3;
    const double gflop = static_cast<double>(t.step3.sparse_flops) / 1e9;
    const bool expect_sparse = spec.horizon <= 4;
    if (expect_sparse != (t.step3.densify_step == 0)) {
      std::cerr << "ERROR: large-n run (n=" << spec.n << ", horizon="
                << spec.horizon << ") densified at step "
                << t.step3.densify_step << "; expected "
                << (expect_sparse ? "all-sparse" : "a mid-loop densify")
                << "\n";
      std::exit(1);
    }
    table.add_row({std::to_string(spec.n), std::to_string(spec.horizon),
                   TableWriter::fmt(t.experiment_ms),
                   TableWriter::fmt(step3_ms),
                   TableWriter::fmt(t.step3.fill_ratio),
                   std::to_string(t.step3.densify_step),
                   TableWriter::fmt(gflop), TableWriter::fmt(t.accuracy)});
    std::string label = "large_n";
    label.append(std::to_string(spec.n))
        .append("_h")
        .append(std::to_string(spec.horizon));
    trace::RunReport::Run& run = report.add_run(label);
    run.note("n", static_cast<std::int64_t>(spec.n));
    run.note("horizon", static_cast<std::int64_t>(spec.horizon));
    run.note("threads", static_cast<std::int64_t>(parallel_threads));
    run.note("experiment_ms", t.experiment_ms);
    run.note("inference_ms", t.total_ms);
    run.note("step3_ms", step3_ms);
    run.note("fill_ratio", t.step3.fill_ratio);
    run.note("densify_step",
             static_cast<std::int64_t>(t.step3.densify_step));
    run.note("sparse_flops",
             static_cast<std::int64_t>(t.step3.sparse_flops));
    run.note("accuracy", t.accuracy);
    run.capture(t.timings);
  }
  std::cout << "\n-- large n (degree-16 budget, sparse-first doubling) --\n";
  bench::emit(table);
}

void capture_run(trace::RunReport& report, const std::string& label,
                 const StageTimes& t, std::size_t threads) {
  trace::RunReport::Run& run = report.add_run(label);
  run.note("threads", static_cast<std::int64_t>(threads));
  run.note("experiment_ms", t.experiment_ms);
  run.note("inference_ms", t.total_ms);
  run.note("accuracy", t.accuracy);
  run.capture(t.timings);
}

void run() {
  bench::banner("Pipeline perf",
                "end-to-end inference wall time per stage, serial vs "
                "thread pool (fixed seeds; rankings must be identical)");

  // Numbers published from an uncommitted tree are not reproducible from
  // the stamped revision; say so loudly up front (the stamp itself still
  // lands in the report either way).
  if (build_info().git_revision.find("-dirty") != std::string::npos) {
    std::cerr << "WARNING: building from a dirty tree ("
              << build_info().git_revision
              << "); commit before regenerating checked-in baselines\n";
  }

  const std::vector<std::size_t> object_counts =
      smoke_mode() ? std::vector<std::size_t>{100}
                   : std::vector<std::size_t>{100, 300, 1000};
  const std::size_t parallel_threads = configured_thread_count();

  trace::RunReport report("perf_pipeline");
  report.note("hardware_threads",
              static_cast<std::int64_t>(parallel_threads));

  TableWriter table({"n", "serial_ms", "parallel_ms", "threads", "speedup",
                     "rankings_match"});
  bool all_match = true;
  for (const std::size_t n : object_counts) {
    set_thread_count(1);
    const StageTimes serial = run_once(n);

    set_thread_count(parallel_threads);
    const StageTimes parallel = run_once(n);

    const bool match = serial.ranking == parallel.ranking;
    all_match = all_match && match;
    const double speedup =
        parallel.total_ms > 0.0 ? serial.total_ms / parallel.total_ms : 1.0;

    table.add_row({std::to_string(n), TableWriter::fmt(serial.total_ms),
                   TableWriter::fmt(parallel.total_ms),
                   std::to_string(parallel_threads),
                   TableWriter::fmt(speedup), match ? "yes" : "NO"});

    // (Built up with append rather than operator+ to dodge GCC 12's
    // -Wrestrict false positive on temporary string concatenation.)
    std::string serial_label = "n";
    serial_label.append(std::to_string(n)).append("_serial");
    std::string parallel_label = "n";
    parallel_label.append(std::to_string(n)).append("_parallel");
    capture_run(report, serial_label, serial, 1);
    trace::RunReport::Run& par = report.add_run(parallel_label);
    par.note("threads", static_cast<std::int64_t>(parallel_threads));
    par.note("experiment_ms", parallel.experiment_ms);
    par.note("inference_ms", parallel.total_ms);
    par.note("accuracy", parallel.accuracy);
    par.note("speedup", speedup);
    par.note("rankings_match", match);
    par.capture(parallel.timings);
  }
  report.note("rankings_match", all_match);

  run_kernel_benches(report, object_counts, parallel_threads);
  run_simd_benches(report, object_counts);
  run_large_n(report, parallel_threads);
  set_thread_count(parallel_threads);

  // Optional traced rerun of the largest size (outside the timed loop, so
  // the figures above stay a pure no-sink measurement).
  if (const char* trace_path = std::getenv("CROWDRANK_TRACE")) {
    trace::TraceSink sink;
    {
      trace::ScopedSink scoped(&sink);
      run_once(object_counts.back());
    }
    std::ofstream os(trace_path);
    sink.write_chrome_trace(os);
    trace::RunReport::Run& traced = report.add_run("traced_rerun");
    traced.note("n", static_cast<std::int64_t>(object_counts.back()));
    traced.capture(sink);
    std::cout << "wrote " << trace_path << " (traced rerun, untimed)\n";
  }

  if (!report.write_file("BENCH_pipeline.json")) {
    std::cerr << "ERROR: cannot write BENCH_pipeline.json\n";
    std::exit(1);
  }

  bench::emit(table);
  std::cout << "\nwrote BENCH_pipeline.json\n";
  if (!all_match) {
    std::cerr << "ERROR: serial and parallel rankings differ\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
