// Canonical end-to-end performance benchmark of the inference pipeline.
//
// Runs the full simulated experiment (assignment -> crowd -> Steps 1-4) at
// n in {100, 300, 1000} with fixed seeds, once on a single thread and once
// on the configured thread count, and writes BENCH_pipeline.json with
// wall-ms per stage, the threads used, the speedup, and whether the two
// runs produced identical rankings (the parallel engine guarantees they
// do). This file is the perf trajectory anchor: every future optimization
// PR should move these numbers and nothing else.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "util/parallel.hpp"

namespace crowdrank {
namespace {

struct StageTimes {
  double total_ms = 0.0;
  double step1_ms = 0.0;
  double step2_ms = 0.0;
  double step3_ms = 0.0;
  double step4_ms = 0.0;
  double experiment_ms = 0.0;  ///< whole run_experiment wall time
  std::vector<VertexId> ranking;
  double accuracy = 0.0;
};

StageTimes run_once(std::size_t n) {
  ExperimentConfig config;
  config.object_count = n;
  config.selection_ratio = 0.1;
  config.worker_pool_size = 30;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.seed = 42 + n;

  Stopwatch watch;
  const ExperimentResult r = run_experiment(config);
  StageTimes out;
  out.experiment_ms = watch.elapsed_millis();
  const PhaseTimer& t = r.inference.timings;
  out.total_ms = t.total_seconds() * 1e3;
  out.step1_ms = t.seconds("step1_truth_discovery") * 1e3;
  out.step2_ms = t.seconds("step2_smoothing") * 1e3;
  out.step3_ms = t.seconds("step3_propagation") * 1e3;
  out.step4_ms = t.seconds("step4_find_best_ranking") * 1e3;
  const auto order = r.inference.ranking.order();
  out.ranking.assign(order.begin(), order.end());
  out.accuracy = r.accuracy;
  return out;
}

void emit_stages(std::ostream& os, const char* key, const StageTimes& t,
                 std::size_t threads) {
  os << "      \"" << key << "\": {\n"
     << "        \"threads\": " << threads << ",\n"
     << "        \"experiment_ms\": " << t.experiment_ms << ",\n"
     << "        \"inference_ms\": " << t.total_ms << ",\n"
     << "        \"step1_truth_discovery_ms\": " << t.step1_ms << ",\n"
     << "        \"step2_smoothing_ms\": " << t.step2_ms << ",\n"
     << "        \"step3_propagation_ms\": " << t.step3_ms << ",\n"
     << "        \"step4_find_best_ranking_ms\": " << t.step4_ms << ",\n"
     << "        \"accuracy\": " << t.accuracy << "\n"
     << "      }";
}

void run() {
  bench::banner("Pipeline perf",
                "end-to-end inference wall time per stage, serial vs "
                "thread pool (fixed seeds; rankings must be identical)");

  const std::vector<std::size_t> object_counts = {100, 300, 1000};
  const std::size_t parallel_threads = configured_thread_count();

  std::ofstream json("BENCH_pipeline.json");
  json << "{\n  \"benchmark\": \"perf_pipeline\",\n"
       << "  \"hardware_threads\": " << parallel_threads << ",\n"
       << "  \"runs\": [\n";

  TableWriter table({"n", "serial_ms", "parallel_ms", "threads", "speedup",
                     "rankings_match"});
  bool all_match = true;
  for (std::size_t idx = 0; idx < object_counts.size(); ++idx) {
    const std::size_t n = object_counts[idx];

    set_thread_count(1);
    const StageTimes serial = run_once(n);

    set_thread_count(parallel_threads);
    const StageTimes parallel = run_once(n);

    const bool match = serial.ranking == parallel.ranking;
    all_match = all_match && match;
    const double speedup =
        parallel.total_ms > 0.0 ? serial.total_ms / parallel.total_ms : 1.0;

    table.add_row({std::to_string(n), TableWriter::fmt(serial.total_ms),
                   TableWriter::fmt(parallel.total_ms),
                   std::to_string(parallel_threads),
                   TableWriter::fmt(speedup), match ? "yes" : "NO"});

    json << "    {\n      \"n\": " << n << ",\n";
    emit_stages(json, "serial", serial, 1);
    json << ",\n";
    emit_stages(json, "parallel", parallel, parallel_threads);
    json << ",\n      \"speedup\": " << speedup << ",\n"
         << "      \"rankings_match\": " << (match ? "true" : "false")
         << "\n    }" << (idx + 1 < object_counts.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  bench::emit(table);
  std::cout << "\nwrote BENCH_pipeline.json\n";
  if (!all_match) {
    std::cerr << "ERROR: serial and parallel rankings differ\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
