// Ablation — Step 4 (SAPS) design choices: initialization mode, move set,
// temperature, and restart budget (DESIGN.md §6).
//
// The headline finding this bench documents: on pair-normalized closures
// the greedy nearest-neighbor initialization is pathological (its first
// hop targets the most-dominated object), while the out-/in-weight
// difference ranking starts near the global order.
#include "bench/common.hpp"

namespace crowdrank {
namespace {

double accuracy_for(const SapsConfig& saps, std::uint64_t seed) {
  ExperimentConfig config;
  config.object_count = 100;
  config.selection_ratio = 0.3;
  config.worker_pool_size = 30;
  config.workers_per_task = 3;
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.inference.saps = saps;
  config.seed = seed;
  return run_experiment(config).accuracy;
}

void run() {
  bench::banner("Ablation: SAPS (Step 4)",
                "initialization, move set, temperature, restarts "
                "(n = 100, r = 0.3, medium Gaussian quality)");

  const int trials = 3;
  const auto avg = [&](const SapsConfig& cfg, std::uint64_t base) {
    double acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      acc += accuracy_for(cfg, base + t);
    }
    return acc / trials;
  };

  TableWriter init_table({"init_mode", "accuracy"});
  {
    SapsConfig cfg;
    cfg.init_mode = SapsInitMode::WeightDifferenceRanking;
    init_table.add_row({"weight-difference (default)",
                        TableWriter::fmt(avg(cfg, 5000))});
    cfg.init_mode = SapsInitMode::GreedyNearestNeighbor;
    init_table.add_row(
        {"greedy nearest-neighbor", TableWriter::fmt(avg(cfg, 5000))});
    cfg.init_mode = SapsInitMode::RandomPermutation;
    init_table.add_row(
        {"random permutation", TableWriter::fmt(avg(cfg, 5000))});
  }
  bench::emit(init_table);

  TableWriter move_table({"moves", "accuracy"});
  {
    SapsConfig cfg;
    move_table.add_row(
        {"rotate+reverse+swap (all)", TableWriter::fmt(avg(cfg, 5100))});
    cfg = {};
    cfg.use_rotate = false;
    move_table.add_row({"no rotate", TableWriter::fmt(avg(cfg, 5100))});
    cfg = {};
    cfg.use_reverse = false;
    move_table.add_row({"no reverse", TableWriter::fmt(avg(cfg, 5100))});
    cfg = {};
    cfg.use_swap = false;
    move_table.add_row({"no swap", TableWriter::fmt(avg(cfg, 5100))});
  }
  bench::emit(move_table);

  TableWriter temp_table({"T0", "iterations", "accuracy"});
  for (const double t0 : {0.01, 0.1, 1.0, 10.0}) {
    for (const std::size_t iters : {500ul, 3000ul}) {
      SapsConfig cfg;
      cfg.initial_temperature = t0;
      cfg.iterations = iters;
      temp_table.add_row({TableWriter::fmt(t0, 2), std::to_string(iters),
                          TableWriter::fmt(avg(cfg, 5200))});
    }
  }
  bench::emit(temp_table);

  TableWriter restart_table({"restarts", "accuracy"});
  for (const std::size_t restarts : {1ul, 4ul, 16ul}) {
    SapsConfig cfg;
    cfg.restarts = restarts;
    restart_table.add_row(
        {std::to_string(restarts), TableWriter::fmt(avg(cfg, 5300))});
  }
  bench::emit(restart_table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
