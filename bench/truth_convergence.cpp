// §V-A claim — "the algorithm achieves convergence within 10 iterations
// for most of the testing cases".
//
// Sweeps worker-quality settings and budgets, reporting the iteration
// count of the truth-discovery loop and whether it converged before the
// cap.
#include "bench/common.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Truth-discovery convergence (§V-A)",
                "iterations to convergence across quality settings "
                "(n = 100, tolerance 1e-6)");

  const std::size_t n = 100;
  TableWriter table({"distribution", "quality", "r", "iterations",
                     "converged", "one_edges"});
  for (const auto dist :
       {QualityDistribution::Gaussian, QualityDistribution::Uniform}) {
    for (const auto level :
         {QualityLevel::High, QualityLevel::Medium, QualityLevel::Low}) {
      for (const double ratio : {0.1, 0.5, 1.0}) {
        ExperimentConfig config;
        config.object_count = n;
        config.selection_ratio = ratio;
        config.worker_pool_size = 30;
        config.workers_per_task = 3;
        config.worker_quality = {dist, level};
        config.inference.saps.iterations = 200;  // step 4 irrelevant here
        config.seed = 9000 + static_cast<std::uint64_t>(ratio * 10);
        const ExperimentResult r = run_experiment(config);
        table.add_row({to_string(dist), to_string(level),
                       TableWriter::fmt(ratio, 1),
                       std::to_string(r.inference.step1.iterations),
                       r.inference.step1.converged ? "yes" : "no",
                       std::to_string(r.inference.one_edge_count)});
      }
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
