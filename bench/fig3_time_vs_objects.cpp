// Fig. 3 — SAPS inference time vs number of objects (paper §VI-B).
//
// The paper varies n from 100 to 1000 at selection ratio r = 0.1 with
// medium-quality workers under both quality distributions, and reports the
// wall-clock time of the result-inference step (SAPS). Shape to reproduce:
// time grows polynomially with n but stays in seconds-to-minutes even at
// n = 1000, and the worker-quality distribution has little effect on it.
#include "bench/common.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Figure 3",
                "SAPS result-inference time vs #objects (r = 0.1, medium "
                "worker quality, Gaussian and Uniform distributions)");

  const std::vector<std::size_t> object_counts =
      bench::full_scale()
          ? std::vector<std::size_t>{100, 200, 300, 400, 500, 600, 700, 800,
                                     900, 1000}
          : std::vector<std::size_t>{100, 200, 300, 400, 500};

  // One sweep cell per (n, distribution); cells run concurrently on the
  // pool, and every cell seeds its own Rng, so the table is identical to
  // the sequential sweep, just rows computed in parallel.
  struct Cell {
    std::size_t n;
    QualityDistribution dist;
  };
  std::vector<Cell> cells;
  for (const std::size_t n : object_counts) {
    for (const auto dist :
         {QualityDistribution::Gaussian, QualityDistribution::Uniform}) {
      cells.push_back({n, dist});
    }
  }

  const auto rows =
      bench::parallel_cells(cells.size(), [&](std::size_t i) {
        const Cell& cell = cells[i];
        ExperimentConfig config;
        config.object_count = cell.n;
        config.selection_ratio = 0.1;
        config.worker_pool_size = 30;
        config.workers_per_task = 3;
        config.worker_quality = {cell.dist, QualityLevel::Medium};
        config.seed = 42 + cell.n;
        const ExperimentResult r = run_experiment(config);
        return std::vector<std::string>{
            std::to_string(cell.n), to_string(cell.dist),
            TableWriter::fmt(r.inference.timings.total_seconds()),
            TableWriter::fmt(r.accuracy)};
      });

  TableWriter table({"n", "distribution", "inference_time_s", "accuracy"});
  for (const auto& row : rows) {
    table.add_row(row);
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
