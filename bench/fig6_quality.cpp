// Fig. 6 — SAPS vs baselines w.r.t. worker quality and selection ratio
// (paper §VI-E, simulated setting, Gaussian quality distribution).
//
// Shapes to reproduce: accuracy improves with r for every method; SAPS is
// top-2 everywhere and wins RC/QS by a wide margin at small r (where RC/QS
// sit at or below coin-flip level); CrowdBT shines at the smallest budgets
// but loses to SAPS as the budget grows; better workers help every method.
#include <memory>

#include "bench/common.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Figure 6",
                "SAPS vs RC vs QS vs CrowdBT across selection ratios and "
                "worker-quality levels (n = 100, Gaussian distribution)");

  const std::size_t n = 100;
  const std::size_t m = 30;
  const std::vector<double> ratios =
      bench::full_scale()
          ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5,
                                0.6, 0.7, 0.8, 0.9, 1.0}
          : std::vector<double>{0.1, 0.3, 0.5, 0.7, 1.0};

  const std::size_t trials = 3;
  TableWriter table({"quality", "r", "SAPS", "RC", "QS", "CrowdBT"});
  for (const auto level :
       {QualityLevel::Low, QualityLevel::Medium, QualityLevel::High}) {
    for (const double ratio : ratios) {
      double acc_saps = 0.0;
      double acc_rc = 0.0;
      double acc_qs = 0.0;
      double acc_bt = 0.0;
      for (std::size_t trial = 0; trial < trials; ++trial) {
      Rng rng(500 + trial * 1000 +
              static_cast<std::uint64_t>(ratio * 100));
      auto perm = rng.permutation(n);
      const Ranking truth(
          std::vector<VertexId>(perm.begin(), perm.end()));
      auto workers = sample_worker_pool(
          m, {QualityDistribution::Gaussian, level}, rng);
      const BudgetModel budget =
          BudgetModel::for_selection_ratio(n, ratio, 0.025, 3);
      const auto ta =
          generate_task_assignment(n, budget.unique_task_count(), rng);
      std::vector<Edge> tasks(ta.graph.edges().begin(),
                              ta.graph.edges().end());
      const HitAssignment assignment(tasks, HitConfig{5, 3}, m, rng);
      const SimulatedCrowd crowd(truth, workers);
      const VoteBatch votes = crowd.collect(assignment, rng);

      Rng saps_rng(1);
      // Facade strict path: repair off so the assignment's raw-id task
      // keys stay valid; bitwise-identical to the direct engine call.
      api::Request request;
      request.votes = votes;
      request.object_count = n;
      request.worker_count = m;
      request.repair = false;
      request.assignment = &assignment;
      const api::Response response = api::rank(request, saps_rng);
      const double saps =
          response.ok()
              ? ranking_accuracy(truth, response.inference->ranking)
              : 0.0;

      Rng rc_rng(2);
      const double rc = ranking_accuracy(
          truth, repeat_choice_from_votes(votes, n, m, rc_rng));

      Rng qs_rng(3);
      const double qs =
          ranking_accuracy(truth, quicksort_ranking(votes, n, qs_rng));

      Rng bt_rng(4);
      const BudgetModel bt_budget = BudgetModel::for_unique_tasks(
          assignment.unique_task_count(), 0.025, 3);
      InteractiveCrowd oracle(crowd, bt_budget, bt_rng);
      CrowdBtConfig bt_config;
      bt_config.candidate_sample_size = 500;  // sampled active learning
      const double bt = ranking_accuracy(
          truth,
          crowd_bt_interactive(oracle, n, m, bt_config, bt_rng).ranking);

      acc_saps += saps;
      acc_rc += rc;
      acc_qs += qs;
      acc_bt += bt;
      }
      const auto denom = static_cast<double>(trials);
      table.add_row({to_string(level), TableWriter::fmt(ratio, 1),
                     TableWriter::fmt(acc_saps / denom),
                     TableWriter::fmt(acc_rc / denom),
                     TableWriter::fmt(acc_qs / denom),
                     TableWriter::fmt(acc_bt / denom)});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
