// Extension bench — what does a second, targeted round-trip buy?
//
// One round-trip (the paper's setting) vs two round-trips at the same
// total dollars, sweeping the round-1 fraction. Shape to expect: the
// targeted second round helps most when the total budget is small (the
// blind assignment leaves many contested/thin pairs), and f -> 1 recovers
// the one-round accuracy by construction.
#include "bench/common.hpp"
#include "core/two_round.hpp"
#include "util/stats.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Extension: two-round budget split",
                "one blind round vs blind + targeted rounds at equal total "
                "cost (n = 100, medium Gaussian quality, 3-seed means)");

  const std::size_t n = 100;
  const int trials = 3;

  TableWriter table({"total_r", "round1_fraction", "accuracy",
                     "round2_repeat_share"});
  for (const double ratio : {0.1, 0.2, 0.3}) {
    for (const double fraction : {1.0, 0.8, 0.6, 0.4}) {
      RunningStats accuracy;
      RunningStats repeat_share;
      for (int t = 0; t < trials; ++t) {
        TwoRoundConfig config;
        config.base.object_count = n;
        config.base.selection_ratio = ratio;
        config.base.worker_pool_size = 30;
        config.base.workers_per_task = 3;
        config.base.worker_quality = {QualityDistribution::Gaussian,
                                      QualityLevel::Medium};
        config.base.seed = 9500 + t + static_cast<int>(ratio * 100);
        config.round1_fraction = fraction;
        const TwoRoundResult r = run_two_round_experiment(config);
        accuracy.add(r.accuracy);
        repeat_share.add(
            r.round2_tasks > 0
                ? static_cast<double>(r.round2_repeats) /
                      static_cast<double>(r.round2_tasks)
                : 0.0);
      }
      table.add_row({TableWriter::fmt(ratio, 1),
                     TableWriter::fmt(fraction, 1),
                     TableWriter::fmt(accuracy.mean()),
                     TableWriter::fmt(repeat_share.mean())});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
