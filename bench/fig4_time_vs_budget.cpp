// Fig. 4 — SAPS time vs selection ratio, with the per-step breakdown
// (paper §VI-B "Budgets").
//
// The paper sweeps r from 0.1 to 1.0 (r = 1 is the all-pair baseline) at a
// fixed n and reports: total inference time rising gently with r; Step 4
// dominating the other steps; and the number of 1-edges being much larger
// under the Gaussian quality distribution than under the Uniform one
// (which decides whether Step 1 or Step 2 is faster).
#include "bench/common.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner(
      "Figure 4",
      "inference time vs selection ratio, per-step breakdown and 1-edge "
      "counts (medium worker quality, both distributions)");

  const std::size_t n = bench::full_scale() ? 1000 : 300;
  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};

  // Sweep cells (distribution x ratio) run concurrently on the pool; each
  // cell is self-seeded so rows match the sequential sweep.
  struct Cell {
    QualityDistribution dist;
    double r;
  };
  std::vector<Cell> cells;
  for (const auto dist :
       {QualityDistribution::Gaussian, QualityDistribution::Uniform}) {
    for (const double r : ratios) {
      cells.push_back({dist, r});
    }
  }

  const auto rows =
      bench::parallel_cells(cells.size(), [&](std::size_t i) {
        const Cell& cell = cells[i];
        ExperimentConfig config;
        config.object_count = n;
        config.selection_ratio = cell.r;
        config.worker_pool_size = 30;
        config.workers_per_task = 3;
        config.worker_quality = {cell.dist, QualityLevel::Medium};
        config.seed = 7 + static_cast<std::uint64_t>(cell.r * 100);
        const ExperimentResult result = run_experiment(config);
        const auto& t = result.inference.timings;
        return std::vector<std::string>{
            to_string(cell.dist), TableWriter::fmt(cell.r, 1),
            TableWriter::fmt(t.total_seconds()),
            TableWriter::fmt(t.seconds("step1_truth_discovery")),
            TableWriter::fmt(t.seconds("step2_smoothing")),
            TableWriter::fmt(t.seconds("step3_propagation")),
            TableWriter::fmt(t.seconds("step4_find_best_ranking")),
            std::to_string(result.inference.one_edge_count),
            TableWriter::fmt(result.accuracy)};
      });

  TableWriter table({"distribution", "r", "total_s", "step1_s", "step2_s",
                     "step3_s", "step4_s", "one_edges", "accuracy"});
  for (const auto& row : rows) {
    table.add_row(row);
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
