// Ablation — does the fair task assignment (§IV) actually matter?
//
// Compares Algorithm 1's fair regular graphs against uniform random edge
// selection at the same budget, measuring the fairness diagnostics the
// paper's analysis is built on (degree spread, Eq.-2 in/out-node
// probability spread, Thm-4.4 lower bound) and the end-to-end accuracy.
#include "bench/common.hpp"
#include "core/task_assignment.hpp"
#include "graph/preference_graph.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

struct Outcome {
  double accuracy = 0.0;
  double pr_lower_bound = 0.0;
  std::size_t degree_spread = 0;
  std::size_t io_nodes = 0;
  bool connected = false;
};

Outcome run_with_assignment(std::size_t n, double ratio, bool fair,
                            std::uint64_t seed) {
  Rng rng(seed);
  auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  auto workers = sample_worker_pool(
      30, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(n, ratio, 0.025, 3);
  const auto ta =
      fair ? generate_task_assignment(n, budget.unique_task_count(), rng)
           : generate_random_assignment(n, budget.unique_task_count(), rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 3}, 30, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(assignment, rng);

  api::Request request;
  request.votes = votes;
  request.object_count = n;
  request.worker_count = 30;
  request.seed = seed + 1;
  request.repair = false;  // assignment keys on raw ids
  request.assignment = &assignment;
  const api::Response response = api::rank(request);
  const InferenceResult& result = *response.inference;

  // In/out-node count of the *unsmoothed* preference graph: how much
  // repair work smoothing had to do.
  const auto direct = result.step1.to_preference_graph(n);
  Outcome out;
  out.accuracy = ranking_accuracy(truth, result.ranking);
  out.pr_lower_bound = ta.stats.hp_likelihood_lower_bound;
  out.degree_spread = ta.stats.max_degree - ta.stats.min_degree;
  out.io_nodes = direct.in_nodes().size() + direct.out_nodes().size();
  out.connected = ta.graph.is_connected();
  return out;
}

void run() {
  bench::banner("Ablation: task assignment",
                "Algorithm 1 (fair regular) vs uniform random edges at the "
                "same budget (n = 100, medium Gaussian quality)");

  TableWriter table({"r", "assignment", "accuracy", "degree_spread",
                     "in_out_nodes", "Pr_l", "connected"});
  for (const double ratio : {0.05, 0.1, 0.3, 0.5}) {
    for (const bool fair : {true, false}) {
      double acc = 0.0;
      double prl = 0.0;
      double spread = 0.0;
      double io = 0.0;
      bool connected = true;
      const int trials = 3;
      for (int t = 0; t < trials; ++t) {
        const Outcome o = run_with_assignment(
            100, ratio, fair, 7000 + t + static_cast<int>(ratio * 100));
        acc += o.accuracy;
        prl += o.pr_lower_bound;
        spread += static_cast<double>(o.degree_spread);
        io += static_cast<double>(o.io_nodes);
        connected = connected && o.connected;
      }
      table.add_row({TableWriter::fmt(ratio, 2),
                     fair ? "fair (Alg 1)" : "random",
                     TableWriter::fmt(acc / trials),
                     TableWriter::fmt(spread / trials, 1),
                     TableWriter::fmt(io / trials, 1),
                     TableWriter::fmt(prl / trials, 4),
                     connected ? "always" : "not always"});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
