// §VI-D — the AMT crowdsourcing study (substituted: synthetic smile
// dataset, DESIGN.md #2).
//
// The paper ranks 10 and 20 hard-to-distinguish celebrity photos, varying
// the workers per HIT (w = 100, 125, 150, 200) and the budget (selection
// ratio r = 0.25, 0.5, 0.75, 1). With no ground truth available it reports
// that SAPS generates (almost always) the same ranking as the exact TAPS.
// We reproduce exactly that comparison and additionally report agreement
// with the machine (latent-score) ranking as a reference point.
#include <string>

#include "bench/common.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("AMT study (§VI-D)",
                "TAPS vs SAPS agreement on the synthetic smile-ranking "
                "study; 10- and 20-image settings, w in {100,125,150,200}, "
                "r in {0.25,0.5,0.75,1}");

  const std::vector<std::size_t> image_counts = {10, 20};
  // The 20-image setting needs the Held-Karp fallback (~6 s per cell), so
  // the default grid is trimmed; CROWDRANK_FULL=1 restores the paper's.
  const std::vector<std::size_t> workers_per_hit_full = {100, 125, 150, 200};
  const std::vector<std::size_t> workers_per_hit_small = {100, 200};
  const std::vector<double> ratios_full = {0.25, 0.5, 0.75, 1.0};
  const std::vector<double> ratios_small = {0.5, 1.0};
  const std::size_t pool_size = 250;

  TableWriter table({"images", "w", "r", "taps_saps_agreement",
                     "saps_vs_machine", "exact_method"});
  for (const std::size_t images : image_counts) {
    Rng data_rng(33 + images);
    const AmtSmileDataset ds({.num_images = images}, data_rng);
    const bool trim = images == 20 && !bench::full_scale();
    const auto& workers_per_hit =
        trim ? workers_per_hit_small : workers_per_hit_full;
    const auto& ratios = trim ? ratios_small : ratios_full;
    for (const std::size_t w : workers_per_hit) {
      for (const double ratio : ratios) {
        Rng rng(17 * images + w + static_cast<std::uint64_t>(ratio * 100));
        auto workers = sample_worker_pool(
            pool_size, {QualityDistribution::Uniform, QualityLevel::Medium},
            rng);
        const BudgetModel budget =
            BudgetModel::for_selection_ratio(images, ratio, 0.025, w);
        const auto ta = generate_task_assignment(
            images, budget.unique_task_count(), rng);
        std::vector<Edge> tasks(ta.graph.edges().begin(),
                                ta.graph.edges().end());
        const HitAssignment assignment(tasks, HitConfig{5, w}, pool_size,
                                       rng);
        const VoteBatch votes = ds.collect(assignment, workers, rng);

        // All searches go through the api facade's strict path (repair
        // off: the HIT assignment keys on raw ids).
        api::Request request;
        request.votes = votes;
        request.object_count = images;
        request.worker_count = pool_size;
        request.repair = false;
        request.assignment = &assignment;

        // Exact Step-4 search: TAPS, falling back to Held-Karp when the
        // closure is too flat for early termination (near-indistinguishable
        // images make every path's probability comparable, the regime where
        // the threshold rule degenerates to exhaustion). The facade reports
        // the expansion-budget blowout structurally instead of throwing.
        request.inference.search = RankSearchMethod::Taps;
        request.inference.taps.max_expansions = 2'000'000;
        std::string exact_method = "TAPS";
        api::Response taps = api::rank(request);
        if (!taps.ok()) {
          exact_method = "HeldKarp";
          api::Request hk_request = request;
          hk_request.inference = InferenceConfig{};
          hk_request.inference.search = RankSearchMethod::HeldKarp;
          taps = api::rank(hk_request);
        }

        api::Request saps_request = request;
        saps_request.inference = InferenceConfig{};
        saps_request.inference.search = RankSearchMethod::Saps;
        saps_request.inference.saps.iterations = 4000;
        const api::Response saps = api::rank(saps_request);

        table.add_row(
            {std::to_string(images), std::to_string(w),
             TableWriter::fmt(ratio, 2),
             TableWriter::fmt(ranking_accuracy(taps.inference->ranking,
                                               saps.inference->ranking)),
             TableWriter::fmt(ranking_accuracy(ds.machine_ranking(),
                                               saps.inference->ranking)),
             exact_method});
      }
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
