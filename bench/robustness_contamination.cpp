// Robustness bench — pipeline accuracy vs crowd contamination.
//
// Beyond the paper's Gaussian-error model: a fraction of the worker pool
// is replaced by hostile or broken personas (spammers, adversaries,
// position-biased clickers) and the full pipeline is compared against
// quality-blind aggregation (majority vote + local Kemenization). The
// point: Step 1's worker-quality estimation is what buys graceful
// degradation — quality-blind baselines fall off much faster against
// adversaries.
#include <unordered_map>

#include "bench/common.hpp"

namespace crowdrank {
namespace {

const char* behavior_name(WorkerBehavior b) {
  switch (b) {
    case WorkerBehavior::Spammer:
      return "spammer";
    case WorkerBehavior::Adversary:
      return "adversary";
    case WorkerBehavior::FirstBiased:
      return "first-biased";
    default:
      return "?";
  }
}

void run() {
  bench::banner("Robustness: contaminated crowds",
                "SAPS pipeline vs quality-blind aggregation as a growing "
                "fraction of workers turn hostile (n = 60, r = 0.5, "
                "honest workers medium Gaussian)");

  const std::size_t n = 60;
  const std::size_t m = 30;
  const int trials = 3;

  TableWriter table({"persona", "contamination", "SAPS",
                     "SAPS_no_weighting", "majority_vote", "local_kemeny"});
  for (const auto persona :
       {WorkerBehavior::Spammer, WorkerBehavior::Adversary,
        WorkerBehavior::FirstBiased}) {
    for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4}) {
      double acc_saps = 0.0;
      double acc_unweighted = 0.0;
      double acc_mv = 0.0;
      double acc_lk = 0.0;
      for (int t = 0; t < trials; ++t) {
        Rng rng(8000 + t + static_cast<int>(rate * 100));
        auto perm = rng.permutation(n);
        const Ranking truth(
            std::vector<VertexId>(perm.begin(), perm.end()));
        auto workers = sample_worker_pool(
            m, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
        const SimulatedCrowd base(truth, workers);

        // Contaminate the first ceil(rate * m) workers.
        std::map<WorkerId, WorkerBehavior> overrides;
        const auto bad =
            static_cast<std::size_t>(rate * static_cast<double>(m) + 0.5);
        for (WorkerId k = 0; k < bad; ++k) {
          overrides.emplace(k, persona);
        }
        const BehavioralCrowd crowd(base, std::move(overrides));

        const BudgetModel budget =
            BudgetModel::for_selection_ratio(n, 0.5, 0.025, 3);
        const auto ta =
            generate_task_assignment(n, budget.unique_task_count(), rng);
        std::vector<Edge> tasks(ta.graph.edges().begin(),
                                ta.graph.edges().end());
        const HitAssignment assignment(tasks, HitConfig{5, 3}, m, rng);
        const VoteBatch votes = crowd.collect(assignment, rng);

        api::Request request;
        request.votes = votes;
        request.object_count = n;
        request.worker_count = m;
        request.repair = false;  // assignment keys on raw ids
        request.assignment = &assignment;

        Rng infer_rng(t);
        const api::Response weighted = api::rank(request, infer_rng);
        acc_saps += weighted.ok()
                        ? ranking_accuracy(truth,
                                           weighted.inference->ranking)
                        : 0.0;

        // Same pipeline with Step 1's quality weighting disabled: how
        // much of the robustness is Eq. 4/5 specifically?
        request.inference.truth_discovery.use_quality_weighting = false;
        Rng unweighted_rng(t);
        const api::Response unweighted = api::rank(request, unweighted_rng);
        acc_unweighted +=
            unweighted.ok()
                ? ranking_accuracy(truth, unweighted.inference->ranking)
                : 0.0;

        acc_mv += ranking_accuracy(truth, majority_vote_ranking(votes, n));
        acc_lk +=
            ranking_accuracy(truth, local_kemeny_ranking(votes, n));
      }
      table.add_row({behavior_name(persona), TableWriter::fmt(rate, 1),
                     TableWriter::fmt(acc_saps / trials),
                     TableWriter::fmt(acc_unweighted / trials),
                     TableWriter::fmt(acc_mv / trials),
                     TableWriter::fmt(acc_lk / trials)});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
