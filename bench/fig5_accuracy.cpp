// Fig. 5 — ranking accuracy vs number of objects and vs budget
// (paper §VI-C).
//
// Shapes to reproduce: accuracy in the high 0.8s-0.9s band even at
// r = 0.1; accuracy *improves* as n grows (more transitive inference);
// accuracy improves with r; Gaussian worker quality beats Uniform.
// Headline numbers: >= 0.89 at n = 100, r = 0.1; ~0.95 at n = 1000 with
// the same ratio.
#include "bench/common.hpp"
#include "util/stats.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Figure 5",
                "ranking accuracy vs #objects and selection ratio (medium "
                "worker quality, Gaussian and Uniform distributions)");

  const std::vector<std::size_t> object_counts =
      bench::full_scale()
          ? std::vector<std::size_t>{100, 200, 400, 600, 800, 1000}
          : std::vector<std::size_t>{100, 200, 300, 400};
  const std::vector<double> ratios = {0.1, 0.3, 0.5};
  const std::size_t trials = bench::full_scale() ? 4 : 2;

  TableWriter table(
      {"distribution", "n", "r", "accuracy", "ci95_low", "ci95_high"});
  Rng boot_rng(99);
  for (const auto dist :
       {QualityDistribution::Gaussian, QualityDistribution::Uniform}) {
    for (const std::size_t n : object_counts) {
      for (const double r : ratios) {
        std::vector<double> samples;
        samples.reserve(trials);
        for (std::size_t t = 0; t < trials; ++t) {
          ExperimentConfig config;
          config.object_count = n;
          config.selection_ratio = r;
          config.worker_pool_size = 30;
          config.workers_per_task = 3;
          config.worker_quality = {dist, QualityLevel::Medium};
          config.seed = 100 * n + static_cast<std::uint64_t>(r * 10) + t;
          samples.push_back(run_experiment(config).accuracy);
        }
        const auto ci = bootstrap_ci(samples, 500, 0.05, boot_rng);
        table.add_row({to_string(dist), std::to_string(n),
                       TableWriter::fmt(r, 1), TableWriter::fmt(ci.mean),
                       TableWriter::fmt(ci.lower),
                       TableWriter::fmt(ci.upper)});
      }
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
