// Table I — SAPS vs RepeatChoice vs QuickSort vs CrowdBT: accuracy and
// time at r = 0.5 for growing n, under both worker-quality distributions
// (paper §VI-E).
//
// Shapes to reproduce: SAPS and CrowdBT in the same (high) accuracy band
// with RC and QS collapsing (RC near-random, QS low); RC fastest, QS next,
// SAPS close behind, CrowdBT orders of magnitude slower because its
// interactive active-learning loop scores candidate pairs for every
// purchased answer; SAPS accuracy *improving* with n while CrowdBT's
// degrades.
#include <memory>

#include "bench/common.hpp"

namespace crowdrank {
namespace {

struct World {
  Ranking truth = Ranking::identity(2);
  std::unique_ptr<SimulatedCrowd> crowd;
  std::unique_ptr<HitAssignment> assignment;
  VoteBatch votes;
  std::size_t n = 0;
  std::size_t m = 30;
};

World make_world(std::size_t n, QualityDistribution dist,
                 std::uint64_t seed) {
  World w;
  w.n = n;
  Rng rng(seed);
  auto perm = rng.permutation(n);
  w.truth = Ranking(std::vector<VertexId>(perm.begin(), perm.end()));
  auto workers =
      sample_worker_pool(w.m, {dist, QualityLevel::Medium}, rng);
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(n, 0.5, 0.025, 3);
  const auto ta = generate_task_assignment(n, budget.unique_task_count(),
                                           rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  w.assignment =
      std::make_unique<HitAssignment>(tasks, HitConfig{5, 3}, w.m, rng);
  w.crowd = std::make_unique<SimulatedCrowd>(w.truth, workers);
  w.votes = w.crowd->collect(*w.assignment, rng);
  return w;
}

struct Row {
  double accuracy;
  double seconds;
};

Row run_saps(const World& w) {
  Rng rng(1);
  const Stopwatch watch;
  // The facade's strict path (repair off, assignment keyed on raw ids)
  // is bitwise-identical to driving the engine directly.
  api::Request request;
  request.votes = w.votes;
  request.object_count = w.n;
  request.worker_count = w.m;
  request.repair = false;
  request.assignment = w.assignment.get();
  const api::Response result = api::rank(request, rng);
  return {result.ok()
              ? ranking_accuracy(w.truth, result.inference->ranking)
              : 0.0,
          watch.elapsed_seconds()};
}

Row run_rc(const World& w) {
  Rng rng(2);
  const Stopwatch watch;
  const Ranking r = repeat_choice_from_votes(w.votes, w.n, w.m, rng);
  return {ranking_accuracy(w.truth, r), watch.elapsed_seconds()};
}

Row run_qs(const World& w) {
  Rng rng(3);
  const Stopwatch watch;
  const Ranking r = quicksort_ranking(w.votes, w.n, rng);
  return {ranking_accuracy(w.truth, r), watch.elapsed_seconds()};
}

Row run_crowd_bt(const World& w) {
  Rng rng(4);
  const Stopwatch watch;
  const BudgetModel budget = BudgetModel::for_unique_tasks(
      w.assignment->unique_task_count(), 0.025, 3);
  InteractiveCrowd oracle(*w.crowd, budget, rng);
  // Literal active learning: score every candidate pair per answer. This
  // is the quadratic-per-answer loop that blows CrowdBT's runtime up.
  const auto result = crowd_bt_interactive(oracle, w.n, w.m, {}, rng);
  return {ranking_accuracy(w.truth, result.ranking),
          watch.elapsed_seconds()};
}

void run() {
  bench::banner(
      "Table I",
      "SAPS vs RC vs QS vs CrowdBT: accuracy & time, r = 0.5, medium "
      "worker quality (both distributions)");

  const std::vector<std::size_t> object_counts =
      bench::full_scale() ? std::vector<std::size_t>{100, 200, 300}
                          : std::vector<std::size_t>{50, 100, 150};

  TableWriter table(
      {"distribution", "n", "method", "accuracy", "time_s"});
  for (const auto dist :
       {QualityDistribution::Gaussian, QualityDistribution::Uniform}) {
    for (const std::size_t n : object_counts) {
      const World w = make_world(n, dist, 1000 + n);
      const Row saps = run_saps(w);
      const Row rc = run_rc(w);
      const Row qs = run_qs(w);
      const Row bt = run_crowd_bt(w);
      const auto add = [&](const char* name, const Row& row) {
        table.add_row({to_string(dist), std::to_string(n), name,
                       TableWriter::fmt_percent(row.accuracy),
                       TableWriter::fmt(row.seconds)});
      };
      add("SAPS", saps);
      add("RC", rc);
      add("QS", qs);
      add("CrowdBT", bt);
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
