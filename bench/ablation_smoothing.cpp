// Ablation — Step 2 (preference smoothing) on/off and mode (DESIGN.md §6).
//
// Without smoothing, every unanimous task stays a 1-edge: the preference
// graph keeps its in-/out-nodes, the closure leans on the completeness
// floor instead of estimated reverse preferences, and accuracy drops —
// exactly the failure mode Thm 4.3 / §V-B describes.
#include <map>

#include "bench/common.hpp"
#include "core/propagation.hpp"
#include "core/smoothing.hpp"
#include "core/task_assignment.hpp"
#include "metrics/kendall.hpp"

namespace crowdrank {
namespace {

struct Outcome {
  double accuracy = 0.0;
  bool strongly_connected = false;
  std::size_t fallback_pairs = 0;
};

Outcome run_once(bool smoothing_on, SmoothingMode mode, double ratio,
                 std::uint64_t seed) {
  const std::size_t n = 100;
  const std::size_t m = 30;
  Rng rng(seed);
  auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  auto workers = sample_worker_pool(
      m, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(n, ratio, 0.025, 3);
  const auto ta =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 3}, m, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(assignment, rng);

  const auto step1 = discover_truth(votes, n, m, {});
  PreferenceGraph graph = step1.to_preference_graph(n);
  if (smoothing_on) {
    std::map<Edge, std::size_t> idx;
    for (std::size_t t = 0; t < assignment.tasks().size(); ++t) {
      idx[assignment.tasks()[t]] = t;
    }
    std::vector<std::vector<WorkerId>> task_workers;
    for (const auto& t : step1.truths) {
      task_workers.push_back(assignment.workers_for_task(idx[t.task]));
    }
    SmoothingConfig config;
    config.mode = mode;
    Rng smooth_rng(seed + 1);
    graph = smooth_preferences(graph, step1, task_workers, config,
                               &smooth_rng, nullptr);
  }

  PropagationStats stats;
  const Matrix closure = propagate_preferences(graph, {}, &stats);
  Rng saps_rng(seed + 2);
  const SapsResult saps = saps_search(closure, {}, saps_rng);

  Outcome out;
  out.accuracy = ranking_accuracy(truth, Ranking(saps.best_path));
  out.strongly_connected = graph.is_strongly_connected();
  out.fallback_pairs = stats.pairs_without_evidence;
  return out;
}

void run() {
  bench::banner("Ablation: preference smoothing (Step 2)",
                "smoothing off vs expected-error vs sampled-error "
                "(n = 100, medium Gaussian quality)");

  TableWriter table({"r", "smoothing", "accuracy", "strongly_connected",
                     "fallback_pairs"});
  const int trials = 3;
  for (const double ratio : {0.1, 0.3, 0.5}) {
    struct Variant {
      const char* name;
      bool on;
      SmoothingMode mode;
    };
    const Variant variants[] = {
        {"off", false, SmoothingMode::ExpectedError},
        {"expected-error (default)", true, SmoothingMode::ExpectedError},
        {"sampled-error (paper literal)", true, SmoothingMode::SampledError},
    };
    for (const auto& variant : variants) {
      double acc = 0.0;
      bool connected = true;
      double fallback = 0.0;
      for (int t = 0; t < trials; ++t) {
        const Outcome o = run_once(variant.on, variant.mode, ratio,
                                   6000 + t);
        acc += o.accuracy;
        connected = connected && o.strongly_connected;
        fallback += static_cast<double>(o.fallback_pairs);
      }
      table.add_row({TableWriter::fmt(ratio, 1), variant.name,
                     TableWriter::fmt(acc / trials),
                     connected ? "always" : "not always",
                     TableWriter::fmt(fallback / trials, 1)});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
