// Micro benchmarks (google-benchmark) for the primitives the pipeline's
// asymptotics rest on: Kendall-tau, the blocked matmul behind Step 3, the
// chi-squared quantile behind Eq. 5, one truth-discovery sweep, SAPS
// moves, and the exact searches.
#include <benchmark/benchmark.h>

#include "core/propagation.hpp"
#include "core/saps.hpp"
#include "core/taps.hpp"
#include "core/truth_discovery.hpp"
#include "graph/hamiltonian.hpp"
#include "metrics/kendall.hpp"
#include "util/math.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace crowdrank {
namespace {

void BM_KendallTau(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto pa = rng.permutation(n);
  const auto pb = rng.permutation(n);
  const Ranking a(std::vector<VertexId>(pa.begin(), pa.end()));
  const Ranking b(std::vector<VertexId>(pb.begin(), pb.end()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kendall_tau_distance(a, b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_KendallTau)->Range(64, 8192)->Complexity(benchmark::oNLogN);

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Matrix a(n, n);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform();
      b(i, j) = rng.uniform();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matrix::multiply(a, b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_MatrixMultiply)->Range(64, 512)->Complexity();

void BM_ChiSquaredQuantile(benchmark::State& state) {
  double p = 0.018;
  for (auto _ : state) {
    p = p < 0.9 ? p + 1e-4 : 0.018;
    benchmark::DoNotOptimize(
        math::chi_squared_quantile(p, static_cast<double>(state.range(0))));
  }
}
BENCHMARK(BM_ChiSquaredQuantile)->Arg(10)->Arg(100)->Arg(1000);

void BM_TruthDiscovery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  VoteBatch votes;
  const std::size_t m = 30;
  for (VertexId i = 0; i + 1 < n; ++i) {
    for (VertexId jump = 1; jump <= 5 && i + jump < n; ++jump) {
      for (WorkerId rep = 0; rep < 3; ++rep) {
        const auto k = static_cast<WorkerId>(rng.uniform_index(m));
        votes.push_back(Vote{k, i, i + jump, !rng.bernoulli(0.1)});
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(discover_truth(votes, n, m, {}));
  }
}
BENCHMARK(BM_TruthDiscovery)->Arg(100)->Arg(500);

void BM_SapsSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix closure(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      closure(i, j) = w;
      closure(j, i) = 1.0 - w;
    }
  }
  SapsConfig config;
  config.iterations = 1000;
  config.restarts = 1;
  for (auto _ : state) {
    Rng search_rng(5);
    benchmark::DoNotOptimize(saps_search(closure, config, search_rng));
  }
}
BENCHMARK(BM_SapsSearch)->Arg(100)->Arg(500)->Arg(1000);

void BM_SapsMoveDeltas(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  Matrix closure(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.05, 0.95);
      closure(i, j) = w;
      closure(j, i) = 1.0 - w;
    }
  }
  Path path(n);
  for (std::size_t i = 0; i < n; ++i) path[i] = i;
  rng.shuffle(path);
  std::size_t a = n / 4;
  std::size_t b = 3 * n / 4;
  for (auto _ : state) {
    // One of each move's delta: rotate and swap are O(1), reverse O(len).
    benchmark::DoNotOptimize(
        saps_rotate_delta(closure, path, a, (a + b) / 2, b));
    benchmark::DoNotOptimize(saps_reverse_delta(closure, path, a, b));
    benchmark::DoNotOptimize(saps_swap_delta(closure, path, a, b));
  }
}
BENCHMARK(BM_SapsMoveDeltas)->Arg(100)->Arg(1000);

void BM_SpectralPropagation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  PreferenceGraph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) {
    const double w = rng.uniform(0.6, 0.95);
    g.set_weight(i, i + 1, w);
    g.set_weight(i + 1, i, 1.0 - w);
  }
  PropagationConfig config;
  config.mode = state.range(1) == 0 ? PropagationMode::BoundedWalks
                                    : PropagationMode::SpectralLimit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(propagate_preferences(g, config, nullptr));
  }
}
BENCHMARK(BM_SpectralPropagation)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1});

void BM_TapsVersusHeldKarp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  Matrix closure(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double w = rng.uniform(0.2, 0.8);
      closure(i, j) = w;
      closure(j, i) = 1.0 - w;
    }
  }
  if (state.range(1) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(taps_search(closure));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(max_probability_hamiltonian_path(closure));
    }
  }
}
BENCHMARK(BM_TapsVersusHeldKarp)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({11, 0})
    ->Args({11, 1});

}  // namespace
}  // namespace crowdrank

BENCHMARK_MAIN();
