// Shared scaffolding for the reproduction bench binaries.
//
// Every bench prints (a) a banner naming the paper experiment it
// regenerates, (b) an aligned table with the same rows/series the paper
// reports, and (c) the same table as CSV for re-plotting. Default scales
// are reduced so the whole suite runs in minutes; set CROWDRANK_FULL=1 for
// paper-scale axes.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace crowdrank::bench {

/// True when CROWDRANK_FULL=1: run the paper's full axes.
inline bool full_scale() {
  const char* env = std::getenv("CROWDRANK_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Prints the experiment banner.
inline void banner(const std::string& experiment,
                   const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n"
            << description << "\n"
            << (full_scale() ? "(full paper scale: CROWDRANK_FULL=1)"
                             : "(reduced default scale; set CROWDRANK_FULL=1 "
                               "for the paper's axes)")
            << "\n\n";
}

/// Prints the table both aligned and as CSV.
inline void emit(const TableWriter& table) {
  table.print_aligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

}  // namespace crowdrank::bench
