// Shared scaffolding for the reproduction bench binaries.
//
// Every bench prints (a) a banner naming the paper experiment it
// regenerates, (b) an aligned table with the same rows/series the paper
// reports, and (c) the same table as CSV for re-plotting. Default scales
// are reduced so the whole suite runs in minutes; set CROWDRANK_FULL=1 for
// paper-scale axes.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "crowdrank.hpp"

namespace crowdrank::bench {

/// True when CROWDRANK_FULL=1: run the paper's full axes.
inline bool full_scale() {
  const char* env = std::getenv("CROWDRANK_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Prints the experiment banner.
inline void banner(const std::string& experiment,
                   const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n"
            << description << "\n"
            << (full_scale() ? "(full paper scale: CROWDRANK_FULL=1)"
                             : "(reduced default scale; set CROWDRANK_FULL=1 "
                               "for the paper's axes)")
            << "\n(threads: " << thread_count()
            << "; override with CROWDRANK_THREADS)\n\n";
}

/// Evaluates `fn(i)` for every cell i in [0, count) across the thread pool
/// and returns the results in index order, so sweep tables stay byte-stable
/// regardless of which thread ran which cell. Each cell must be
/// self-contained (its own config/Rng); anything the pipeline parallelizes
/// internally runs inline on the cell's worker, so the sweep level owns the
/// cores. Cells are claimed dynamically — long cells (large n) overlap
/// short ones.
template <typename Fn>
auto parallel_cells(std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  std::vector<std::invoke_result_t<Fn&, std::size_t>> out(count);
  parallel_for(0, count, /*grain=*/1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      out[i] = fn(i);
    }
  });
  return out;
}

/// Prints the table both aligned and as CSV.
inline void emit(const TableWriter& table) {
  table.print_aligned(std::cout);
  std::cout << "\n--- csv ---\n";
  table.print_csv(std::cout);
  std::cout.flush();
}

}  // namespace crowdrank::bench
