// Extension bench — top-k quality of the full-ranking pipeline
// (paper §VIII future work).
//
// A top-k requester cares about the head, not the tail: how good is the
// inferred top-k as a *set*, how well-ordered is it, and how far do true
// head objects land from their slots? Measured shape: displacement is
// small (a true top object lands within a few positions even at r = 0.1)
// and grows neither with k nor much with n, while exact set precision at
// tiny k is limited by adjacent-rank confusions — the same
// close-pairs-are-hard effect the paper engineered its AMT study around.
// Takeaway for a top-k requester: pad k by the displacement (ask for the
// top 7 when you need 5) rather than buying a bigger budget.
#include "bench/common.hpp"
#include "metrics/kendall.hpp"
#include "metrics/topk.hpp"
#include "util/stats.hpp"

namespace crowdrank {
namespace {

void run() {
  bench::banner("Extension: top-k quality (§VIII)",
                "head precision / order / displacement of the inferred "
                "ranking (n = 100, medium Gaussian quality, 3-seed means)");

  const std::size_t n = 100;
  const int trials = 3;

  TableWriter table({"r", "k", "set_precision", "pair_accuracy",
                     "displacement", "full_accuracy"});
  for (const double ratio : {0.1, 0.3, 0.5}) {
    for (const std::size_t k : {5ul, 10ul, 25ul}) {
      RunningStats precision;
      RunningStats pair_acc;
      RunningStats displacement;
      RunningStats full;
      for (int t = 0; t < trials; ++t) {
        ExperimentConfig config;
        config.object_count = n;
        config.selection_ratio = ratio;
        config.worker_pool_size = 30;
        config.workers_per_task = 3;
        config.worker_quality = {QualityDistribution::Gaussian,
                                 QualityLevel::Medium};
        config.seed = 9100 + t + static_cast<int>(ratio * 100);
        const ExperimentResult result = run_experiment(config);
        precision.add(
            top_k_precision(result.truth, result.inference.ranking, k));
        pair_acc.add(
            top_k_pair_accuracy(result.truth, result.inference.ranking, k));
        displacement.add(
            top_k_displacement(result.truth, result.inference.ranking, k));
        full.add(result.accuracy);
      }
      table.add_row({TableWriter::fmt(ratio, 1), std::to_string(k),
                     TableWriter::fmt(precision.mean()),
                     TableWriter::fmt(pair_acc.mean()),
                     TableWriter::fmt(displacement.mean()),
                     TableWriter::fmt(full.mean())});
    }
  }
  bench::emit(table);
}

}  // namespace
}  // namespace crowdrank

int main() {
  crowdrank::run();
  return 0;
}
