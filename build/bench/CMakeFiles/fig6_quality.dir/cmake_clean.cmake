file(REMOVE_RECURSE
  "CMakeFiles/fig6_quality.dir/fig6_quality.cpp.o"
  "CMakeFiles/fig6_quality.dir/fig6_quality.cpp.o.d"
  "fig6_quality"
  "fig6_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
