# Empty dependencies file for fig6_quality.
# This may be replaced when dependencies are built.
