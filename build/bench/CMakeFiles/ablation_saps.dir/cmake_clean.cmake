file(REMOVE_RECURSE
  "CMakeFiles/ablation_saps.dir/ablation_saps.cpp.o"
  "CMakeFiles/ablation_saps.dir/ablation_saps.cpp.o.d"
  "ablation_saps"
  "ablation_saps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_saps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
