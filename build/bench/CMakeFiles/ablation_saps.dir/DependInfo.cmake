
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_saps.cpp" "bench/CMakeFiles/ablation_saps.dir/ablation_saps.cpp.o" "gcc" "bench/CMakeFiles/ablation_saps.dir/ablation_saps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/crowdrank_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/crowdrank_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crowdrank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdrank_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/crowdrank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
