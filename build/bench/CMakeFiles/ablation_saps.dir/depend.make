# Empty dependencies file for ablation_saps.
# This may be replaced when dependencies are built.
