file(REMOVE_RECURSE
  "CMakeFiles/fig3_time_vs_objects.dir/fig3_time_vs_objects.cpp.o"
  "CMakeFiles/fig3_time_vs_objects.dir/fig3_time_vs_objects.cpp.o.d"
  "fig3_time_vs_objects"
  "fig3_time_vs_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_vs_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
