file(REMOVE_RECURSE
  "CMakeFiles/truth_convergence.dir/truth_convergence.cpp.o"
  "CMakeFiles/truth_convergence.dir/truth_convergence.cpp.o.d"
  "truth_convergence"
  "truth_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
