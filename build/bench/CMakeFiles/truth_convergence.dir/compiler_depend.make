# Empty compiler generated dependencies file for truth_convergence.
# This may be replaced when dependencies are built.
