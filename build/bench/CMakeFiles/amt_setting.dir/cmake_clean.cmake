file(REMOVE_RECURSE
  "CMakeFiles/amt_setting.dir/amt_setting.cpp.o"
  "CMakeFiles/amt_setting.dir/amt_setting.cpp.o.d"
  "amt_setting"
  "amt_setting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amt_setting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
