# Empty dependencies file for amt_setting.
# This may be replaced when dependencies are built.
