file(REMOVE_RECURSE
  "CMakeFiles/extension_two_round.dir/extension_two_round.cpp.o"
  "CMakeFiles/extension_two_round.dir/extension_two_round.cpp.o.d"
  "extension_two_round"
  "extension_two_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_two_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
