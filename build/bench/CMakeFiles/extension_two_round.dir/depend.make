# Empty dependencies file for extension_two_round.
# This may be replaced when dependencies are built.
