# Empty dependencies file for robustness_contamination.
# This may be replaced when dependencies are built.
