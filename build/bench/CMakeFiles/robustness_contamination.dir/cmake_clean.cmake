file(REMOVE_RECURSE
  "CMakeFiles/robustness_contamination.dir/robustness_contamination.cpp.o"
  "CMakeFiles/robustness_contamination.dir/robustness_contamination.cpp.o.d"
  "robustness_contamination"
  "robustness_contamination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_contamination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
