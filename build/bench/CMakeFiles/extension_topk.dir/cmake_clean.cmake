file(REMOVE_RECURSE
  "CMakeFiles/extension_topk.dir/extension_topk.cpp.o"
  "CMakeFiles/extension_topk.dir/extension_topk.cpp.o.d"
  "extension_topk"
  "extension_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
