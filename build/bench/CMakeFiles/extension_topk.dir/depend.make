# Empty dependencies file for extension_topk.
# This may be replaced when dependencies are built.
