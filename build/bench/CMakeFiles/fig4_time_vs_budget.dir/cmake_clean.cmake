file(REMOVE_RECURSE
  "CMakeFiles/fig4_time_vs_budget.dir/fig4_time_vs_budget.cpp.o"
  "CMakeFiles/fig4_time_vs_budget.dir/fig4_time_vs_budget.cpp.o.d"
  "fig4_time_vs_budget"
  "fig4_time_vs_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_time_vs_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
