file(REMOVE_RECURSE
  "CMakeFiles/table1_baselines.dir/table1_baselines.cpp.o"
  "CMakeFiles/table1_baselines.dir/table1_baselines.cpp.o.d"
  "table1_baselines"
  "table1_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
