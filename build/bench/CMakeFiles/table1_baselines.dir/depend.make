# Empty dependencies file for table1_baselines.
# This may be replaced when dependencies are built.
