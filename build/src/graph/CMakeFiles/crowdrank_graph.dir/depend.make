# Empty dependencies file for crowdrank_graph.
# This may be replaced when dependencies are built.
