
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/hamiltonian.cpp" "src/graph/CMakeFiles/crowdrank_graph.dir/hamiltonian.cpp.o" "gcc" "src/graph/CMakeFiles/crowdrank_graph.dir/hamiltonian.cpp.o.d"
  "/root/repo/src/graph/preference_graph.cpp" "src/graph/CMakeFiles/crowdrank_graph.dir/preference_graph.cpp.o" "gcc" "src/graph/CMakeFiles/crowdrank_graph.dir/preference_graph.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/graph/CMakeFiles/crowdrank_graph.dir/scc.cpp.o" "gcc" "src/graph/CMakeFiles/crowdrank_graph.dir/scc.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/crowdrank_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/crowdrank_graph.dir/task_graph.cpp.o.d"
  "/root/repo/src/graph/transitive_closure.cpp" "src/graph/CMakeFiles/crowdrank_graph.dir/transitive_closure.cpp.o" "gcc" "src/graph/CMakeFiles/crowdrank_graph.dir/transitive_closure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
