file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_graph.dir/hamiltonian.cpp.o"
  "CMakeFiles/crowdrank_graph.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/crowdrank_graph.dir/preference_graph.cpp.o"
  "CMakeFiles/crowdrank_graph.dir/preference_graph.cpp.o.d"
  "CMakeFiles/crowdrank_graph.dir/scc.cpp.o"
  "CMakeFiles/crowdrank_graph.dir/scc.cpp.o.d"
  "CMakeFiles/crowdrank_graph.dir/task_graph.cpp.o"
  "CMakeFiles/crowdrank_graph.dir/task_graph.cpp.o.d"
  "CMakeFiles/crowdrank_graph.dir/transitive_closure.cpp.o"
  "CMakeFiles/crowdrank_graph.dir/transitive_closure.cpp.o.d"
  "libcrowdrank_graph.a"
  "libcrowdrank_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
