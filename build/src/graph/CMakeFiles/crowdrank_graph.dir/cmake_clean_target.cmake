file(REMOVE_RECURSE
  "libcrowdrank_graph.a"
)
