# Empty compiler generated dependencies file for crowdrank_core.
# This may be replaced when dependencies are built.
