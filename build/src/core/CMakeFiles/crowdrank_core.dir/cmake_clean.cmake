file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_core.dir/confidence.cpp.o"
  "CMakeFiles/crowdrank_core.dir/confidence.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/diagnostics.cpp.o"
  "CMakeFiles/crowdrank_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/pipeline.cpp.o"
  "CMakeFiles/crowdrank_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/planning.cpp.o"
  "CMakeFiles/crowdrank_core.dir/planning.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/propagation.cpp.o"
  "CMakeFiles/crowdrank_core.dir/propagation.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/saps.cpp.o"
  "CMakeFiles/crowdrank_core.dir/saps.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/smoothing.cpp.o"
  "CMakeFiles/crowdrank_core.dir/smoothing.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/taps.cpp.o"
  "CMakeFiles/crowdrank_core.dir/taps.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/taps_reference.cpp.o"
  "CMakeFiles/crowdrank_core.dir/taps_reference.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/task_assignment.cpp.o"
  "CMakeFiles/crowdrank_core.dir/task_assignment.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/truth_discovery.cpp.o"
  "CMakeFiles/crowdrank_core.dir/truth_discovery.cpp.o.d"
  "CMakeFiles/crowdrank_core.dir/two_round.cpp.o"
  "CMakeFiles/crowdrank_core.dir/two_round.cpp.o.d"
  "libcrowdrank_core.a"
  "libcrowdrank_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
