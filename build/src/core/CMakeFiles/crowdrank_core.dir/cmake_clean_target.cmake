file(REMOVE_RECURSE
  "libcrowdrank_core.a"
)
