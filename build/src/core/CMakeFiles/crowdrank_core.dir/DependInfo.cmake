
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/confidence.cpp" "src/core/CMakeFiles/crowdrank_core.dir/confidence.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/confidence.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/core/CMakeFiles/crowdrank_core.dir/diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/diagnostics.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/crowdrank_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/planning.cpp" "src/core/CMakeFiles/crowdrank_core.dir/planning.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/planning.cpp.o.d"
  "/root/repo/src/core/propagation.cpp" "src/core/CMakeFiles/crowdrank_core.dir/propagation.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/propagation.cpp.o.d"
  "/root/repo/src/core/saps.cpp" "src/core/CMakeFiles/crowdrank_core.dir/saps.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/saps.cpp.o.d"
  "/root/repo/src/core/smoothing.cpp" "src/core/CMakeFiles/crowdrank_core.dir/smoothing.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/smoothing.cpp.o.d"
  "/root/repo/src/core/taps.cpp" "src/core/CMakeFiles/crowdrank_core.dir/taps.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/taps.cpp.o.d"
  "/root/repo/src/core/taps_reference.cpp" "src/core/CMakeFiles/crowdrank_core.dir/taps_reference.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/taps_reference.cpp.o.d"
  "/root/repo/src/core/task_assignment.cpp" "src/core/CMakeFiles/crowdrank_core.dir/task_assignment.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/task_assignment.cpp.o.d"
  "/root/repo/src/core/truth_discovery.cpp" "src/core/CMakeFiles/crowdrank_core.dir/truth_discovery.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/truth_discovery.cpp.o.d"
  "/root/repo/src/core/two_round.cpp" "src/core/CMakeFiles/crowdrank_core.dir/two_round.cpp.o" "gcc" "src/core/CMakeFiles/crowdrank_core.dir/two_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/crowdrank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdrank_crowd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
