# Empty compiler generated dependencies file for crowdrank_util.
# This may be replaced when dependencies are built.
