file(REMOVE_RECURSE
  "libcrowdrank_util.a"
)
