file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_util.dir/error.cpp.o"
  "CMakeFiles/crowdrank_util.dir/error.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/logging.cpp.o"
  "CMakeFiles/crowdrank_util.dir/logging.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/math.cpp.o"
  "CMakeFiles/crowdrank_util.dir/math.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/matrix.cpp.o"
  "CMakeFiles/crowdrank_util.dir/matrix.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/rng.cpp.o"
  "CMakeFiles/crowdrank_util.dir/rng.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/stats.cpp.o"
  "CMakeFiles/crowdrank_util.dir/stats.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/table.cpp.o"
  "CMakeFiles/crowdrank_util.dir/table.cpp.o.d"
  "CMakeFiles/crowdrank_util.dir/timer.cpp.o"
  "CMakeFiles/crowdrank_util.dir/timer.cpp.o.d"
  "libcrowdrank_util.a"
  "libcrowdrank_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
