file(REMOVE_RECURSE
  "libcrowdrank_crowd.a"
)
