
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/amt_dataset.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/amt_dataset.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/amt_dataset.cpp.o.d"
  "/root/repo/src/crowd/behaviors.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/behaviors.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/behaviors.cpp.o.d"
  "/root/repo/src/crowd/budget.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/budget.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/budget.cpp.o.d"
  "/root/repo/src/crowd/hit.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/hit.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/hit.cpp.o.d"
  "/root/repo/src/crowd/interactive.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/interactive.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/interactive.cpp.o.d"
  "/root/repo/src/crowd/simulator.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/simulator.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/simulator.cpp.o.d"
  "/root/repo/src/crowd/worker.cpp" "src/crowd/CMakeFiles/crowdrank_crowd.dir/worker.cpp.o" "gcc" "src/crowd/CMakeFiles/crowdrank_crowd.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/crowdrank_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
