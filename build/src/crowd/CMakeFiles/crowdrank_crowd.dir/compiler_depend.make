# Empty compiler generated dependencies file for crowdrank_crowd.
# This may be replaced when dependencies are built.
