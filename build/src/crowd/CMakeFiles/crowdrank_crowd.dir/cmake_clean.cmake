file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_crowd.dir/amt_dataset.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/amt_dataset.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/behaviors.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/behaviors.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/budget.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/budget.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/hit.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/hit.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/interactive.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/interactive.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/simulator.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/simulator.cpp.o.d"
  "CMakeFiles/crowdrank_crowd.dir/worker.cpp.o"
  "CMakeFiles/crowdrank_crowd.dir/worker.cpp.o.d"
  "libcrowdrank_crowd.a"
  "libcrowdrank_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
