
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bradley_terry.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/bradley_terry.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/bradley_terry.cpp.o.d"
  "/root/repo/src/baselines/crowd_bt.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/crowd_bt.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/crowd_bt.cpp.o.d"
  "/root/repo/src/baselines/local_kemeny.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/local_kemeny.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/local_kemeny.cpp.o.d"
  "/root/repo/src/baselines/majority_vote.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/majority_vote.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/majority_vote.cpp.o.d"
  "/root/repo/src/baselines/quicksort_rank.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/quicksort_rank.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/quicksort_rank.cpp.o.d"
  "/root/repo/src/baselines/repeat_choice.cpp" "src/baselines/CMakeFiles/crowdrank_baselines.dir/repeat_choice.cpp.o" "gcc" "src/baselines/CMakeFiles/crowdrank_baselines.dir/repeat_choice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/crowdrank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdrank_crowd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
