file(REMOVE_RECURSE
  "libcrowdrank_baselines.a"
)
