file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_baselines.dir/bradley_terry.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/bradley_terry.cpp.o.d"
  "CMakeFiles/crowdrank_baselines.dir/crowd_bt.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/crowd_bt.cpp.o.d"
  "CMakeFiles/crowdrank_baselines.dir/local_kemeny.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/local_kemeny.cpp.o.d"
  "CMakeFiles/crowdrank_baselines.dir/majority_vote.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/majority_vote.cpp.o.d"
  "CMakeFiles/crowdrank_baselines.dir/quicksort_rank.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/quicksort_rank.cpp.o.d"
  "CMakeFiles/crowdrank_baselines.dir/repeat_choice.cpp.o"
  "CMakeFiles/crowdrank_baselines.dir/repeat_choice.cpp.o.d"
  "libcrowdrank_baselines.a"
  "libcrowdrank_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
