# Empty dependencies file for crowdrank_baselines.
# This may be replaced when dependencies are built.
