file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_io.dir/args.cpp.o"
  "CMakeFiles/crowdrank_io.dir/args.cpp.o.d"
  "CMakeFiles/crowdrank_io.dir/commands.cpp.o"
  "CMakeFiles/crowdrank_io.dir/commands.cpp.o.d"
  "CMakeFiles/crowdrank_io.dir/csv.cpp.o"
  "CMakeFiles/crowdrank_io.dir/csv.cpp.o.d"
  "CMakeFiles/crowdrank_io.dir/records.cpp.o"
  "CMakeFiles/crowdrank_io.dir/records.cpp.o.d"
  "libcrowdrank_io.a"
  "libcrowdrank_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
