file(REMOVE_RECURSE
  "libcrowdrank_io.a"
)
