# Empty compiler generated dependencies file for crowdrank_io.
# This may be replaced when dependencies are built.
