file(REMOVE_RECURSE
  "libcrowdrank_metrics.a"
)
