file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_metrics.dir/kendall.cpp.o"
  "CMakeFiles/crowdrank_metrics.dir/kendall.cpp.o.d"
  "CMakeFiles/crowdrank_metrics.dir/ranking.cpp.o"
  "CMakeFiles/crowdrank_metrics.dir/ranking.cpp.o.d"
  "CMakeFiles/crowdrank_metrics.dir/spearman.cpp.o"
  "CMakeFiles/crowdrank_metrics.dir/spearman.cpp.o.d"
  "CMakeFiles/crowdrank_metrics.dir/topk.cpp.o"
  "CMakeFiles/crowdrank_metrics.dir/topk.cpp.o.d"
  "libcrowdrank_metrics.a"
  "libcrowdrank_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
