# Empty compiler generated dependencies file for crowdrank_metrics.
# This may be replaced when dependencies are built.
