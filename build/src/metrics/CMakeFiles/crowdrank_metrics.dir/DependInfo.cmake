
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/kendall.cpp" "src/metrics/CMakeFiles/crowdrank_metrics.dir/kendall.cpp.o" "gcc" "src/metrics/CMakeFiles/crowdrank_metrics.dir/kendall.cpp.o.d"
  "/root/repo/src/metrics/ranking.cpp" "src/metrics/CMakeFiles/crowdrank_metrics.dir/ranking.cpp.o" "gcc" "src/metrics/CMakeFiles/crowdrank_metrics.dir/ranking.cpp.o.d"
  "/root/repo/src/metrics/spearman.cpp" "src/metrics/CMakeFiles/crowdrank_metrics.dir/spearman.cpp.o" "gcc" "src/metrics/CMakeFiles/crowdrank_metrics.dir/spearman.cpp.o.d"
  "/root/repo/src/metrics/topk.cpp" "src/metrics/CMakeFiles/crowdrank_metrics.dir/topk.cpp.o" "gcc" "src/metrics/CMakeFiles/crowdrank_metrics.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
