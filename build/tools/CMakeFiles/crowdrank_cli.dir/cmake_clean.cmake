file(REMOVE_RECURSE
  "CMakeFiles/crowdrank_cli.dir/crowdrank_cli.cpp.o"
  "CMakeFiles/crowdrank_cli.dir/crowdrank_cli.cpp.o.d"
  "crowdrank"
  "crowdrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrank_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
