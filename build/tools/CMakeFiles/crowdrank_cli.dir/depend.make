# Empty dependencies file for crowdrank_cli.
# This may be replaced when dependencies are built.
