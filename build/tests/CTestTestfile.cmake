# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build/tests/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_metrics "/root/repo/build/tests/test_metrics")
set_tests_properties(test_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;27;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crowd "/root/repo/build/tests/test_crowd")
set_tests_properties(test_crowd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;33;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;42;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_baselines "/root/repo/build/tests/test_baselines")
set_tests_properties(test_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;57;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;65;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_property "/root/repo/build/tests/test_property")
set_tests_properties(test_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;69;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_io "/root/repo/build/tests/test_io")
set_tests_properties(test_io PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;73;crowdrank_add_test;/root/repo/tests/CMakeLists.txt;0;")
