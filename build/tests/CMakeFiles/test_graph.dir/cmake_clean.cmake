file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/test_hamiltonian.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_hamiltonian.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_preference_graph.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_preference_graph.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_scc.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_scc.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_task_graph.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_task_graph.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_theorems.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_theorems.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_transitive_closure.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_transitive_closure.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
