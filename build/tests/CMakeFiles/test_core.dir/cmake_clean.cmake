file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_confidence.cpp.o"
  "CMakeFiles/test_core.dir/core/test_confidence.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_diagnostics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_diagnostics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_planning.cpp.o"
  "CMakeFiles/test_core.dir/core/test_planning.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_propagation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_propagation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_propagation_spectral.cpp.o"
  "CMakeFiles/test_core.dir/core/test_propagation_spectral.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_saps.cpp.o"
  "CMakeFiles/test_core.dir/core/test_saps.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_smoothing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_smoothing.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_taps.cpp.o"
  "CMakeFiles/test_core.dir/core/test_taps.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_taps_reference.cpp.o"
  "CMakeFiles/test_core.dir/core/test_taps_reference.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_task_assignment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_task_assignment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_truth_discovery.cpp.o"
  "CMakeFiles/test_core.dir/core/test_truth_discovery.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_two_round.cpp.o"
  "CMakeFiles/test_core.dir/core/test_two_round.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
