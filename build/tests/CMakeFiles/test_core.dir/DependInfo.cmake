
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_confidence.cpp" "tests/CMakeFiles/test_core.dir/core/test_confidence.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_confidence.cpp.o.d"
  "/root/repo/tests/core/test_diagnostics.cpp" "tests/CMakeFiles/test_core.dir/core/test_diagnostics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_diagnostics.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_planning.cpp" "tests/CMakeFiles/test_core.dir/core/test_planning.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_planning.cpp.o.d"
  "/root/repo/tests/core/test_propagation.cpp" "tests/CMakeFiles/test_core.dir/core/test_propagation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_propagation.cpp.o.d"
  "/root/repo/tests/core/test_propagation_spectral.cpp" "tests/CMakeFiles/test_core.dir/core/test_propagation_spectral.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_propagation_spectral.cpp.o.d"
  "/root/repo/tests/core/test_saps.cpp" "tests/CMakeFiles/test_core.dir/core/test_saps.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_saps.cpp.o.d"
  "/root/repo/tests/core/test_smoothing.cpp" "tests/CMakeFiles/test_core.dir/core/test_smoothing.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_smoothing.cpp.o.d"
  "/root/repo/tests/core/test_taps.cpp" "tests/CMakeFiles/test_core.dir/core/test_taps.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_taps.cpp.o.d"
  "/root/repo/tests/core/test_taps_reference.cpp" "tests/CMakeFiles/test_core.dir/core/test_taps_reference.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_taps_reference.cpp.o.d"
  "/root/repo/tests/core/test_task_assignment.cpp" "tests/CMakeFiles/test_core.dir/core/test_task_assignment.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_task_assignment.cpp.o.d"
  "/root/repo/tests/core/test_truth_discovery.cpp" "tests/CMakeFiles/test_core.dir/core/test_truth_discovery.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_truth_discovery.cpp.o.d"
  "/root/repo/tests/core/test_two_round.cpp" "tests/CMakeFiles/test_core.dir/core/test_two_round.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_two_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/crowdrank_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/crowdrank_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crowdrank_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdrank_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/crowdrank_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrank_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrank_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
