file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_math.cpp.o"
  "CMakeFiles/test_util.dir/util/test_math.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_matrix.cpp.o"
  "CMakeFiles/test_util.dir/util/test_matrix.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_support.cpp.o"
  "CMakeFiles/test_util.dir/util/test_support.cpp.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
