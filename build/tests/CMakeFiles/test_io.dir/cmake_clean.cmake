file(REMOVE_RECURSE
  "CMakeFiles/test_io.dir/io/test_args.cpp.o"
  "CMakeFiles/test_io.dir/io/test_args.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_cli.cpp.o"
  "CMakeFiles/test_io.dir/io/test_cli.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_csv.cpp.o"
  "CMakeFiles/test_io.dir/io/test_csv.cpp.o.d"
  "CMakeFiles/test_io.dir/io/test_records.cpp.o"
  "CMakeFiles/test_io.dir/io/test_records.cpp.o.d"
  "test_io"
  "test_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
