file(REMOVE_RECURSE
  "CMakeFiles/test_metrics.dir/metrics/test_kendall.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_kendall.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_ranking.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_ranking.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_spearman.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_spearman.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_topk.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_topk.cpp.o.d"
  "test_metrics"
  "test_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
