file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/test_bradley_terry.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_bradley_terry.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_crowd_bt.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_crowd_bt.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_local_kemeny.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_local_kemeny.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_majority_vote.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_majority_vote.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_quicksort.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_quicksort.cpp.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_repeat_choice.cpp.o"
  "CMakeFiles/test_baselines.dir/baselines/test_repeat_choice.cpp.o.d"
  "test_baselines"
  "test_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
