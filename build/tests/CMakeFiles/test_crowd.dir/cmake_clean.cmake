file(REMOVE_RECURSE
  "CMakeFiles/test_crowd.dir/crowd/test_amt_dataset.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_amt_dataset.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_behaviors.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_behaviors.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_budget.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_budget.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_hit.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_hit.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_interactive.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_interactive.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_simulator.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_simulator.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_worker.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_worker.cpp.o.d"
  "test_crowd"
  "test_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
