file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_invariants.cpp.o"
  "CMakeFiles/test_property.dir/property/test_invariants.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_metamorphic.cpp.o"
  "CMakeFiles/test_property.dir/property/test_metamorphic.cpp.o.d"
  "test_property"
  "test_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
