file(REMOVE_RECURSE
  "CMakeFiles/interactive_vs_batch.dir/interactive_vs_batch.cpp.o"
  "CMakeFiles/interactive_vs_batch.dir/interactive_vs_batch.cpp.o.d"
  "interactive_vs_batch"
  "interactive_vs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_vs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
