# Empty compiler generated dependencies file for interactive_vs_batch.
# This may be replaced when dependencies are built.
