file(REMOVE_RECURSE
  "CMakeFiles/image_ranking.dir/image_ranking.cpp.o"
  "CMakeFiles/image_ranking.dir/image_ranking.cpp.o.d"
  "image_ranking"
  "image_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
