# Empty dependencies file for image_ranking.
# This may be replaced when dependencies are built.
