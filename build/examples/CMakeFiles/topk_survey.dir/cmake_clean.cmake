file(REMOVE_RECURSE
  "CMakeFiles/topk_survey.dir/topk_survey.cpp.o"
  "CMakeFiles/topk_survey.dir/topk_survey.cpp.o.d"
  "topk_survey"
  "topk_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
