# Empty dependencies file for topk_survey.
# This may be replaced when dependencies are built.
