// Non-interactive pipeline vs interactive CrowdBT at identical dollars —
// the paper's central comparison (§I, §VI-E), runnable on one simulated
// world.
//
// The point the paper makes: when the task is time-sensitive you get ONE
// round; this library's assignment + inference extracts nearly the same
// accuracy as an interactive learner that re-plans after every answer,
// while CrowdBT's per-answer active-learning scan costs orders of
// magnitude more compute (and wall-clock rounds you may not have).
//
//   ./build/examples/interactive_vs_batch [n=80] [ratio=0.4]
#include <cstdio>
#include <cstdlib>

#include "crowdrank.hpp"

int main(int argc, char** argv) {
  using namespace crowdrank;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 80;
  const double ratio = argc > 2 ? std::atof(argv[2]) : 0.4;
  const std::size_t m = 30;

  Rng rng(11);
  auto perm = rng.permutation(n);
  const Ranking truth(std::vector<VertexId>(perm.begin(), perm.end()));
  auto workers = sample_worker_pool(
      m, {QualityDistribution::Gaussian, QualityLevel::Medium}, rng);
  const SimulatedCrowd crowd(truth, workers);
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(n, ratio, 0.025, 3);
  std::printf("world: n=%zu, budget $%.2f (%zu comparisons x 3 workers)\n\n",
              n, budget.total_cost(), budget.unique_task_count());

  // --- Non-interactive: one round, then 4-step inference. ---
  Stopwatch batch_watch;
  const auto ta =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 3}, m, rng);
  const VoteBatch votes = crowd.collect(assignment, rng);
  api::Request request;
  request.votes = votes;
  request.object_count = n;
  request.worker_count = m;
  request.repair = false;  // assignment keys on raw ids; strict contract
  request.assignment = &assignment;
  const api::Response batch = api::rank(request);
  if (!batch.ok()) {
    std::printf("batch inference failed: %s\n", batch.reason.c_str());
    return 1;
  }
  const double batch_secs = batch_watch.elapsed_seconds();
  const double batch_acc = ranking_accuracy(truth, batch.inference->ranking);

  // --- Interactive: CrowdBT re-plans after every purchased answer. ---
  Stopwatch bt_watch;
  Rng bt_rng(2);
  InteractiveCrowd oracle(crowd, budget, bt_rng);
  const auto bt = crowd_bt_interactive(oracle, n, m, {}, bt_rng);
  const double bt_secs = bt_watch.elapsed_seconds();
  const double bt_acc = ranking_accuracy(truth, bt.ranking);

  std::printf("%-28s %10s %12s %10s\n", "method", "rounds", "accuracy",
              "time");
  std::printf("%-28s %10s %12.3f %9.3fs\n",
              "crowdrank (non-interactive)", "1", batch_acc, batch_secs);
  std::printf("%-28s %10zu %12.3f %9.3fs\n", "CrowdBT (interactive)",
              bt.answers_used, bt_acc, bt_secs);
  std::printf("\ncrowdrank used %zu votes collected in a single round; "
              "CrowdBT needed %zu sequential crowd round-trips for the "
              "same dollars.\n",
              votes.size(), bt.answers_used);
  return 0;
}
