// Image ranking a la the paper's AMT study (§VI-A3/D): ask a simulated
// crowd which of two celebrity photos shows a bigger smile, for a set of
// deliberately hard-to-distinguish images, then aggregate with both the
// exact (TAPS) and the heuristic (SAPS) Step-4 search and compare.
//
//   ./build/examples/image_ranking [num_images=10]
#include <cstdio>
#include <cstdlib>

#include "crowdrank.hpp"

int main(int argc, char** argv) {
  using namespace crowdrank;
  const std::size_t images =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  Rng rng(7);
  // 1,800 virtual photos; select `images` whose machine ranks are within
  // 46 of each other (the paper's hard-instance filter).
  const AmtSmileDataset dataset({.num_images = images}, rng);
  std::printf("selected %zu images; machine-rank positions:", images);
  for (const std::size_t p : dataset.universe_positions()) {
    std::printf(" %zu", p);
  }
  std::printf("\n");

  // Budget: 50%% of all pairs, 25 answers per comparison, $0.025 each.
  const std::size_t pool = 150;
  auto workers = sample_worker_pool(
      pool, {QualityDistribution::Uniform, QualityLevel::Medium}, rng);
  const BudgetModel budget =
      BudgetModel::for_selection_ratio(images, 0.5, 0.025, 25);
  std::printf("budget $%.2f buys %zu unique comparisons x 25 workers\n",
              budget.total_cost(), budget.unique_task_count());

  const auto ta =
      generate_task_assignment(images, budget.unique_task_count(), rng);
  std::vector<Edge> tasks(ta.graph.edges().begin(), ta.graph.edges().end());
  const HitAssignment assignment(tasks, HitConfig{5, 25}, pool, rng);
  const VoteBatch votes = dataset.collect(assignment, workers, rng);
  std::printf("collected %zu votes in one round\n", votes.size());

  // Both Step-4 searches go through the api facade: the HIT assignment
  // keys on raw object ids, so repair stays off (the strict engine
  // contract) and failures surface structurally instead of throwing.
  api::Request request;
  request.votes = votes;
  request.object_count = images;
  request.worker_count = pool;
  request.repair = false;
  request.assignment = &assignment;

  // Exact search (TAPS; images <= 20 keeps it tractable).
  request.inference.search = RankSearchMethod::Taps;
  const api::Response taps = api::rank(request);

  // Heuristic search (SAPS).
  request.inference.search = RankSearchMethod::Saps;
  const api::Response saps = api::rank(request);
  if (!taps.ok() || !saps.ok()) {
    std::printf("inference failed: %s\n",
                (!taps.ok() ? taps : saps).reason.c_str());
    return 1;
  }

  const auto print_ranking = [](const char* name, const Ranking& r) {
    std::printf("%-14s:", name);
    for (std::size_t p = 0; p < r.size(); ++p) {
      std::printf(" img%zu", r.object_at(p));
    }
    std::printf("\n");
  };
  print_ranking("TAPS (exact)", taps.inference->ranking);
  print_ranking("SAPS", saps.inference->ranking);
  print_ranking("machine", dataset.machine_ranking());

  std::printf("TAPS-SAPS agreement   : %.3f\n",
              ranking_accuracy(taps.inference->ranking,
                               saps.inference->ranking));
  std::printf("SAPS vs machine       : %.3f (reference only — the paper "
              "treats neither as ground truth)\n",
              ranking_accuracy(dataset.machine_ranking(),
                               saps.inference->ranking));
  return 0;
}
