// Quickstart: rank 50 objects from one non-interactive crowdsourcing round
// on a tenth of the pairwise-comparison budget.
//
// This walks the whole public API surface in ~40 lines: budget -> task
// assignment -> HITs -> (simulated) crowd -> 4-step inference -> accuracy.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "crowdrank.hpp"

int main() {
  using namespace crowdrank;

  // Configure one experiment: n objects, a budget that affords only 10% of
  // the C(n,2) comparisons, replicated to 3 of the 25 pooled workers.
  ExperimentConfig config;
  config.object_count = 50;
  config.selection_ratio = 0.10;
  config.worker_pool_size = 25;
  config.workers_per_task = 3;
  config.reward_per_comparison = 0.025;  // the paper's AMT rate
  config.worker_quality = {QualityDistribution::Gaussian,
                           QualityLevel::Medium};
  config.seed = 2024;

  const ExperimentResult result = run_experiment(config);

  std::printf("objects                : %zu\n", config.object_count);
  std::printf("unique comparisons     : %zu (of %zu possible)\n",
              result.unique_tasks,
              config.object_count * (config.object_count - 1) / 2);
  std::printf("total crowd cost       : $%.2f\n", result.total_cost);
  std::printf("task graph fair        : %s (degrees %zu..%zu)\n",
              result.assignment_stats.fair ? "yes" : "no",
              result.assignment_stats.min_degree,
              result.assignment_stats.max_degree);
  std::printf("truth discovery        : %zu iterations, %zu 1-edges\n",
              result.inference.step1.iterations,
              result.inference.one_edge_count);
  std::printf("ranking accuracy       : %.3f (1 - Kendall tau distance)\n",
              result.accuracy);

  std::printf("\ninferred top 10        :");
  for (std::size_t p = 0; p < 10; ++p) {
    std::printf(" %zu", result.inference.ranking.object_at(p));
  }
  std::printf("\nground-truth top 10    :");
  for (std::size_t p = 0; p < 10; ++p) {
    std::printf(" %zu", result.truth.object_at(p));
  }
  std::printf("\n");
  return 0;
}
