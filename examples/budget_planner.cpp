// Budget planner: "I have $B and n objects — what ranking quality can I
// expect?" Sweeps the affordable selection ratios for a given budget,
// reward, and replication, reporting the Thm-4.4 HP-likelihood bound and a
// simulated accuracy estimate for each. The planning loop a requester
// would run before posting HITs.
//
//   ./build/examples/budget_planner [n=100] [budget=50] [reward=0.025] [w=3]
#include <cstdio>
#include <cstdlib>

#include "crowdrank.hpp"

int main(int argc, char** argv) {
  using namespace crowdrank;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
  const double budget_dollars = argc > 2 ? std::atof(argv[2]) : 50.0;
  const double reward = argc > 3 ? std::atof(argv[3]) : 0.025;
  const std::size_t w =
      argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 3;

  const std::size_t all_pairs = math::pair_count(n);
  const BudgetModel full(budget_dollars, reward, w);
  const std::size_t affordable = full.unique_task_count();
  std::printf("n = %zu objects -> %zu distinct pairs\n", n, all_pairs);
  std::printf("$%.2f at $%.3f/comparison x %zu workers buys %zu unique "
              "comparisons (ratio %.2f)\n\n",
              budget_dollars, reward, w, affordable,
              full.selection_ratio(n));

  if (affordable < n - 1) {
    std::printf("budget cannot even connect the %zu objects (need >= %zu "
                "comparisons) — increase the budget or drop objects.\n",
                n, n - 1);
    return 1;
  }

  std::printf("%8s %10s %12s %8s %10s %10s\n", "ratio", "pairs", "cost($)",
              "Pr_l", "est.acc", "cost/obj");
  const double ratios[] = {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0};
  for (const double ratio : ratios) {
    const std::size_t l = std::min(
        all_pairs,
        std::max<std::size_t>(
            n - 1, static_cast<std::size_t>(ratio *
                                            static_cast<double>(all_pairs))));
    const double cost = static_cast<double>(l) * static_cast<double>(w) *
                        reward;
    if (cost > budget_dollars + 1e-9) {
      std::printf("%8.2f %10zu %12.2f   -- exceeds budget --\n", ratio, l,
                  cost);
      continue;
    }
    // Fairness math: degree ~ 2l/n, Thm 4.4 bound for the regular graph.
    const auto degree = std::max<std::size_t>(1, 2 * l / n);
    const double pr_l = hp_likelihood_lower_bound(n, degree, degree + 1);

    // Quick simulation (2 seeds) for an accuracy estimate.
    double acc = 0.0;
    for (std::uint64_t seed = 0; seed < 2; ++seed) {
      ExperimentConfig config;
      config.object_count = n;
      config.selection_ratio = ratio;
      config.worker_pool_size = 30;
      config.workers_per_task = w;
      config.reward_per_comparison = reward;
      config.worker_quality = {QualityDistribution::Gaussian,
                               QualityLevel::Medium};
      config.seed = 77 + seed;
      acc += run_experiment(config).accuracy;
    }
    acc /= 2.0;
    std::printf("%8.2f %10zu %12.2f %8.4f %10.3f %10.3f\n", ratio, l, cost,
                pr_l, acc, cost / static_cast<double>(n));
  }
  std::printf("\nPr_l: Thm 4.4 lower bound that the preference closure "
              "keeps a full ranking reachable.\n");
  std::printf("est.acc: simulated 1 - Kendall-tau vs ground truth, medium "
              "Gaussian workers.\n");
  return 0;
}
