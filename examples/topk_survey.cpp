// Top-k survey: "which 5 of these 60 points of interest should we
// feature?" — the paper's §VIII future-work scenario, built from the
// library's full-ranking pipeline plus the top-k metrics and the budget
// planner.
//
//   ./build/examples/topk_survey [n=60] [k=5] [target=0.9]
#include <cstdio>
#include <cstdlib>

#include "crowdrank.hpp"

int main(int argc, char** argv) {
  using namespace crowdrank;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const std::size_t k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
  const double target = argc > 3 ? std::atof(argv[3]) : 0.9;

  // 1. Plan: cheapest budget expected to clear the target accuracy.
  PlanningConfig planning;
  planning.object_count = n;
  planning.target_accuracy = target;
  planning.worker_quality = {QualityDistribution::Gaussian,
                             QualityLevel::Medium};
  planning.seed = 13;
  const auto plan = plan_budget_for_accuracy(planning);
  if (!plan.has_value()) {
    std::printf("no affordable plan reaches accuracy %.2f with this crowd "
                "profile — recruit better workers or raise replication.\n",
                target);
    return 1;
  }
  std::printf("plan: ratio %.2f -> %zu comparisons, $%.2f "
              "(estimated full-ranking accuracy %.3f, %zu probes)\n\n",
              plan->selection_ratio, plan->unique_comparisons,
              plan->total_cost, plan->estimated_accuracy, plan->probes_run);

  // 2. Execute the plan once and score the head of the ranking.
  ExperimentConfig experiment;
  experiment.object_count = n;
  experiment.selection_ratio = plan->selection_ratio;
  experiment.worker_quality = planning.worker_quality;
  experiment.seed = 2027;
  const ExperimentResult result = run_experiment(experiment);

  std::printf("full-ranking accuracy : %.3f\n", result.accuracy);
  std::printf("top-%zu set precision   : %.3f\n", k,
              top_k_precision(result.truth, result.inference.ranking, k));
  std::printf("top-%zu pair accuracy   : %.3f\n", k,
              top_k_pair_accuracy(result.truth, result.inference.ranking,
                                  k));
  std::printf("top-%zu displacement    : %.3f (0 = head perfectly placed)\n",
              k,
              top_k_displacement(result.truth, result.inference.ranking,
                                 k));

  std::printf("\nfeatured (inferred top-%zu):", k);
  for (std::size_t p = 0; p < k; ++p) {
    std::printf(" POI-%zu", result.inference.ranking.object_at(p));
  }
  std::printf("\ntrue top-%zu              :", k);
  for (std::size_t p = 0; p < k; ++p) {
    std::printf(" POI-%zu", result.truth.object_at(p));
  }
  std::printf("\n");
  return 0;
}
