// crowdrank CLI entry point — all logic lives in io/commands.cpp so the
// commands are unit-testable; this file only adapts main()'s argv.
#include <iostream>
#include <string>
#include <vector>

#include "io/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  return crowdrank::io::run_cli(args, std::cout, std::cerr);
}
