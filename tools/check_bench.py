#!/usr/bin/env python3
"""Perf ratchet: diff a BENCH_pipeline.json against a checked-in baseline.

The bench binary (bench/perf_pipeline) writes every run's wall-ms, kernel
ratios, and correctness booleans to BENCH_pipeline.json. This tool turns
that report into a CI gate:

  * every run label present in the baseline must still be present;
  * wall-clock values (keys ending in `_ms`, and every `phases_ms` entry)
    may not regress past `--tolerance` (default 3.0x — wide enough to
    absorb runner-to-runner variance, tight enough to catch a kernel
    silently falling off its fast path);
  * correctness booleans (`identical`, `rankings_match`,
    `telemetry_overhead_ok`, `cache_correct`, `arena_zero_steady`) must
    be true, exactly as the baseline recorded them;
  * rows whose baseline carries a `speedup_floor` note must keep their
    current `speedup` at or above 0.9x that floor (the 0.9 absorbs
    run-to-run jitter; the floor itself encodes the expectation, e.g.
    "the CSR entry point never loses to force-densifying" at 1.0, or
    "AVX2 beats scalar by 1.5x" on the simd kernel rows);
  * deterministic integers (`densify_step`, `horizon`, `n`) must match
    exactly — a changed densify step means the sparse-first propagation
    switched representation at a different point than the baseline pinned;
  * `accuracy` must stay within +/-0.05 of the baseline (the pipeline is
    seed-deterministic, so real drift means behavior changed).

Timings under 0.5 ms are never gated on ratio alone (an additive noise
floor is applied) — micro-kernel rows at n=100 jitter far more than 3x.

Usage:
  check_bench.py --baseline B.json --current BENCH_pipeline.json   # gate
  check_bench.py --baseline B.json --current BENCH_pipeline.json --update
  check_bench.py --baseline B.json --self-test                     # meta

--update copies the current report over the baseline (run it on the bench
box after an intentional perf change, and commit the result). --self-test
injects a synthetic slowdown into a copy of the baseline and verifies the
differ actually fails it — the ratchet's own regression test, wired into
CI so a refactor of this file cannot silently neuter the gate.
"""

from __future__ import annotations

import argparse
import copy
import json
import shutil
import sys

# Additive slack applied on top of the ratio gate: current fails only when
# current > baseline * tolerance + NOISE_FLOOR_MS.
NOISE_FLOOR_MS = 0.5

BOOLEAN_KEYS = {"identical", "rankings_match", "telemetry_overhead_ok",
                "cache_correct", "arena_zero_steady"}
EXACT_INT_KEYS = {"densify_step", "horizon", "n"}
ACCURACY_TOLERANCE = 0.05

# Slack on `speedup_floor` rows: current speedup must stay at or above
# floor * SPEEDUP_FLOOR_SLACK (the floor states the expectation; the slack
# absorbs runner jitter without letting a kernel quietly fall to parity).
SPEEDUP_FLOOR_SLACK = 0.9


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def runs_by_label(report):
    return {run["label"]: run for run in report.get("runs", [])}


def compare(baseline, current, tolerance):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    base_runs = runs_by_label(baseline)
    cur_runs = runs_by_label(current)

    for label, base in base_runs.items():
        cur = cur_runs.get(label)
        if cur is None:
            failures.append(f"{label}: run missing from current report")
            continue
        base_floor = base.get("notes", {}).get("speedup_floor")
        if base_floor is not None:
            cur_speedup = cur.get("notes", {}).get("speedup")
            if cur_speedup is None:
                failures.append(
                    f"{label}.speedup: missing from current report "
                    f"(baseline carries speedup_floor {base_floor})")
            elif cur_speedup < base_floor * SPEEDUP_FLOOR_SLACK:
                failures.append(
                    f"{label}.speedup: {cur_speedup:.3f} below floor "
                    f"{base_floor} x {SPEEDUP_FLOOR_SLACK}")
        pairs = []
        for key, base_value in base.get("notes", {}).items():
            pairs.append((key, base_value, cur.get("notes", {}).get(key)))
        for key, base_value in base.get("phases_ms", {}).items():
            pairs.append(
                (f"phases_ms.{key}", base_value,
                 cur.get("phases_ms", {}).get(key)))

        for key, base_value, cur_value in pairs:
            leaf = key.rsplit(".", 1)[-1]
            if cur_value is None:
                failures.append(f"{label}.{key}: missing from current report")
            elif leaf in BOOLEAN_KEYS:
                if cur_value is not True or base_value is not True:
                    failures.append(
                        f"{label}.{key}: correctness flag is "
                        f"{cur_value} (baseline {base_value}, must be true)")
            elif leaf in EXACT_INT_KEYS:
                if cur_value != base_value:
                    failures.append(
                        f"{label}.{key}: {cur_value} != baseline "
                        f"{base_value} (exact match required)")
            elif leaf == "accuracy":
                if abs(cur_value - base_value) > ACCURACY_TOLERANCE:
                    failures.append(
                        f"{label}.{key}: {cur_value:.4f} drifted past "
                        f"+/-{ACCURACY_TOLERANCE} from baseline "
                        f"{base_value:.4f}")
            elif key.endswith("_ms") or key.startswith("phases_ms."):
                limit = base_value * tolerance + NOISE_FLOOR_MS
                if cur_value > limit:
                    failures.append(
                        f"{label}.{key}: {cur_value:.3f} ms exceeds "
                        f"{limit:.3f} ms "
                        f"(baseline {base_value:.3f} ms x {tolerance})")
            # Remaining keys (threads, sparse_flops, speedup on rows
            # without a floor, ...) are informational: derived from gated
            # values or hardware-bound.
    return failures


def self_test(baseline, tolerance):
    """The differ must pass an identical report and fail an injected
    slowdown / a flipped correctness flag / a shifted densify step."""
    clean = compare(baseline, copy.deepcopy(baseline), tolerance)
    if clean:
        return [f"self-test: baseline does not pass against itself: {clean}"]

    problems = []

    def expect_failure(mutate, description):
        mutated = copy.deepcopy(baseline)
        if not mutate(mutated):
            return  # baseline has no site to mutate; skip this probe
        if not compare(baseline, mutated, tolerance):
            problems.append(f"self-test: differ missed {description}")

    def slow_down(report):
        for run in report.get("runs", []):
            for key, value in run.get("notes", {}).items():
                if key.endswith("_ms") and value > 0.0:
                    run["notes"][key] = value * tolerance * 10 + 10.0
                    return True
        return False

    def flip_flag(report):
        for run in report.get("runs", []):
            for key in run.get("notes", {}):
                if key in BOOLEAN_KEYS:
                    run["notes"][key] = False
                    return True
        return False

    def shift_densify(report):
        for run in report.get("runs", []):
            if "densify_step" in run.get("notes", {}):
                run["notes"]["densify_step"] += 1
                return True
        return False

    def sink_speedup(report):
        for run in report.get("runs", []):
            notes = run.get("notes", {})
            if "speedup_floor" in notes and "speedup" in notes:
                notes["speedup"] = (
                    notes["speedup_floor"] * SPEEDUP_FLOOR_SLACK * 0.5)
                return True
        return False

    expect_failure(slow_down, "an injected slowdown")
    expect_failure(flip_flag, "a flipped correctness flag")
    expect_failure(shift_densify, "a shifted densify step")
    expect_failure(sink_speedup, "a speedup sunk below its floor")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline BENCH json")
    parser.add_argument("--current", help="freshly produced BENCH json")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed wall-ms ratio vs baseline")
    parser.add_argument("--update", action="store_true",
                        help="copy --current over --baseline and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the differ catches injected "
                             "regressions in the baseline")
    args = parser.parse_args()

    if args.self_test:
        problems = self_test(load(args.baseline), args.tolerance)
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            return 1
        print("check_bench self-test: differ catches injected regressions")
        return 0

    if not args.current:
        parser.error("--current is required unless --self-test")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    failures = compare(load(args.baseline), load(args.current),
                       args.tolerance)
    for failure in failures:
        print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
    if failures:
        print(f"check_bench: {len(failures)} regression(s) vs "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"check_bench: current report within tolerance of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
