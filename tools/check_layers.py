#!/usr/bin/env python3
"""Architecture layering gate: validate src/'s include graph against the
layer DAG checked in as tools/layers.toml.

What it enforces, in one pass over the quoted #include lines of src/:
  * every module -> module edge is listed in [modules] (or sanctioned by a
    [[exceptions]] entry / the [umbrella] section),
  * the observed module graph minus sanctioned edges is acyclic,
  * the declared DAG itself is acyclic and in sync with the directory tree
    (no missing modules, no stale entries),
  * exceptions and umbrella entries refer to files that still exist and
    edges that still occur (a sanctioned edge nobody uses is stale intent).

Modes:
  check_layers.py                    # gate the real tree (default)
  check_layers.py --check-headers    # + compile every public header as a
                                     #   standalone TU (self-containment)
  check_layers.py --self-test        # prove the gate catches an injected
                                     #   upward include and an injected
                                     #   cycle, and passes a clean tree

Exit status: 0 clean, 1 violations found, 2 configuration/usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
import tomllib

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class ConfigError(Exception):
    """layers.toml is malformed or out of sync with the tree."""


def load_config(path):
    with open(path, "rb") as fh:
        raw = tomllib.load(fh)
    if "modules" not in raw:
        raise ConfigError(f"{path}: missing [modules] table")
    config = {
        "modules": {m: set(deps) for m, deps in raw["modules"].items()},
        "external": set(raw.get("external", {}).get("prefixes", [])),
        "umbrella_files": set(raw.get("umbrella", {}).get("files", [])),
        "umbrella_implementors": set(
            raw.get("umbrella", {}).get("implementors", [])),
        "exceptions": {},
    }
    for entry in raw.get("exceptions", []):
        if "file" not in entry or "allow" not in entry:
            raise ConfigError(
                f"{path}: every [[exceptions]] entry needs 'file' and 'allow'")
        if not entry.get("reason"):
            raise ConfigError(
                f"{path}: exception for {entry['file']} has no 'reason' — "
                "sanctioned edges must say why they exist")
        config["exceptions"].setdefault(entry["file"], set()).update(
            entry["allow"])
    for module, deps in config["modules"].items():
        unknown = deps - set(config["modules"])
        if unknown:
            raise ConfigError(
                f"{path}: module '{module}' allows unknown modules "
                f"{sorted(unknown)}")
    return config


def scan_includes(src_root):
    """-> {relative file path: [(line number, include target), ...]}"""
    includes = {}
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, src_root).replace(os.sep, "/")
            entries = []
            with open(path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    match = INCLUDE_RE.match(line)
                    if match:
                        entries.append((lineno, match.group(1)))
            includes[rel] = entries
    return includes


def module_of(rel_path):
    """First path component, or None for top-level files like the umbrella."""
    if "/" not in rel_path:
        return None
    return rel_path.split("/", 1)[0]


def find_cycle(graph):
    """Returns one cycle as a list of nodes, or None. Deterministic order."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for neighbor in sorted(graph.get(node, ())):
            if neighbor not in color:
                continue
            if color[neighbor] == GRAY:
                return stack[stack.index(neighbor):] + [neighbor]
            if color[neighbor] == WHITE:
                cycle = visit(neighbor)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def check_tree(src_root, config):
    """-> (violations, notes): lists of printable strings."""
    includes = scan_includes(src_root)
    violations = []
    notes = []

    tree_modules = {
        name for name in os.listdir(src_root)
        if os.path.isdir(os.path.join(src_root, name))
    }
    declared = set(config["modules"])
    for missing in sorted(tree_modules - declared):
        violations.append(
            f"src/{missing}/: directory exists but is not declared in "
            "layers.toml [modules]")
    for stale in sorted(declared - tree_modules):
        violations.append(
            f"layers.toml: module '{stale}' declared but src/{stale}/ does "
            "not exist")

    declared_cycle = find_cycle(
        {m: deps for m, deps in config["modules"].items()})
    if declared_cycle:
        violations.append(
            "layers.toml: the declared DAG contains a cycle: "
            + " -> ".join(declared_cycle))

    for path in sorted(
            set(config["exceptions"]) | config["umbrella_implementors"]):
        if path not in includes:
            violations.append(
                f"layers.toml: sanctioned file '{path}' does not exist "
                "under src/")

    # Observed module graph, sanctioned edges kept separate.
    observed = {m: set() for m in declared & tree_modules}
    used_exceptions = set()
    for rel, entries in sorted(includes.items()):
        source_module = module_of(rel)
        is_umbrella = rel in config["umbrella_files"]
        sanctioned = config["exceptions"].get(rel, set())
        for lineno, target in entries:
            target_module = module_of(target)
            if target_module is None:
                # Slashless include: only umbrella headers are includable,
                # and only by their sanctioned implementors.
                if target in config["umbrella_files"]:
                    if rel not in config["umbrella_implementors"]:
                        violations.append(
                            f"src/{rel}:{lineno}: includes umbrella header "
                            f'"{target}" but is not listed under '
                            "[umbrella] implementors in layers.toml")
                else:
                    violations.append(
                        f"src/{rel}:{lineno}: unrecognized slashless "
                        f'include "{target}" (same-directory includes must '
                        "be written module-qualified)")
                continue
            if target_module in config["external"]:
                continue
            if target_module not in declared:
                violations.append(
                    f"src/{rel}:{lineno}: includes \"{target}\" from "
                    f"unknown module '{target_module}'")
                continue
            if target_module == source_module or is_umbrella:
                continue
            if target_module in sanctioned:
                used_exceptions.add((rel, target_module))
                continue
            if source_module is None:
                violations.append(
                    f"src/{rel}:{lineno}: top-level file includes "
                    f'"{target}" but is not listed under [umbrella] files')
                continue
            if source_module not in config["modules"]:
                continue  # undeclared directory: already flagged above
            if target_module not in config["modules"][source_module]:
                violations.append(
                    f"src/{rel}:{lineno}: illegal include \"{target}\" — "
                    f"layer '{source_module}' may not depend on "
                    f"'{target_module}' (allowed: "
                    f"{sorted(config['modules'][source_module]) or 'nothing'}"
                    "); see tools/layers.toml")
                continue
            observed[source_module].add(target_module)

    for path, allowed in sorted(config["exceptions"].items()):
        for target_module in sorted(allowed):
            if (path, target_module) not in used_exceptions:
                violations.append(
                    f"layers.toml: exception '{path}' -> '{target_module}' "
                    "is no longer exercised by any include — delete it")

    observed_cycle = find_cycle(observed)
    if observed_cycle:
        violations.append(
            "include cycle between modules (excluding sanctioned edges): "
            + " -> ".join(observed_cycle))

    edge_count = sum(len(deps) for deps in observed.values())
    notes.append(
        f"checked {len(includes)} files, {len(observed)} modules, "
        f"{edge_count} module edges, "
        f"{len(used_exceptions)} sanctioned edges")
    return violations, notes


def check_headers(src_root, build_dir, compiler):
    """Compile every header under src/ as a standalone TU (-fsyntax-only)."""
    generated = os.path.join(build_dir, "generated")
    failures = []
    headers = []
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        headers.extend(
            os.path.join(dirpath, name)
            for name in sorted(filenames) if name.endswith(".hpp"))
    for header in headers:
        cmd = [
            compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
            f"-I{src_root}", f"-I{generated}", header,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            rel = os.path.relpath(header, os.path.dirname(src_root))
            failures.append(
                f"{rel}: not self-contained:\n{proc.stderr.strip()}")
    return failures, len(headers)


# ---------------------------------------------------------------------------
# Self-test: build throwaway trees and prove the gate fails on each kind of
# injected violation (a gate that cannot fail is no gate).
# ---------------------------------------------------------------------------

SELF_TEST_CONFIG = """\
[modules]
util = []
core = ["util"]
service = ["core", "util"]

[external]
prefixes = ["generated"]

[umbrella]
files = ["everything.hpp"]
implementors = ["service/facade.cpp"]

[[exceptions]]
file = "core/contract.hpp"
allow = ["service"]
reason = "self-test sanctioned edge"
"""

SELF_TEST_TREE = {
    "util/a.hpp": '#include "generated/version.hpp"\n',
    "core/b.hpp": '#include "util/a.hpp"\n',
    "core/contract.hpp": '#include "service/s.hpp"\n',
    "service/s.hpp": '#include "core/b.hpp"\n#include "util/a.hpp"\n',
    "service/facade.cpp": '#include "everything.hpp"\n',
    "everything.hpp": '#include "service/s.hpp"\n#include "core/b.hpp"\n',
}


def run_self_test():
    def build_tree(extra=None, config_text=SELF_TEST_CONFIG):
        tmp = tempfile.TemporaryDirectory(prefix="check_layers_selftest_")
        src = os.path.join(tmp.name, "src")
        tree = dict(SELF_TEST_TREE)
        tree.update(extra or {})
        for rel, content in tree.items():
            path = os.path.join(src, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(content)
        config_path = os.path.join(tmp.name, "layers.toml")
        with open(config_path, "w", encoding="utf-8") as fh:
            fh.write(config_text)
        return tmp, src, config_path

    cases = []

    def expect(name, extra, must_fail, needle):
        tmp, src, config_path = build_tree(extra)
        violations, _ = check_tree(src, load_config(config_path))
        matched = any(needle in v for v in violations)
        if must_fail:
            ok = bool(violations) and matched
            detail = "flagged" if ok else (
                f"NOT flagged (got: {violations or 'nothing'})")
        else:
            ok = not violations
            detail = "clean" if ok else f"unexpected: {violations}"
        cases.append((name, ok, detail))
        tmp.cleanup()

    expect("clean tree passes", None, must_fail=False, needle="")
    expect(
        "upward include (util -> service) is flagged",
        {"util/bad.hpp": '#include "service/s.hpp"\n'},
        must_fail=True, needle="illegal include")
    expect(
        "undeclared sideways edge (core -> service) is flagged",
        {"core/climber.cpp": '#include "service/s.hpp"\n'},
        must_fail=True, needle="illegal include")
    expect(
        "umbrella include from a non-implementor is flagged",
        {"core/sneaky.cpp": '#include "everything.hpp"\n'},
        must_fail=True, needle="umbrella")
    expect(
        "unknown module directory is flagged",
        {"rogue/x.hpp": '#include "util/a.hpp"\n'},
        must_fail=True, needle="not declared")

    # Injected cycle: service -> core is declared, add core -> service to
    # the declared DAG and matching includes — the declared-DAG cycle check
    # must fire.
    tmp, src, config_path = build_tree(
        extra={"core/loop.hpp": '#include "service/s.hpp"\n'},
        config_text=SELF_TEST_CONFIG.replace(
            'core = ["util"]', 'core = ["service", "util"]'))
    violations, _ = check_tree(src, load_config(config_path))
    ok = any("cycle" in v for v in violations)
    cases.append(("injected declared-DAG cycle is flagged", ok,
                  "flagged" if ok else f"NOT flagged (got {violations})"))
    tmp.cleanup()

    # Stale exception: sanctioned edge with no matching include.
    tmp, src, config_path = build_tree(
        extra={"core/contract.hpp": '#include "util/a.hpp"\n'})
    violations, _ = check_tree(src, load_config(config_path))
    ok = any("no longer exercised" in v for v in violations)
    cases.append(("stale sanctioned exception is flagged", ok,
                  "flagged" if ok else f"NOT flagged (got {violations})"))
    tmp.cleanup()

    failed = [c for c in cases if not c[1]]
    for name, ok, detail in cases:
        print(f"  {'PASS' if ok else 'FAIL'}  {name}: {detail}")
    if failed:
        print(f"check_layers --self-test: {len(failed)}/{len(cases)} "
              "cases FAILED", file=sys.stderr)
        return 1
    print(f"check_layers --self-test: all {len(cases)} cases passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate src/'s include graph against tools/layers.toml")
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="repository root (default: the checkout containing this script)")
    parser.add_argument(
        "--config", default=None,
        help="layer DAG file (default: <root>/tools/layers.toml)")
    parser.add_argument(
        "--check-headers", action="store_true",
        help="also compile every src/ header as a standalone TU")
    parser.add_argument(
        "--build-dir", default=None,
        help="build dir holding generated/ headers for --check-headers "
             "(default: <root>/build)")
    parser.add_argument(
        "--compiler", default=os.environ.get("CXX", "g++"),
        help="compiler for --check-headers (default: $CXX or g++)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="prove the gate catches injected violations, then exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    src_root = os.path.join(args.root, "src")
    config_path = args.config or os.path.join(args.root, "tools",
                                              "layers.toml")
    try:
        config = load_config(config_path)
    except (ConfigError, OSError, tomllib.TOMLDecodeError) as err:
        print(f"check_layers: {err}", file=sys.stderr)
        return 2

    violations, notes = check_tree(src_root, config)
    for note in notes:
        print(f"check_layers: {note}")
    if args.check_headers:
        build_dir = args.build_dir or os.path.join(args.root, "build")
        failures, header_count = check_headers(src_root, build_dir,
                                               args.compiler)
        print(f"check_layers: compiled {header_count} headers standalone "
              f"({args.compiler})")
        violations.extend(failures)

    if violations:
        for violation in violations:
            print(violation, file=sys.stderr)
        print(f"check_layers: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_layers: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
