#!/usr/bin/env python3
"""Nondeterminism-hazard linter for crowdrank.

The library promises bitwise-reproducible results (DESIGN.md): same votes +
same seed -> same ranking, at any thread count. A handful of C++ constructs
quietly break that promise, so this script bans them in src/:

  rand              libc rand()/srand() — unseeded/global PRNG; all
                    randomness must flow through util/rng.hpp.
  unordered-iter    iterating a std::unordered_* container — iteration
                    order is hash/libc++-version dependent, so anything
                    order-sensitive (float accumulation, output emission)
                    becomes nondeterministic. Keyed lookup is fine; this
                    rule only fires on declared-unordered variables that
                    are ranged-over or .begin()/.end()'d in the same file.
  wall-clock        system_clock / std::time / localtime / gmtime in result
                    computation. Timing utilities (util/timer.*,
                    util/trace.*) are allowlisted; results must not be.
  raw-new           raw new/delete expressions — own memory with
                    containers or smart pointers ('= delete' is fine).
  stderr-outside-logger
                    writing std::cerr / fprintf(stderr, ...) directly —
                    diagnostics in src/ go through util/logging.hpp so
                    level filtering and line-atomic output hold
                    everywhere; the logger's own sink
                    (src/util/logging.cpp) carries the one lint:allow.
  raw-intrinsics    including <immintrin.h> or naming _mm*/__m128/__m256/
                    __m512 vector types and intrinsics outside the simd
                    layer (src/util/simd.hpp, src/util/kernels_avx2.cpp).
                    Hot loops call the dispatched simd:: kernels, whose
                    scalar/AVX2 pairs are proven bitwise-identical by
                    tests/util/test_simd.cpp; an intrinsic anywhere else
                    is an unproven rounding hazard with no scalar twin.
  raw-mutex         naming std::mutex / std::condition_variable /
                    std::lock_guard / std::unique_lock / std::scoped_lock
                    in src/. Locking goes through the annotated
                    crowdrank::Mutex / CondVar / MutexLock wrappers
                    (util/mutex.hpp) so the thread-safety preset can prove
                    the discipline; the wrapper's own internals carry the
                    sanctioned lint:allow escapes.

Two rules are scoped to a subtree rather than all of src/:

  fs-write-in-service    opening, writing, renaming, or deleting files from
                         src/service/ anywhere except the artifact module
                         (src/service/artifact.cpp). Every byte the service
                         persists must flow through the framed, checksummed
                         artifact format — an ofstream elsewhere in the
                         service layer is an unversioned side channel that
                         the result cache, `crowdrank query`, and crash
                         recovery cannot read back. Flags std::ofstream /
                         std::fstream / fopen / fwrite and the mutating
                         std::filesystem calls (create_director*, remove,
                         rename, copy, resize_file).
  dense-in-propagation   constructing a dense Matrix (or materializing one
                         via .to_dense()) inside src/core/propagation.cpp.
                         Propagation is sparse-first (DESIGN.md §7c): the
                         spectral loop must run on SparseMatrix kernels and
                         cross to dense only at the one sanctioned densify
                         point, which carries lint:allow annotations. The
                         rule flags `Matrix(...)`, `Matrix name(...)`,
                         `Matrix::zero/identity`, and `.to_dense(` — but
                         not bare `Matrix m;` declarations, `Matrix x =
                         <kernel call>` assignments (no allocation beyond
                         what the kernel returns), or a column-0 `Matrix`
                         (a function signature's return type).

Beyond src/, the script also enforces the public-API facade
(src/crowdrank.hpp) over out-of-tree consumers:

  engine-outside-facade   naming InferenceEngine in bench/, examples/, or
                          tools/ — consumers drive the pipeline through
                          crowdrank::api::rank (or the batch service), so
                          internal engine refactors cannot break them.
  submodule-include       #include "core/..." (or any other sub-module
                          header) from examples/ — examples are the copy-
                          paste template for downstream users and must
                          compile against the umbrella crowdrank.hpp only.

Suppress a finding for one line with a trailing comment:
    // lint:allow(<rule>)

Also runs clang-format --dry-run -Werror over the C++ sources when a
clang-format binary is available (check-only; never rewrites). Pure
stdlib; exits 0 when clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import os
import re
import shutil
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

# Files whose whole job is to touch the wall clock.
WALL_CLOCK_ALLOWLIST = (
    "src/util/timer.hpp",
    "src/util/timer.cpp",
    "src/util/trace.hpp",
    "src/util/trace.cpp",
)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*"
    r"&?\s*(\w+)\s*[;({=,)]"
)

RULES = {
    "rand": re.compile(r"\b(?:std::)?s?rand\s*\("),
    "wall-clock": re.compile(
        r"\bsystem_clock\b|\bstd::time\s*\(|\blocaltime\b|\bgmtime\b"
    ),
    "raw-new": re.compile(
        r"\bnew\s+[A-Za-z_:(]|\bdelete\s*(?:\[\s*\])?\s+?[A-Za-z_(*]"
    ),
    "stderr-outside-logger": re.compile(
        r"\bstd::cerr\b|\bfprintf\s*\(\s*stderr\b"
    ),
    "raw-mutex": re.compile(
        r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
        r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
    ),
}

# Vectorization choke point: raw intrinsics live only in the simd layer,
# where every AVX2 kernel has a scalar twin and an identity test. The
# dispatch header is allowlisted for the (currently hypothetical) case of
# an inline-intrinsic helper shared by both TUs.
RAW_INTRINSICS_ALLOWED_FILES = (
    "src/util/simd.hpp",
    "src/util/kernels_avx2.cpp",
)
RAW_INTRINSICS_RE = re.compile(
    r"immintrin\.h|\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:128|256|512)\w*\b"
)

# Sparse-first guard for the propagation stage. Construction-with-args and
# dense materialization only: `Matrix m;` declarations and assignments from
# dense kernel returns stay unflagged (they alias or move a result, they do
# not decide the representation).
DENSE_IN_PROPAGATION_FILE = "src/core/propagation.cpp"
DENSE_IN_PROPAGATION_RE = re.compile(
    r"\bMatrix\s*\(|\bMatrix\s+\w+\s*\(|\bMatrix::(?:zero|identity)\b"
    r"|\.to_dense\s*\("
)

# Persistence choke point for the service layer. Everything the service
# writes to disk goes through the artifact module (framed + checksummed);
# any other filesystem write in src/service/ is an unversioned side channel.
# Read-only constructs (ifstream, exists, file_size, directory iteration)
# are deliberately not matched.
FS_WRITE_DIR = "src/service/"
FS_WRITE_ALLOWED_FILES = ("src/service/artifact.cpp",)
FS_WRITE_RE = re.compile(
    r"\bstd::ofstream\b|\bstd::fstream\b|\bfopen\s*\(|\bfwrite\s*\("
    r"|\bstd::filesystem::(?:create_director\w*|remove\w*|rename|copy\w*|"
    r"resize_file)\b"
)

# Facade enforcement over out-of-tree consumers. src/ and tests/ may touch
# the engine directly (tests pin its exact contract); everything else goes
# through crowdrank::api or the batch service.
FACADE_DIRS = ("bench", "examples", "tools")
ENGINE_RE = re.compile(r"\bInferenceEngine\b")
SUBMODULE_INCLUDE_RE = re.compile(
    r'#include\s+"(?:analysis|baselines|core|crowd|graph|io|metrics|'
    r'service|util)/'
)


def strip_noise(line: str) -> str:
    """Remove string/char literals and // comments so regexes only see code.

    Line-based and deliberately simple: block comments spanning lines can
    slip through, which at worst produces a finding the author silences
    with lint:allow.
    """
    line = re.sub(r'"(?:\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(?:\\.|[^'\\])*'", "''", line)
    return re.sub(r"//.*$", "", line)


def source_files() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", "src"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.splitlines()
    return [f for f in out if f.endswith(CPP_EXTENSIONS)]


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def lint_file(path: str) -> list[tuple[str, int, str, str]]:
    with open(os.path.join(ROOT, path), encoding="utf-8") as f:
        lines = f.read().splitlines()
    return lint_lines(path, lines)


def lint_lines(path: str, lines: list[str]) -> list[tuple[str, int, str, str]]:
    findings = []
    stripped = [strip_noise(l) for l in lines]

    # Pass 1: names declared as unordered containers anywhere in this file
    # (locals and members alike — scope-blind on purpose; keyed lookups
    # never match the iteration patterns below, so over-collection is
    # harmless).
    unordered_names = set()
    for code in stripped:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))

    iter_res = []
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        iter_res = [
            # range-for:  for (auto& kv : table)
            re.compile(r":\s*(?:%s)\s*\)" % names),
            # explicit iterators: table.begin() / table.cbegin(). A lone
            # .end() is not flagged — comparing find() against the end
            # sentinel is keyed lookup, not iteration.
            re.compile(r"\b(?:%s)\s*\.\s*c?r?begin\s*\(" % names),
        ]

    for lineno, (raw, code) in enumerate(zip(lines, stripped), start=1):
        allow = allowed_rules(raw)
        for rule, pattern in RULES.items():
            if rule == "wall-clock" and path in WALL_CLOCK_ALLOWLIST:
                continue
            m = pattern.search(code)
            if m and rule not in allow:
                findings.append((path, lineno, rule, raw.strip()))
        if (path not in RAW_INTRINSICS_ALLOWED_FILES
                and "raw-intrinsics" not in allow
                and RAW_INTRINSICS_RE.search(code)):
            findings.append((path, lineno, "raw-intrinsics", raw.strip()))
        if (path.startswith(FS_WRITE_DIR)
                and path not in FS_WRITE_ALLOWED_FILES
                and "fs-write-in-service" not in allow
                and FS_WRITE_RE.search(code)):
            findings.append(
                (path, lineno, "fs-write-in-service", raw.strip())
            )
        if (path == DENSE_IN_PROPAGATION_FILE
                and "dense-in-propagation" not in allow):
            m = DENSE_IN_PROPAGATION_RE.search(code)
            # A match at column 0 is a top-level function signature whose
            # return type is Matrix, not a dense construction.
            if m and m.start() > 0:
                findings.append(
                    (path, lineno, "dense-in-propagation", raw.strip())
                )
        if "unordered-iter" not in allow:
            for pattern in iter_res:
                if pattern.search(code):
                    findings.append(
                        (path, lineno, "unordered-iter", raw.strip())
                    )
                    break
    return findings


def facade_files() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files", *FACADE_DIRS],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.splitlines()
    return [f for f in out if f.endswith(CPP_EXTENSIONS)]


def lint_facade_file(path: str) -> list[tuple[str, int, str, str]]:
    with open(os.path.join(ROOT, path), encoding="utf-8") as f:
        lines = f.read().splitlines()
    return lint_facade_lines(path, lines)


def lint_facade_lines(
        path: str, lines: list[str]) -> list[tuple[str, int, str, str]]:
    findings = []
    in_examples = path.startswith("examples/")
    for lineno, raw in enumerate(lines, start=1):
        allow = allowed_rules(raw)
        # Includes live inside string literals, so match the raw line here.
        if (in_examples and "submodule-include" not in allow
                and SUBMODULE_INCLUDE_RE.search(raw)):
            findings.append((path, lineno, "submodule-include", raw.strip()))
        if ("engine-outside-facade" not in allow
                and ENGINE_RE.search(strip_noise(raw))):
            findings.append(
                (path, lineno, "engine-outside-facade", raw.strip())
            )
    return findings


def find_clang_format() -> str | None:
    env = os.environ.get("CLANG_FORMAT")
    if env and shutil.which(env):
        return shutil.which(env)
    for name in ("clang-format", "clang-format-19", "clang-format-18",
                 "clang-format-17", "clang-format-16", "clang-format-15",
                 "clang-format-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def check_format() -> int:
    binary = find_clang_format()
    if binary is None:
        print("lint: clang-format not found on PATH; skipping format check")
        return 0
    files = subprocess.run(
        ["git", "ls-files", "src", "tests", "tools", "bench", "examples"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.splitlines()
    files = [f for f in files if f.endswith(CPP_EXTENSIONS)]
    result = subprocess.run(
        [binary, "--dry-run", "-Werror", "--style=file", *files],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        print("lint: clang-format check failed (check-only; fix with "
              "clang-format -i)", file=sys.stderr)
        return 1
    print("lint: clang-format clean over %d files" % len(files))
    return 0


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on an embedded bad snippet, stay quiet on
# a good one, and honor its lint:allow escape. Run with --self-test.
# Each case: (rule, path the snippet pretends to live at, snippet lines).
# ---------------------------------------------------------------------------

SELF_TEST_BAD = [
    ("rand", "src/core/x.cpp", ["int r = rand();"]),
    ("rand", "src/core/x.cpp", ["std::srand(42);"]),
    ("unordered-iter", "src/core/x.cpp", [
        "std::unordered_map<int, int> table;",
        "for (auto& kv : table) {",
    ]),
    ("unordered-iter", "src/core/x.cpp", [
        "std::unordered_set<int> seen;",
        "auto it = seen.begin();",
    ]),
    ("wall-clock", "src/core/x.cpp",
     ["auto t = std::chrono::system_clock::now();"]),
    ("raw-new", "src/core/x.cpp", ["int* p = new int[8];"]),
    ("stderr-outside-logger", "src/core/x.cpp",
     ['std::cerr << "oops";']),
    ("stderr-outside-logger", "src/core/x.cpp",
     ['fprintf(stderr, "oops");']),
    ("raw-intrinsics", "src/core/x.cpp", ["#include <immintrin.h>"]),
    ("raw-intrinsics", "src/util/matrix.cpp",
     ["__m256d v = _mm256_loadu_pd(p);"]),
    ("raw-intrinsics", "src/util/simd.cpp",
     ["t = _mm_add_pd(t, _mm_mul_pd(a, b));"]),
    ("raw-mutex", "src/core/x.cpp", ["std::mutex mu;"]),
    ("raw-mutex", "src/core/x.cpp",
     ["std::lock_guard<std::mutex> lock(mu);"]),
    ("raw-mutex", "src/core/x.cpp", ["std::condition_variable cv;"]),
    ("dense-in-propagation", DENSE_IN_PROPAGATION_FILE,
     ["  Matrix dense = Matrix::zero(n, n);"]),
    ("dense-in-propagation", DENSE_IN_PROPAGATION_FILE,
     ["  auto d = sparse.to_dense();"]),
    ("fs-write-in-service", "src/service/result_cache.cpp",
     ["std::ofstream out(path, std::ios::binary);"]),
    ("fs-write-in-service", "src/service/service.cpp",
     ["std::filesystem::create_directories(dir, ec);"]),
    ("fs-write-in-service", "src/service/service.cpp",
     ["std::filesystem::rename(tmp, final_path, ec);"]),
    ("fs-write-in-service", "src/service/job.hpp",
     ['FILE* f = fopen(path.c_str(), "wb");']),
]

SELF_TEST_GOOD = [
    ("rand", "src/core/x.cpp", ["Rng rng(seed); rng.uniform();"]),
    ("unordered-iter", "src/core/x.cpp", [
        "std::unordered_map<int, int> table;",
        "auto it = table.find(k);",
        "if (it != table.end()) {",
    ]),
    ("wall-clock", "src/core/x.cpp",
     ["auto t = std::chrono::steady_clock::now();"]),
    ("raw-new", "src/core/x.cpp",
     ["auto p = std::make_unique<int[]>(8);"]),
    ("raw-new", "src/core/x.cpp",
     ["Widget(const Widget&) = delete;"]),
    ("stderr-outside-logger", "src/core/x.cpp",
     ['log_warn() << "oops";']),
    ("raw-mutex", "src/core/x.cpp",
     ["MutexLock lock(mutex_);", "CondVar cv;"]),
    # The simd layer is the sanctioned intrinsics site.
    ("raw-intrinsics", "src/util/kernels_avx2.cpp",
     ["#include <immintrin.h>",
      "t0 = _mm256_add_pd(t0, _mm256_mul_pd(av, _mm256_loadu_pd(row)));"]),
    # Calling the dispatched kernels is what everyone else does.
    ("raw-intrinsics", "src/util/matrix.cpp",
     ["simd::axpy(out.data(), x.data(), a, n);"]),
    ("dense-in-propagation", DENSE_IN_PROPAGATION_FILE,
     ["Matrix propagate(const SparseMatrix& m) {"]),
    # The artifact module is the sanctioned persistence site.
    ("fs-write-in-service", "src/service/artifact.cpp",
     ["std::ofstream out(tmp, std::ios::binary | std::ios::trunc);"]),
    # Reads are fine anywhere in the service layer.
    ("fs-write-in-service", "src/service/result_cache.cpp",
     ["std::ifstream in(path, std::ios::binary);",
      "if (std::filesystem::exists(path)) {"]),
    # Same constructs outside src/service/ are not this rule's business.
    ("fs-write-in-service", "src/io/commands.cpp",
     ["std::ofstream out(path);"]),
]

SELF_TEST_FACADE_BAD = [
    ("engine-outside-facade", "bench/b.cpp",
     ["InferenceEngine engine(config);"]),
    ("submodule-include", "examples/e.cpp",
     ['#include "core/pipeline.hpp"']),
]

SELF_TEST_FACADE_GOOD = [
    ("engine-outside-facade", "bench/b.cpp",
     ["auto result = crowdrank::api::rank(votes, config);"]),
    ("submodule-include", "examples/e.cpp",
     ['#include "crowdrank.hpp"']),
]


def run_self_test() -> int:
    cases = []

    def check(kind, rule, path, lines, lint_fn, expect_fire):
        findings = lint_fn(path, lines)
        fired = {f[2] for f in findings}
        if expect_fire:
            ok = rule in fired
            detail = "fired" if ok else "did NOT fire (got %s)" % sorted(fired)
        else:
            ok = rule not in fired
            detail = ("quiet" if ok
                      else "false positive: %s" % sorted(fired))
        cases.append(("%s %s [%s]" % (kind, rule, path), ok, detail))

    for rule, path, lines in SELF_TEST_BAD:
        check("bad-snippet", rule, path, lines, lint_lines, True)
        # The same snippet with lint:allow on every line must be quiet.
        allowed = ["%s  // lint:allow(%s)" % (l, rule) for l in lines]
        check("lint:allow", rule, path, allowed, lint_lines, False)
    for rule, path, lines in SELF_TEST_GOOD:
        check("good-snippet", rule, path, lines, lint_lines, False)
    for rule, path, lines in SELF_TEST_FACADE_BAD:
        check("bad-snippet", rule, path, lines, lint_facade_lines, True)
        allowed = ["%s  // lint:allow(%s)" % (l, rule) for l in lines]
        check("lint:allow", rule, path, allowed, lint_facade_lines, False)
    for rule, path, lines in SELF_TEST_FACADE_GOOD:
        check("good-snippet", rule, path, lines, lint_facade_lines, False)

    # Every rule the linter knows must appear in at least one bad snippet,
    # so adding a rule without self-test coverage fails here.
    covered = {rule for rule, _, _ in SELF_TEST_BAD}
    covered |= {rule for rule, _, _ in SELF_TEST_FACADE_BAD}
    all_rules = set(RULES) | {
        "unordered-iter", "dense-in-propagation", "fs-write-in-service",
        "raw-intrinsics", "engine-outside-facade", "submodule-include",
    }
    for rule in sorted(all_rules - covered):
        cases.append(("coverage %s" % rule, False,
                      "no bad snippet exercises this rule"))

    failed = [c for c in cases if not c[1]]
    for name, ok, detail in cases:
        print("  %s  %s: %s" % ("PASS" if ok else "FAIL", name, detail))
    if failed:
        print("lint --self-test: %d/%d cases FAILED"
              % (len(failed), len(cases)), file=sys.stderr)
        return 1
    print("lint --self-test: all %d cases passed" % len(cases))
    return 0


def main() -> int:
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return run_self_test()
    if len(sys.argv) > 1:
        print("usage: tools/crowdrank_lint.py [--self-test]", file=sys.stderr)
        return 2

    files = source_files()
    findings = []
    for path in files:
        findings.extend(lint_file(path))
    consumer_files = facade_files()
    for path in consumer_files:
        findings.extend(lint_facade_file(path))

    for path, lineno, rule, text in findings:
        print("%s:%d: [%s] %s" % (path, lineno, rule, text), file=sys.stderr)

    status = 0
    if findings:
        print(
            "lint: %d finding(s) — see rules in "
            "tools/crowdrank_lint.py; suppress a deliberate use with "
            "// lint:allow(<rule>)" % len(findings),
            file=sys.stderr,
        )
        status = 1
    else:
        print(
            "lint: %d source + %d consumer files clean"
            % (len(files), len(consumer_files))
        )

    if check_format() != 0:
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
