#!/usr/bin/env python3
"""Validator for a `crowdrank serve --telemetry DIR` output directory.

CI points this at the directory a serve smoke run produced and it checks
the whole telemetry contract end to end:

  telemetry.jsonl   every line is valid JSON with schema version v == 1,
                    strictly increasing `seq`, the full key set
                    (t_us/counters/gauges/histograms/window/events), and
                    internally consistent histograms (bucket counts sum
                    to `count`, bucket upper bounds strictly increase,
                    p50 <= p99 and both within [min, max]).
  metrics.prom      Prometheus text exposition grammar: every sample is
                    preceded by a `# TYPE` declaration for its family,
                    histogram `_bucket` series are cumulative and
                    non-decreasing in `le` order, and the `+Inf` bucket
                    equals `_count`.
  postmortems/      every postmortem is valid JSON with v == 1 and the
                    job/outcome/stage/spans/events key set; span parent
                    indices stay in range (or -1 for the root).

  --require-postmortem OUTCOME  asserts at least one postmortem with
                    that outcome exists — the CI serve smoke injects a
                    failing job and uses this to prove the postmortem
                    path actually fired.

Pure stdlib; exits 0 when clean, 1 on findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

SNAPSHOT_KEYS = {"v", "seq", "t_us", "counters", "gauges", "histograms",
                 "window", "events_recorded", "events"}
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "p50", "p99", "buckets"}
POSTMORTEM_KEYS = {"v", "job", "executor", "outcome", "stage", "reason",
                   "t_us", "config", "hardening", "spans", "events"}

# Prometheus text exposition: `name{labels} value` or `name value`.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+-]+|NaN)$")
TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
LE_RE = re.compile(r'le="([^"]*)"')


def check_histogram_snapshot(name, hist, where, findings):
    missing = HISTOGRAM_KEYS - hist.keys()
    if missing:
        findings.append(f"{where}: histogram {name} missing {sorted(missing)}")
        return
    bucket_total = sum(count for _, count in hist["buckets"])
    if bucket_total != hist["count"]:
        findings.append(
            f"{where}: histogram {name} bucket counts sum to "
            f"{bucket_total}, count says {hist['count']}")
    uppers = [upper for upper, _ in hist["buckets"]]
    if uppers != sorted(set(uppers)):
        findings.append(
            f"{where}: histogram {name} bucket bounds not strictly "
            f"increasing: {uppers}")
    if hist["count"] > 0:
        if not hist["min"] <= hist["p50"] <= hist["p99"] <= hist["max"]:
            findings.append(
                f"{where}: histogram {name} quantiles out of order: "
                f"min {hist['min']} p50 {hist['p50']} p99 {hist['p99']} "
                f"max {hist['max']}")


def check_jsonl(path, findings):
    if not os.path.isfile(path):
        findings.append(f"{path}: missing")
        return
    last_seq = -1
    lines = 0
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            where = f"{path}:{lineno}"
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as err:
                findings.append(f"{where}: invalid JSON: {err}")
                continue
            missing = SNAPSHOT_KEYS - snap.keys()
            if missing:
                findings.append(f"{where}: missing keys {sorted(missing)}")
                continue
            if snap["v"] != 1:
                findings.append(
                    f"{where}: schema version {snap['v']} != 1")
            if snap["seq"] <= last_seq:
                findings.append(
                    f"{where}: seq {snap['seq']} not greater than "
                    f"previous {last_seq}")
            last_seq = snap["seq"]
            for name, hist in snap["histograms"].items():
                check_histogram_snapshot(name, hist, where, findings)
            if len(snap["events"]) > snap["events_recorded"]:
                findings.append(
                    f"{where}: {len(snap['events'])} events in the tail "
                    f"but only {snap['events_recorded']} ever recorded")
    if lines == 0:
        findings.append(f"{path}: no snapshots written")


def check_prometheus(path, findings):
    if not os.path.isfile(path):
        findings.append(f"{path}: missing")
        return
    declared = {}
    samples = {}  # family -> list of (labels, value)
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            where = f"{path}:{lineno}"
            if not line:
                continue
            if line.startswith("#"):
                m = TYPE_RE.match(line)
                if m is None:
                    findings.append(f"{where}: malformed comment: {line}")
                    continue
                declared[m.group(1)] = m.group(2)
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                findings.append(f"{where}: malformed sample: {line}")
                continue
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in declared:
                    family = name[:-len(suffix)]
                    break
            if family not in declared:
                findings.append(
                    f"{where}: sample {name} has no # TYPE declaration")
                continue
            samples.setdefault(family, []).append((name, labels,
                                                   float(value)))
    if not samples:
        findings.append(f"{path}: no samples")
    for family, kind in declared.items():
        rows = samples.get(family, [])
        if not rows:
            findings.append(f"{path}: family {family} declared but empty")
            continue
        if kind != "histogram":
            continue
        buckets = []
        count = None
        for name, labels, value in rows:
            if name == family + "_bucket":
                m = LE_RE.search(labels)
                if m is None:
                    findings.append(
                        f"{path}: {family} bucket without le label")
                    continue
                upper = float("inf") if m.group(1) == "+Inf" \
                    else float(m.group(1))
                buckets.append((upper, value))
            elif name == family + "_count":
                count = value
        if not buckets or buckets[-1][0] != float("inf"):
            findings.append(f"{path}: {family} missing +Inf bucket")
            continue
        cumulative = [v for _, v in buckets]
        if cumulative != sorted(cumulative):
            findings.append(
                f"{path}: {family} buckets not cumulative: {cumulative}")
        if count is not None and buckets[-1][1] != count:
            findings.append(
                f"{path}: {family} +Inf bucket {buckets[-1][1]} != "
                f"_count {count}")


def check_postmortems(directory, require_outcome, findings):
    outcomes = []
    if os.path.isdir(directory):
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(directory, entry)
            try:
                with open(path, encoding="utf-8") as handle:
                    postmortem = json.load(handle)
            except json.JSONDecodeError as err:
                findings.append(f"{path}: invalid JSON: {err}")
                continue
            missing = POSTMORTEM_KEYS - postmortem.keys()
            if missing:
                findings.append(f"{path}: missing keys {sorted(missing)}")
                continue
            if postmortem["v"] != 1:
                findings.append(
                    f"{path}: schema version {postmortem['v']} != 1")
            span_count = len(postmortem["spans"])
            for i, span in enumerate(postmortem["spans"]):
                parent = span.get("parent", -1)
                if parent != -1 and not 0 <= parent < span_count:
                    findings.append(
                        f"{path}: span {i} parent {parent} out of range")
            outcomes.append(postmortem["outcome"])
    if require_outcome and require_outcome not in outcomes:
        findings.append(
            f"{directory}: no postmortem with outcome "
            f"'{require_outcome}' (saw {outcomes or 'none'})")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", required=True,
                        help="telemetry directory a serve run wrote")
    parser.add_argument("--require-postmortem", metavar="OUTCOME",
                        help="fail unless a postmortem with this outcome "
                             "exists (e.g. failed)")
    args = parser.parse_args()

    findings = []
    check_jsonl(os.path.join(args.dir, "telemetry.jsonl"), findings)
    check_prometheus(os.path.join(args.dir, "metrics.prom"), findings)
    check_postmortems(os.path.join(args.dir, "postmortems"),
                      args.require_postmortem, findings)

    for finding in findings:
        print(f"TELEMETRY INVALID: {finding}", file=sys.stderr)
    if findings:
        print(f"check_telemetry: {len(findings)} finding(s) in {args.dir}",
              file=sys.stderr)
        return 1
    print(f"check_telemetry: {args.dir} is a valid telemetry directory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
