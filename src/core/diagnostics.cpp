#include "core/diagnostics.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "graph/task_graph.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

RankabilityReport diagnose_votes(const VoteBatch& votes,
                                 std::size_t object_count,
                                 std::size_t worker_count,
                                 const TruthDiscoveryConfig& config) {
  CR_EXPECTS(object_count >= 2, "need at least two objects");
  RankabilityReport report;
  report.object_count = object_count;
  report.vote_count = votes.size();

  if (votes.empty()) {
    report.rankable = false;
    report.findings.push_back("no votes at all — nothing to aggregate");
    report.objects_never_compared = object_count;
    return report;
  }

  const TruthDiscoveryResult step1 =
      discover_truth(votes, object_count, worker_count, config);
  report.unique_tasks = step1.truths.size();
  report.pair_coverage = static_cast<double>(report.unique_tasks) /
                         static_cast<double>(math::pair_count(object_count));

  // Votes-per-task statistics.
  std::size_t min_votes = std::numeric_limits<std::size_t>::max();
  std::size_t total_votes = 0;
  for (const TaskTruth& t : step1.truths) {
    min_votes = std::min(min_votes, t.vote_count);
    total_votes += t.vote_count;
    if (t.x == 0.0 || t.x == 1.0) {
      ++report.unanimous_tasks;
    } else if (t.x > 0.25 && t.x < 0.75) {
      ++report.contested_tasks;
    }
  }
  report.min_votes_per_task = min_votes;
  report.mean_votes_per_task =
      static_cast<double>(total_votes) /
      static_cast<double>(report.unique_tasks);

  // Worker stats over the workers who actually voted.
  std::vector<bool> voted(worker_count, false);
  for (const Vote& v : votes) {
    voted[v.worker] = true;
  }
  double quality_sum = 0.0;
  std::size_t voters = 0;
  for (WorkerId k = 0; k < worker_count; ++k) {
    if (!voted[k]) continue;
    ++voters;
    quality_sum += step1.worker_quality[k];
    report.min_worker_quality =
        std::min(report.min_worker_quality, step1.worker_quality[k]);
  }
  report.worker_count = voters;
  report.mean_worker_quality =
      voters > 0 ? quality_sum / static_cast<double>(voters) : 0.0;

  // Object coverage: degree in the task (coverage) graph.
  TaskGraph coverage(object_count);
  for (const TaskTruth& t : step1.truths) {
    coverage.add_edge(t.task.first, t.task.second);
  }
  report.min_object_degree = coverage.min_degree();
  report.max_object_degree = coverage.max_degree();
  for (VertexId v = 0; v < object_count; ++v) {
    if (coverage.degree(v) == 0) ++report.objects_never_compared;
  }
  report.direct_graph_connected =
      report.objects_never_compared == 0 && coverage.is_connected();

  // Structure of the direct preference graph.
  const PreferenceGraph direct = step1.to_preference_graph(object_count);
  const SccDecomposition scc = strongly_connected_components(direct);
  report.scc_count = scc.count();
  report.largest_scc = scc.largest();
  report.in_nodes = direct.in_nodes().size();
  report.out_nodes = direct.out_nodes().size();

  // Findings + verdict.
  auto& findings = report.findings;
  if (report.objects_never_compared > 0) {
    findings.push_back(
        std::to_string(report.objects_never_compared) +
        " object(s) were never compared — their positions will be pure "
        "guesses");
  }
  if (!report.direct_graph_connected &&
      report.objects_never_compared == 0) {
    findings.push_back(
        "the comparison graph is disconnected — relative order across "
        "components is undetermined");
  }
  if (report.pair_coverage < 0.05) {
    findings.push_back(
        "pair coverage below 5% — rely on transitive inference; expect "
        "reduced accuracy for adjacent ranks");
  }
  if (report.min_votes_per_task < 2) {
    findings.push_back(
        "some tasks have a single vote — no redundancy for truth "
        "discovery on those pairs");
  }
  if (report.contested_tasks * 4 > report.unique_tasks) {
    findings.push_back(
        "over a quarter of tasks are heavily contested — check worker "
        "quality or task clarity");
  }
  if (report.min_worker_quality < 0.5 && voters > 0) {
    findings.push_back(
        "at least one worker has calibrated quality below 0.5 — their "
        "votes are being discounted");
  }
  if (report.in_nodes + report.out_nodes > 2) {
    findings.push_back(
        std::to_string(report.in_nodes + report.out_nodes) +
        " in-/out-nodes in the direct graph — smoothing must repair "
        "these before a full ranking exists (Thm 4.3)");
  }
  report.rankable = report.objects_never_compared == 0 &&
                    report.direct_graph_connected;
  if (report.rankable && findings.empty()) {
    findings.push_back("no issues found — the batch aggregates cleanly");
  }
  return report;
}

std::string format_report(const RankabilityReport& r) {
  std::ostringstream out;
  out << "rankability report\n";
  out << "  objects            : " << r.object_count << "\n";
  out << "  votes              : " << r.vote_count << " over "
      << r.unique_tasks << " unique pairs (coverage "
      << static_cast<int>(r.pair_coverage * 100.0 + 0.5) << "%)\n";
  out << "  votes per task     : mean " << r.mean_votes_per_task << ", min "
      << r.min_votes_per_task << "\n";
  out << "  workers            : " << r.worker_count << " (mean quality "
      << r.mean_worker_quality << ", min " << r.min_worker_quality << ")\n";
  out << "  task mix           : " << r.unanimous_tasks << " unanimous, "
      << r.contested_tasks << " contested\n";
  out << "  object coverage    : degree " << r.min_object_degree << ".."
      << r.max_object_degree << ", " << r.objects_never_compared
      << " never compared\n";
  out << "  direct graph       : " << r.scc_count
      << " strongly connected component(s), largest " << r.largest_scc
      << "; " << r.in_nodes << " in-node(s), " << r.out_nodes
      << " out-node(s)\n";
  out << "  verdict            : "
      << (r.rankable ? "RANKABLE" : "NOT CLEANLY RANKABLE") << "\n";
  for (const auto& finding : r.findings) {
    out << "  - " << finding << "\n";
  }
  return out.str();
}

}  // namespace crowdrank
