#include "core/taps_reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"

namespace crowdrank {

namespace {

/// Enumerates all n! Hamiltonian paths of a complete closure.
std::vector<Path> all_paths(std::size_t n) {
  std::vector<Path> paths;
  Path perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  do {
    paths.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return paths;
}

}  // namespace

TapsReferenceResult taps_reference_search(const Matrix& closure) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  const std::size_t n = closure.rows();
  CR_EXPECTS(n >= 2 && n <= 7,
             "the materialized-lists reference is limited to n <= 7");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        CR_EXPECTS(closure(i, j) > 0.0 && closure(i, j) <= 1.0,
                   "reference TAPS requires a complete closure");
      }
    }
  }

  // Materialize: paths[p] and, for each of the n-1 edge positions, the
  // list of <pathID, weight> sorted by weight descending.
  const std::vector<Path> paths = all_paths(n);
  const std::size_t num_paths = paths.size();
  const std::size_t positions = n - 1;

  struct Row {
    double weight;
    std::size_t path_id;
  };
  std::vector<std::vector<Row>> lists(positions);
  for (std::size_t pos = 0; pos < positions; ++pos) {
    auto& list = lists[pos];
    list.reserve(num_paths);
    for (std::size_t p = 0; p < num_paths; ++p) {
      list.push_back(Row{closure(paths[p][pos], paths[p][pos + 1]), p});
    }
    std::sort(list.begin(), list.end(), [](const Row& a, const Row& b) {
      if (a.weight != b.weight) return a.weight > b.weight;
      return a.path_id < b.path_id;  // deterministic tie order
    });
  }

  // Random access: score of path p = prod over positions of its weights.
  const auto score_of = [&](std::size_t p) {
    double log_score = 0.0;
    for (std::size_t pos = 0; pos < positions; ++pos) {
      log_score += std::log(closure(paths[p][pos], paths[p][pos + 1]));
    }
    return log_score;
  };

  TapsReferenceResult result;
  double best = -std::numeric_limits<double>::infinity();
  std::set<std::size_t> best_ids;
  std::set<std::size_t> seen;
  constexpr double kTieTol = 1e-12;

  for (std::size_t depth = 0; depth < num_paths; ++depth) {
    // Step 1: sorted access in parallel to each list at this depth.
    for (std::size_t pos = 0; pos < positions; ++pos) {
      const std::size_t p = lists[pos][depth].path_id;
      if (!seen.insert(p).second) continue;
      const double s = score_of(p);  // random access to the other lists
      if (s > best + kTieTol) {
        best = s;
        best_ids = {p};
      } else if (std::abs(s - best) <= kTieTol) {
        best_ids.insert(p);
      }
    }
    // Step 2: theta = product of the last weights seen under sorted
    // access; halt once max *strictly* exceeds theta — any unseen path is
    // bounded by theta, so only exact ties could remain, and continuing
    // while theta == max is what "include all tie paths in Y" requires.
    double log_theta = 0.0;
    for (std::size_t pos = 0; pos < positions; ++pos) {
      log_theta += std::log(lists[pos][depth].weight);
    }
    if (best > log_theta + kTieTol) {
      result.sorted_access_depth = depth + 1;
      break;
    }
  }
  if (result.sorted_access_depth == 0) {
    result.sorted_access_depth = num_paths;  // exhausted
  }

  for (const std::size_t p : best_ids) {
    result.best_paths.push_back(paths[p]);
  }
  result.log_probability = best;
  result.probability = std::exp(best);
  return result;
}

}  // namespace crowdrank
