#include "core/planning.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

namespace {

double probe_accuracy(const PlanningConfig& config, double ratio) {
  double acc = 0.0;
  for (std::size_t t = 0; t < config.trials_per_probe; ++t) {
    ExperimentConfig experiment;
    experiment.object_count = config.object_count;
    experiment.selection_ratio = ratio;
    experiment.worker_pool_size = config.worker_pool_size;
    experiment.workers_per_task = config.workers_per_task;
    experiment.reward_per_comparison = config.reward_per_comparison;
    experiment.worker_quality = config.worker_quality;
    experiment.seed =
        config.seed + 7919 * t +
        static_cast<std::uint64_t>(std::llround(ratio * 1e4));
    acc += run_experiment(experiment).accuracy;
  }
  return acc / static_cast<double>(config.trials_per_probe);
}

BudgetPlan make_plan(const PlanningConfig& config, double ratio,
                     double accuracy, std::size_t probes) {
  const BudgetModel budget = BudgetModel::for_selection_ratio(
      config.object_count, ratio, config.reward_per_comparison,
      config.workers_per_task);
  BudgetPlan plan;
  plan.selection_ratio = ratio;
  plan.unique_comparisons = budget.unique_task_count();
  plan.total_cost = budget.total_cost();
  plan.estimated_accuracy = accuracy;
  plan.probes_run = probes;
  return plan;
}

}  // namespace

std::optional<BudgetPlan> plan_budget_for_accuracy(
    const PlanningConfig& config) {
  CR_EXPECTS(config.object_count >= 2, "need at least two objects");
  CR_EXPECTS(config.target_accuracy > 0.5 && config.target_accuracy < 1.0,
             "target accuracy must be in (0.5, 1)");
  CR_EXPECTS(config.trials_per_probe >= 1, "need at least one trial");
  CR_EXPECTS(config.max_probes >= 2, "need at least two probes");
  CR_EXPECTS(config.ratio_resolution > 0.0 && config.ratio_resolution < 1.0,
             "ratio resolution must be in (0, 1)");

  std::size_t probes = 0;

  // The floor ratio: the connectivity minimum l = n - 1.
  const double floor_ratio =
      static_cast<double>(config.object_count - 1) /
      static_cast<double>(math::pair_count(config.object_count));

  // Can the cheapest plan already do it?
  const double floor_acc = probe_accuracy(config, floor_ratio);
  ++probes;
  if (floor_acc >= config.target_accuracy) {
    return make_plan(config, floor_ratio, floor_acc, probes);
  }

  // Can any plan do it?
  const double full_acc = probe_accuracy(config, 1.0);
  ++probes;
  if (full_acc < config.target_accuracy) {
    return std::nullopt;
  }

  // Bisection: invariant lo misses the target, hi clears it.
  double lo = floor_ratio;
  double hi = 1.0;
  double hi_acc = full_acc;
  while (probes < config.max_probes &&
         hi - lo > config.ratio_resolution) {
    const double mid = 0.5 * (lo + hi);
    const double mid_acc = probe_accuracy(config, mid);
    ++probes;
    if (mid_acc >= config.target_accuracy) {
      hi = mid;
      hi_acc = mid_acc;
    } else {
      lo = mid;
    }
  }
  return make_plan(config, hi, hi_acc, probes);
}

}  // namespace crowdrank
