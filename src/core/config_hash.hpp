// Stable content hashing of inference configuration.
//
// The service result cache (service/result_cache.hpp) keys a job by
// everything that can change its output: the votes, the counts, the seed,
// and the configuration. This module owns the configuration half of that
// key — it lives in core, next to the config structs themselves, so a new
// output-affecting field fails loudest here (the hash and the struct are
// reviewed together) instead of silently serving stale cache entries.
//
// Two rules decide what is hashed:
//  * Output-affecting tunables are hashed, always. That includes fields
//    like `propagation.spectral_horizon` (changes which pairs receive
//    evidence) and every Step-4 move toggle.
//  * Observe-only and representation-only fields are excluded:
//    `trace`, `control`, and `check_invariants` never change a ranking
//    (DESIGN.md pins this), and `propagation.fill_threshold` only picks
//    between bitwise-identical sparse/dense kernels (§7c). Excluding them
//    lets a traced run share cache entries with an untraced one.
//
// `kInferenceConfigHashSchema` versions the *derivation*: bump it whenever
// a field is added to (or removed from) the hashed set, so every key
// derived under the old rules misses instead of colliding.
#pragma once

#include "core/pipeline.hpp"
#include "util/hash.hpp"

namespace crowdrank {

/// Bump on any change to the set or order of hashed fields.
inline constexpr std::uint64_t kInferenceConfigHashSchema = 1;

void hash_append(StableHash& hash, const TruthDiscoveryConfig& config);
void hash_append(StableHash& hash, const SmoothingConfig& config);
void hash_append(StableHash& hash, const PropagationConfig& config);
void hash_append(StableHash& hash, const SapsConfig& config);
void hash_append(StableHash& hash, const TapsConfig& config);

/// The output-affecting subset of a full InferenceConfig (prefixed with
/// kInferenceConfigHashSchema). Excludes trace/control/check_invariants
/// and propagation.fill_threshold per the rules above.
void hash_append(StableHash& hash, const InferenceConfig& config);

}  // namespace crowdrank
