// Step 4 (heuristic) — simulated-annealing path search, SAPS (paper §V-D2).
//
// Minimizes the equivalent objective sum over path edges of log(1/w) —
// i.e. maximizes the preference probability — with the three permutation
// moves of Algorithm 2 (Rotate, Reverse, RandomSwap) applied per iteration,
// each accepted via Algorithm 3's Metropolis rule: better always, worse
// with probability exp(-(d_next - d_cur) / T), with geometric cooling
// T <- T * c.
//
// Algorithm 2 restarts the chain from initial paths anchored at each vertex
// (greedy nearest-neighbor, or the out-/in-weight-difference ranking). A
// full n-restart sweep is quadratic-ish at n = 1000, so the restart count
// is configurable; `paper_mode` restores the literal per-vertex sweep.
//
// Hot-path kernels (core/saps_kernel.hpp): `saps_search` materializes the
// -log w cost matrix once per call and scores every proposal through it,
// and its restart chains run as independent pool tasks — restart r is
// seeded with `task_stream_seed(base, r)` where `base` is a single draw
// from the caller's Rng, and the winner is a min-reduction in restart
// order keyed on (log_cost, restart_index). Output is therefore
// bitwise-identical at any thread count (tests/core/test_determinism.cpp)
// and SAPS wall time scales with CROWDRANK_THREADS.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// How restart chains build their initial Hamiltonian path.
enum class SapsInitMode {
  /// From the start vertex, repeatedly hop to the unvisited successor of
  /// maximum edge weight (Algorithm 2's "nearest neighbors").
  GreedyNearestNeighbor,
  /// Rank all vertices by (sum of out-weights - sum of in-weights),
  /// descending (Algorithm 2's degree-difference ranking); the start vertex
  /// is forced to the front.
  WeightDifferenceRanking,
  /// Uniformly random permutation (ablation bench baseline).
  RandomPermutation,
};

struct SapsConfig {
  std::size_t iterations = 3000;  ///< N: annealing steps per restart
  double initial_temperature = 1.0;
  double cooling_rate = 0.995;  ///< c in T <- T * c
  /// Number of restart chains; each starts from a distinct anchor vertex
  /// (cycling through 0..n-1). Ignored when paper_mode is set.
  std::size_t restarts = 4;
  /// Restart from *every* vertex as Algorithm 2 line 2 literally says.
  bool paper_mode = false;
  /// Default is the weight-difference ranking (Algorithm 2 line 3's second
  /// option): on pair-normalized closures greedy nearest-neighbor is
  /// pathological — the highest-weight successor of any vertex is the most
  /// *dominated* object, so the greedy chain starts near-reversed and
  /// annealing must undo it. bench/ablation_saps quantifies this.
  SapsInitMode init_mode = SapsInitMode::WeightDifferenceRanking;
  /// Move toggles (ablation bench flips these).
  bool use_rotate = true;
  bool use_reverse = true;
  bool use_swap = true;
};

struct SapsResult {
  Path best_path;
  double log_cost = 0.0;       ///< sum log(1/w); lower is better
  double probability = 0.0;    ///< exp(-log_cost); may underflow to 0
  std::size_t moves_accepted = 0;
  std::size_t moves_proposed = 0;
  std::size_t restarts_run = 0;
};

/// Runs SAPS on a preference closure (typically Step 3's complete matrix;
/// any square weight matrix with weights in [0,1] works — missing edges are
/// treated as a huge but finite cost so chains can cross them and recover).
SapsResult saps_search(const Matrix& closure, const SapsConfig& config,
                       Rng& rng);

/// The three permutation moves, exposed for tests and the micro benches.
/// All preserve the permutation property. Index preconditions mirror
/// std::rotate / std::reverse / swap semantics on [first, last] inclusive.
void saps_rotate(Path& path, std::size_t first, std::size_t middle,
                 std::size_t last);
void saps_reverse(Path& path, std::size_t first, std::size_t last);
void saps_swap(Path& path, std::size_t a, std::size_t b);

/// Incremental objective deltas: the change in path_log_cost if the move
/// were applied, computed without copying or mutating the path — O(1) for
/// rotate (block-internal edges survive) and swap, O(last - first) for
/// reverse (its interior edges flip direction). The annealing loop
/// evaluates proposals through these; tests pin them to the brute-force
/// recompute.
double saps_rotate_delta(const Matrix& w, const Path& path,
                         std::size_t first, std::size_t middle,
                         std::size_t last);
double saps_reverse_delta(const Matrix& w, const Path& path,
                          std::size_t first, std::size_t last);
double saps_swap_delta(const Matrix& w, const Path& path, std::size_t a,
                       std::size_t b);

}  // namespace crowdrank
