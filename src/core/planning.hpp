// Budget planning — the paper's other future-work objective (§VIII):
// instead of "fix the budget, maximize accuracy", find the *smallest*
// budget whose expected accuracy clears a target.
//
// Accuracy is monotone (in expectation) in the selection ratio, so the
// planner runs a bisection over the ratio, estimating each candidate's
// accuracy by averaging a few simulated experiments with the requester's
// assumed worker-quality profile. The output is a concrete posting plan:
// number of comparisons, selection ratio, dollar cost, and the achieved
// estimate.
#pragma once

#include <cstddef>
#include <optional>

#include "core/pipeline.hpp"

namespace crowdrank {

struct PlanningConfig {
  std::size_t object_count = 100;
  double target_accuracy = 0.9;         ///< in (0.5, 1)
  std::size_t worker_pool_size = 30;    ///< m assumed available
  std::size_t workers_per_task = 3;     ///< w replication
  double reward_per_comparison = 0.025;
  WorkerPoolConfig worker_quality;      ///< assumed crowd profile
  std::size_t trials_per_probe = 3;     ///< simulations averaged per ratio
  std::size_t max_probes = 8;           ///< bisection depth
  double ratio_resolution = 0.02;       ///< stop refining below this width
  std::uint64_t seed = 1;
};

struct BudgetPlan {
  double selection_ratio = 0.0;
  std::size_t unique_comparisons = 0;
  double total_cost = 0.0;
  double estimated_accuracy = 0.0;
  std::size_t probes_run = 0;
};

/// Finds (by bisection on the selection ratio) the cheapest plan whose
/// simulated mean accuracy reaches the target. Returns nullopt when even
/// the all-pairs budget misses the target under the assumed crowd —
/// the requester needs better workers or more replication, not more pairs.
std::optional<BudgetPlan> plan_budget_for_accuracy(
    const PlanningConfig& config);

}  // namespace crowdrank
