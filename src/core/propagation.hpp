// Step 3 — computation of indirect pairwise preferences (paper §V-C).
//
// Transitivity turns paths of the smoothed graph into hidden edges: a path
// i -> ... -> j of length >= 2 contributes the product of its edge weights
// to the indirect preference w*_ij, and all contributing paths sum with
// equal importance. The final preference blends direct and indirect
// evidence, w_check = alpha * w + (1 - alpha) * w*, and each ordered pair
// is then normalized so w_ij + w_ji = 1 (the probability constraint of
// Ailon et al.). The result is a complete digraph — hence always
// Hamiltonian (Thm 5.1) — handed to Step 4.
//
// The production propagator sums bounded-length *walks* via matrix powers
// rather than enumerating simple paths (see DESIGN.md substitution #3);
// PropagationMode::ExactPaths provides the literal definition for small n.
#pragma once

#include <cstddef>

#include "graph/preference_graph.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Which indirect-preference engine to use.
enum class PropagationMode {
  /// sum_{k=2..max_length} W^k — O(max_length * n^3), the default.
  BoundedWalks,
  /// Exhaustive simple-path enumeration — exponential, n <= ~12 only.
  ExactPaths,
  /// sum_{k=1..L} W^k with L the smallest power of two >= max(n,
  /// max_length) (or >= spectral_horizon when set), computed by doubling
  /// (S(2m) = S(m) + W^m S(m)) with per-step max-renormalization so
  /// nothing overflows. Covers pairs up to graph distance ~n (a bounded
  /// horizon leaves far pairs evidence-free on sparse, path-like task
  /// graphs). The doubling runs sparse-first on CSR kernels while the
  /// state's fill stays under fill_threshold, then densifies once and
  /// finishes on the blocked dense kernels — O(flops performed) in the
  /// sparse regime, O(log L * n^3) once dense; both phases are
  /// bitwise-identical to the all-dense formulation (DESIGN.md §7c). The
  /// global scale of the sum is lost to the renormalization, so `alpha`
  /// is ignored: direct edges participate through the k = 1 term and the
  /// closure is the pair-normalized sum itself.
  SpectralLimit,
};

/// How multiple transitive paths between the same pair combine.
enum class PathAggregation {
  /// w*_ij = sum over paths of the product of weights — §V-C verbatim.
  /// The magnitude grows with path count, so dense graphs dilute direct
  /// evidence after the alpha-blend.
  Sum,
  /// w*_ij = (sum over paths) / (number of paths): "each path has equal
  /// importance" read as an average, keeping w* on the direct weights'
  /// [0,1] scale. Offered for the ablation bench; Sum (the paper's literal
  /// definition) is the default — its magnitude growth flattens the
  /// normalized closure toward uniformity, which is precisely what makes
  /// the max-probability-path objective track the global order instead of
  /// rewarding long confident hops (see bench/ablation_propagation).
  Average,
};

struct PropagationConfig {
  PropagationMode mode = PropagationMode::BoundedWalks;
  PathAggregation aggregation = PathAggregation::Sum;
  /// SpectralLimit only: stored-entry fill ratio of the doubling state at
  /// which the hybrid abandons the CSR kernels and finishes densely.
  /// Below ~15-25% fill the Gustavson CSR x CSR product does strictly
  /// less work than the blocked dense kernel; past it the dense kernel's
  /// constant factor wins. 0 forces dense from the first step (the
  /// equivalence oracle the sparse path is pinned against); 1 keeps the
  /// loop sparse throughout. Representation choice only — the sparse and
  /// dense kernels are bitwise-identical on the same operands, so any
  /// threshold yields the same closure (DESIGN.md §7c).
  double fill_threshold = 0.20;
  /// SpectralLimit only: walk-length horizon the doubling sums to. 0 (the
  /// default) keeps the true spectral limit, max(max_length, n). A small
  /// explicit horizon (e.g. 4 with a degree-16 budget) truncates the sum
  /// after covering every pair within that graph distance — the
  /// truncated-path-length regime that keeps very large n (10k+) inside
  /// the sparse phase end to end. Must be 0 or >= 2.
  std::size_t spectral_horizon = 0;
  /// Maximum transitive path/walk length considered (paper: up to n-1).
  /// Longer horizons push W^k toward its dominant-eigenvector structure, so
  /// the normalized closure approaches a spectral ranking of the smoothed
  /// graph — empirically this is what lifts sparse-budget accuracy to the
  /// paper's reported range (bench/ablation_propagation sweeps L).
  /// Cost is O(max_length * n^3).
  std::size_t max_length = 12;
  /// alpha: weight of the *direct* preference in the final blend.
  double alpha = 0.4;
  /// After normalization each ordered weight is clamped into
  /// [floor, 1 - floor]: a pair with evidence in only one direction would
  /// otherwise produce a zero weight and break the completeness that
  /// Thm 5.1's always-an-HP guarantee rests on.
  double completeness_floor = 1e-6;
};

/// Step-3 diagnostics.
struct PropagationStats {
  std::size_t pairs_without_evidence = 0;  ///< pairs defaulted to 0.5 / 0.5
  bool complete = false;                   ///< closure is a complete digraph
  // Sparse-first doubling diagnostics (SpectralLimit mode; zero
  // otherwise). Mirrored into the propagation.* trace metrics so RunReport
  // / BENCH output shows where the hybrid switched representation.
  double fill_ratio = 0.0;       ///< doubling-state fill when the loop ended
  std::size_t densify_step = 0;  ///< 1-based step run dense first; 0 = all-sparse
  std::size_t doubling_steps = 0;  ///< doubling steps executed
  std::uint64_t sparse_flops = 0;  ///< flops spent in the CSR kernels
};

/// Runs Step 3 on the smoothed graph G~_P and returns the normalized
/// transitive closure G*_P as a dense weight matrix (w_ij + w_ji = 1 for
/// all i != j; diagonal 0). Ordered pairs with neither direct weight nor
/// any bounded-length indirect evidence fall back to the uninformative
/// 0.5 / 0.5 so the closure is always complete.
Matrix propagate_preferences(const PreferenceGraph& smoothed,
                             const PropagationConfig& config,
                             PropagationStats* stats = nullptr);

}  // namespace crowdrank
