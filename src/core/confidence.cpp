#include "core/confidence.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

RankingConfidence ranking_confidence(const Matrix& closure,
                                     const Ranking& ranking) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  CR_EXPECTS(closure.rows() == ranking.size(),
             "closure and ranking sizes must match");
  CR_EXPECTS(ranking.size() >= 2, "need at least two objects");

  RankingConfidence result;
  const std::size_t n = ranking.size();
  result.boundary_belief.reserve(n - 1);
  double log_sum = 0.0;
  double belief_sum = 0.0;
  for (std::size_t p = 0; p + 1 < n; ++p) {
    const double w =
        closure(ranking.object_at(p), ranking.object_at(p + 1));
    result.boundary_belief.push_back(w);
    belief_sum += w;
    log_sum += math::safe_log(w);
    if (w < result.min_belief) {
      result.min_belief = w;
      result.weakest_boundary = p;
    }
  }
  result.mean_belief = belief_sum / static_cast<double>(n - 1);
  result.per_edge_geometric_mean =
      std::exp(log_sum / static_cast<double>(n - 1));
  return result;
}

std::vector<std::vector<VertexId>> effectively_tied_groups(
    const Matrix& closure, const Ranking& ranking, double tie_threshold) {
  CR_EXPECTS(tie_threshold >= 0.5 && tie_threshold <= 1.0,
             "tie threshold must be in [0.5, 1]");
  const RankingConfidence confidence =
      ranking_confidence(closure, ranking);

  std::vector<std::vector<VertexId>> groups;
  std::vector<VertexId> current{ranking.object_at(0)};
  for (std::size_t p = 0; p + 1 < ranking.size(); ++p) {
    if (confidence.boundary_belief[p] < tie_threshold) {
      current.push_back(ranking.object_at(p + 1));
    } else {
      groups.push_back(std::move(current));
      current = {ranking.object_at(p + 1)};
    }
  }
  groups.push_back(std::move(current));
  return groups;
}

}  // namespace crowdrank
