#include "core/two_round.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "metrics/kendall.hpp"
#include "util/error.hpp"

namespace crowdrank {

std::vector<Edge> most_uncertain_pairs(const Matrix& closure,
                                       std::size_t count) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  const std::size_t n = closure.rows();
  struct Scored {
    double certainty;
    Edge pair;
  };
  std::vector<Scored> scored;
  scored.reserve(n * (n - 1) / 2);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      scored.push_back(Scored{std::abs(closure(i, j) - 0.5), Edge{i, j}});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              if (a.certainty != b.certainty) {
                return a.certainty < b.certainty;
              }
              return a.pair < b.pair;
            });
  std::vector<Edge> out;
  const std::size_t take = std::min(count, scored.size());
  out.reserve(take);
  for (std::size_t k = 0; k < take; ++k) {
    out.push_back(scored[k].pair);
  }
  return out;
}

TwoRoundResult run_two_round_experiment(const TwoRoundConfig& config) {
  CR_EXPECTS(config.round1_fraction > 0.0 && config.round1_fraction <= 1.0,
             "round-1 fraction must be in (0, 1]");
  const ExperimentConfig& base = config.base;
  CR_EXPECTS(base.object_count >= 2, "need at least two objects");
  CR_EXPECTS(base.workers_per_task <= base.worker_pool_size,
             "replication w must not exceed the pool size m");
  Rng rng(base.seed);

  const std::size_t n = base.object_count;
  const Ranking truth(
      [&] {
        auto perm = rng.permutation(n);
        return std::vector<VertexId>(perm.begin(), perm.end());
      }());

  const BudgetModel total_budget = BudgetModel::for_selection_ratio(
      n, base.selection_ratio, base.reward_per_comparison,
      base.workers_per_task);
  const std::size_t total_tasks = total_budget.unique_task_count();
  // Round 1 keeps at least the spanning minimum so the blind assignment
  // stays connected; round 2 gets the rest.
  const auto round1_tasks = std::max<std::size_t>(
      n - 1, static_cast<std::size_t>(std::llround(
                 config.round1_fraction * static_cast<double>(total_tasks))));
  const std::size_t round2_tasks =
      total_tasks > round1_tasks ? total_tasks - round1_tasks : 0;

  const auto workers =
      sample_worker_pool(base.worker_pool_size, base.worker_quality, rng);
  const SimulatedCrowd crowd(truth, workers);
  const HitConfig hit_config{base.comparisons_per_hit,
                             base.workers_per_task};

  // --- Round 1: blind fair assignment. ---
  const auto assignment1 = generate_task_assignment(n, round1_tasks, rng);
  const std::vector<Edge> tasks1(assignment1.graph.edges().begin(),
                                 assignment1.graph.edges().end());
  const HitAssignment hits1(tasks1, hit_config, base.worker_pool_size, rng);
  VoteBatch votes = crowd.collect(hits1, rng);

  std::size_t repeats = 0;
  if (round2_tasks > 0) {
    // Steps 1-3 on the round-1 batch (a cheap probe inference whose Step-4
    // result is discarded) score every pair's closure certainty.
    InferenceConfig probe_config = base.inference;
    probe_config.saps.iterations = 1;  // Step 4 output unused
    probe_config.saps.restarts = 1;
    const InferenceEngine probe_engine(probe_config);
    Rng probe_rng(base.seed + 101);
    const InferenceResult probe =
        probe_engine.infer(votes, n, base.worker_pool_size, hits1,
                           probe_rng);

    // --- Round 2: the most uncertain pairs. ---
    const std::vector<Edge> tasks2 =
        most_uncertain_pairs(probe.closure, round2_tasks);
    const std::set<Edge> round1_set(tasks1.begin(), tasks1.end());
    for (const Edge& e : tasks2) {
      if (round1_set.contains(e)) ++repeats;
    }
    const HitAssignment hits2(tasks2, hit_config, base.worker_pool_size,
                              rng);
    const VoteBatch votes2 = crowd.collect(hits2, rng);
    votes.insert(votes.end(), votes2.begin(), votes2.end());
  }

  // Final inference over the merged batch (votes-only overload: per-task
  // worker lists derive from the union of both rounds).
  const InferenceEngine engine(base.inference);
  Rng infer_rng(base.seed + 202);
  InferenceResult inference =
      engine.infer(votes, n, base.worker_pool_size, infer_rng);

  TwoRoundResult result{truth,        std::move(inference), 0.0,
                        round1_tasks, round2_tasks,         repeats,
                        total_budget.total_cost()};
  result.accuracy = ranking_accuracy(truth, result.inference.ranking);
  return result;
}

}  // namespace crowdrank
