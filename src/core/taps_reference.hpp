// TAPS exactly as §V-D1 writes it — the materialized-lists reference.
//
// The paper's TAPS builds n-1 sorted lists, one per Hamiltonian-path edge
// position; list L_i holds a <pathID, edgeWeight> row for *every* HP's
// i-th edge, sorted by weight descending. The algorithm does sorted access
// across the lists in parallel, random-accesses each newly seen path's
// other edges to score it, and halts once the best seen score meets the
// threshold theta = prod_i (last weight seen under sorted access in L_i).
//
// Materializing n! rows per list is hopeless beyond tiny n — the paper's
// own space bound is n!(2n-1) — so the production `taps_search` generates
// candidates lazily (DESIGN.md substitution #4). This reference exists to
// pin the substitution down: tests assert both implementations return the
// same optimum on every instance the reference can afford (n <= 7).
#pragma once

#include <cstddef>

#include "core/taps.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

struct TapsReferenceResult {
  std::vector<Path> best_paths;  ///< all optima (ties included)
  double log_probability = 0.0;
  double probability = 0.0;
  /// Sorted-access depth at which the threshold rule fired (rows per
  /// list); n! means the lists were exhausted.
  std::size_t sorted_access_depth = 0;
};

/// Runs the literal materialized-lists TAPS. Requires 2 <= n <= 7 (7! =
/// 5040 paths keeps the n!(2n-1)-sized table affordable). Weights must be
/// a complete closure (off-diagonal entries in (0, 1]).
TapsReferenceResult taps_reference_search(const Matrix& closure);

}  // namespace crowdrank
