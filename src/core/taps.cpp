#include "core/taps.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

namespace {

/// Search-tree node: a partial path reconstructed through parent links.
struct Node {
  std::uint64_t mask;
  std::uint32_t last;
  double g;             // sum of log weights of the partial path
  std::int64_t parent;  // arena index, -1 at the start vertex
};

struct QueueEntry {
  double priority;  // g + admissible bound on the remaining edges
  std::int64_t node;
  bool operator<(const QueueEntry& other) const {
    return priority < other.priority;  // max-heap
  }
};

}  // namespace

TapsResult taps_search(const Matrix& closure, const TapsConfig& config) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  const std::size_t n = closure.rows();
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(n <= 57, "TAPS state encoding limited to n <= 57");

  // Per-position sorted access structure: all directed log-weights sorted
  // descending; prefix_top[r] = sum of the r largest. The threshold for a
  // partial path with r edges left is g + prefix_top[r] — exactly the TA
  // theta built from the heads of the unexamined sorted lists.
  std::vector<double> logs;
  logs.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double w = closure(i, j);
      CR_EXPECTS(w > 0.0 && w <= 1.0,
                 "TAPS requires a complete closure with weights in (0, 1]");
      logs.push_back(std::log(w));
    }
  }
  std::sort(logs.begin(), logs.end(), std::greater<>());
  std::vector<double> prefix_top(n, 0.0);
  for (std::size_t r = 1; r < n; ++r) {
    prefix_top[r] = prefix_top[r - 1] + logs[r - 1];
  }

  // Second, tighter admissible bound used for pop-time pruning: every
  // remaining edge starts at a *distinct* source (the current endpoint or
  // an unvisited vertex), so the remaining product is bounded by
  // max_out(last) times the product of the |S|-1 best max_out values over
  // the unvisited set S. max_out uses all targets (a superset of the true
  // remaining targets), which keeps the bound admissible.
  std::vector<double> log_max_out(n, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        log_max_out[i] = std::max(log_max_out[i], std::log(closure(i, j)));
      }
    }
  }
  // Vertices sorted by max_out descending for fast top-(k) scans.
  std::vector<std::uint32_t> by_max_out(n);
  for (std::uint32_t v = 0; v < n; ++v) by_max_out[v] = v;
  std::sort(by_max_out.begin(), by_max_out.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return log_max_out[a] > log_max_out[b];
            });

  // Source bound of a popped state: g + max_out(last) + sum of the top
  // (|S| - 1) max_out among unvisited vertices. O(n) per call.
  const auto source_bound = [&](const std::uint64_t mask,
                                const std::uint32_t last, const double g,
                                const std::size_t remaining) {
    if (remaining == 0) return g;
    double bound = g + log_max_out[last];
    std::size_t taken = 0;
    for (const std::uint32_t v : by_max_out) {
      if (taken + 1 >= remaining) break;
      if (mask & (std::uint64_t{1} << v)) continue;
      bound += log_max_out[v];
      ++taken;
    }
    return bound;
  };

  const std::uint64_t full = (std::uint64_t{1} << n) - 1;

  std::vector<Node> arena;
  arena.reserve(1024);
  std::priority_queue<QueueEntry> queue;
  // Dominated-state pruning: strictly worse g for the same (mask, last) can
  // never produce a better *or tying* full path, so drop it. Ties survive.
  std::unordered_map<std::uint64_t, double> best_g;
  best_g.reserve(1024);

  const auto state_key = [](std::uint64_t mask, std::uint32_t last) {
    return (mask << 6) | last;  // last < n <= 57 < 64 fits in the low bits
  };

  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint64_t mask = std::uint64_t{1} << v;
    arena.push_back(Node{mask, v, 0.0, -1});
    best_g[state_key(mask, v)] = 0.0;
    queue.push(QueueEntry{prefix_top[n - 1],
                          static_cast<std::int64_t>(arena.size()) - 1});
  }

  TapsResult result;
  double best_log = -std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> best_nodes;

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    // TA stop rule: the bound of the best unexamined candidate is theta;
    // once max >= theta nothing unseen can beat (or tie) the best.
    if (top.priority < best_log - config.tie_tolerance) {
      break;
    }
    const Node node = arena[static_cast<std::size_t>(top.node)];
    if (++result.expansions > config.max_expansions) {
      throw Error("TAPS expansion cap exceeded — use SAPS for this size");
    }

    if (node.mask == full) {
      if (node.g > best_log + config.tie_tolerance) {
        best_log = node.g;
        best_nodes.assign(1, top.node);
      } else if (config.collect_ties &&
                 std::abs(node.g - best_log) <= config.tie_tolerance) {
        best_nodes.push_back(top.node);
      }
      if (!config.collect_ties) {
        break;  // the first completed pop is provably optimal
      }
      continue;
    }

    // A stale entry (a strictly better g was found for this state after it
    // was queued) cannot contribute an optimum or a tie.
    const auto it = best_g.find(state_key(node.mask, node.last));
    if (it != best_g.end() && node.g < it->second - config.tie_tolerance) {
      continue;
    }

    std::size_t visited = 0;
    for (std::uint64_t m = node.mask; m != 0; m &= m - 1) ++visited;
    const std::size_t remaining = n - visited;  // edges left to place

    // Tighter per-source bound: prune states whose optimistic completion
    // cannot reach (or tie) the incumbent. Admissible, so exactness and
    // tie collection are unaffected — only wasted expansions go away.
    if (source_bound(node.mask, node.last, node.g, remaining) <
        best_log - config.tie_tolerance) {
      continue;
    }

    for (std::uint32_t next = 0; next < n; ++next) {
      if (node.mask & (std::uint64_t{1} << next)) continue;
      const double w = closure(node.last, next);
      const double g2 = node.g + std::log(w);
      const std::uint64_t mask2 = node.mask | (std::uint64_t{1} << next);
      const auto key = state_key(mask2, next);
      const auto found = best_g.find(key);
      if (found != best_g.end() && g2 < found->second - config.tie_tolerance) {
        continue;  // dominated
      }
      if (found == best_g.end() || g2 > found->second) {
        best_g[key] = g2;
      }
      arena.push_back(Node{mask2, next, g2,
                           top.node});
      queue.push(QueueEntry{g2 + prefix_top[remaining - 1],
                            static_cast<std::int64_t>(arena.size()) - 1});
    }
  }

  CR_ENSURES(!best_nodes.empty(), "TAPS found no Hamiltonian path");
  for (const std::int64_t leaf : best_nodes) {
    Path path;
    path.reserve(n);
    for (std::int64_t cur = leaf; cur >= 0;
         cur = arena[static_cast<std::size_t>(cur)].parent) {
      path.push_back(arena[static_cast<std::size_t>(cur)].last);
    }
    std::reverse(path.begin(), path.end());
    result.best_paths.push_back(std::move(path));
  }
  result.log_probability = best_log;
  result.probability = std::exp(best_log);
  return result;
}

}  // namespace crowdrank
