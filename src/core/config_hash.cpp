#include "core/config_hash.hpp"

namespace crowdrank {

void hash_append(StableHash& hash, const TruthDiscoveryConfig& config) {
  hash.add_u64(config.max_iterations);
  hash.add_double(config.tolerance);
  hash.add_double(config.alpha);
  hash.add_bool(config.use_quality_weighting);
  hash.add_double(config.deviation_floor);
}

void hash_append(StableHash& hash, const SmoothingConfig& config) {
  hash.add_u32(static_cast<std::uint32_t>(config.mode));
  hash.add_double(config.min_mass);
  hash.add_double(config.max_mass);
}

void hash_append(StableHash& hash, const PropagationConfig& config) {
  hash.add_u32(static_cast<std::uint32_t>(config.mode));
  hash.add_u32(static_cast<std::uint32_t>(config.aggregation));
  // fill_threshold deliberately excluded: it selects between
  // bitwise-identical sparse and dense kernels (DESIGN.md §7c).
  hash.add_u64(config.spectral_horizon);
  hash.add_u64(config.max_length);
  hash.add_double(config.alpha);
  hash.add_double(config.completeness_floor);
}

void hash_append(StableHash& hash, const SapsConfig& config) {
  hash.add_u64(config.iterations);
  hash.add_double(config.initial_temperature);
  hash.add_double(config.cooling_rate);
  hash.add_u64(config.restarts);
  hash.add_bool(config.paper_mode);
  hash.add_u32(static_cast<std::uint32_t>(config.init_mode));
  hash.add_bool(config.use_rotate);
  hash.add_bool(config.use_reverse);
  hash.add_bool(config.use_swap);
}

void hash_append(StableHash& hash, const TapsConfig& config) {
  hash.add_u64(config.max_expansions);
  hash.add_bool(config.collect_ties);
  hash.add_double(config.tie_tolerance);
}

void hash_append(StableHash& hash, const InferenceConfig& config) {
  hash.add_u64(kInferenceConfigHashSchema);
  hash_append(hash, config.truth_discovery);
  hash_append(hash, config.smoothing);
  hash_append(hash, config.propagation);
  hash.add_u32(static_cast<std::uint32_t>(config.search));
  hash_append(hash, config.saps);
  hash_append(hash, config.taps);
  // trace, control, and check_invariants are observe-only (traced and
  // untraced runs are pinned bitwise-identical) and never enter the key.
}

}  // namespace crowdrank
