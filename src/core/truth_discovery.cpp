#include "core/truth_discovery.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Canonicalized vote: x^k in {0,1} w.r.t. the canonical (first < second)
/// orientation of its task.
struct FlatVote {
  std::size_t task_index;
  WorkerId worker;
  double x;  // 1.0 if the worker prefers task.first, else 0.0
};

struct GroupedVotes {
  std::vector<Edge> tasks;          // canonical, in first-seen order
  std::vector<FlatVote> votes;      // all votes, canonicalized
  std::vector<std::vector<std::size_t>> votes_by_task;
  std::vector<std::vector<std::size_t>> votes_by_worker;
};

GroupedVotes group_votes(const VoteBatch& votes, std::size_t object_count,
                         std::size_t worker_count) {
  CR_EXPECTS(!votes.empty(), "truth discovery needs at least one vote");
  GroupedVotes g;
  std::map<Edge, std::size_t> task_index;
  g.votes_by_worker.resize(worker_count);
  for (const Vote& v : votes) {
    CR_EXPECTS(v.i < object_count && v.j < object_count,
               "vote references an out-of-range object");
    CR_EXPECTS(v.i != v.j, "vote compares an object with itself");
    CR_EXPECTS(v.worker < worker_count,
               "vote references an out-of-range worker");
    const Edge task = Edge::canonical(v.i, v.j);
    auto [it, inserted] = task_index.try_emplace(task, g.tasks.size());
    if (inserted) {
      g.tasks.push_back(task);
      g.votes_by_task.emplace_back();
    }
    const std::size_t t = it->second;
    // prefers_i refers to v.i; flip when canonicalization swapped the pair.
    const bool prefers_first = (v.i == task.first) ? v.prefers_i
                                                   : !v.prefers_i;
    const std::size_t vote_id = g.votes.size();
    g.votes.push_back(FlatVote{t, v.worker, prefers_first ? 1.0 : 0.0});
    g.votes_by_task[t].push_back(vote_id);
    g.votes_by_worker[v.worker].push_back(vote_id);
  }
  return g;
}

/// Chunk sizes for the per-task / per-worker parallel loops. Fixed (thread
/// count independent) so reduction chunk boundaries never move; each x[t] /
/// q[k] is written by exactly one chunk and the only reductions are exact
/// maxima, so iteration results are bitwise-identical at any thread count.
constexpr std::size_t kTaskGrain = 512;
constexpr std::size_t kWorkerGrain = 16;

}  // namespace

TruthDiscoveryResult discover_truth(const VoteBatch& votes,
                                    std::size_t object_count,
                                    std::size_t worker_count,
                                    const TruthDiscoveryConfig& config) {
  CR_EXPECTS(config.max_iterations >= 1, "need at least one iteration");
  CR_EXPECTS(config.tolerance > 0.0, "tolerance must be positive");
  CR_EXPECTS(config.alpha > 0.0 && config.alpha < 1.0,
             "alpha must be in (0, 1)");
  const GroupedVotes g = group_votes(votes, object_count, worker_count);
  const std::size_t num_tasks = g.tasks.size();

  std::vector<double> x(num_tasks, 0.5);
  std::vector<double> q(worker_count, 1.0);  // equal initial quality

  // Chi-squared scale per worker depends only on their task count;
  // precompute once.
  std::vector<double> chi2_scale(worker_count, 0.0);
  for (WorkerId k = 0; k < worker_count; ++k) {
    const std::size_t dof = g.votes_by_worker[k].size();
    if (dof > 0) {
      chi2_scale[k] = math::chi_squared_quantile(config.alpha / 2.0,
                                                 static_cast<double>(dof));
    }
  }

  TruthDiscoveryResult result;

  // Trace handles, resolved once. Instrumentation below only *reads* the
  // iteration state (delta, q spread) — it never feeds back into Eq. 4/5.
  metrics::Counter* trace_votes = trace::counter("truth_discovery.votes");
  metrics::Counter* trace_tasks = trace::counter("truth_discovery.tasks");
  metrics::Counter* trace_iters =
      trace::counter("truth_discovery.iterations");
  metrics::Series* trace_delta = trace::series("truth_discovery.delta");
  metrics::Series* trace_spread =
      trace::series("truth_discovery.quality_spread");
  if (trace_votes != nullptr) {
    trace_votes->add(g.votes.size());
    trace_tasks->add(num_tasks);
  }

  const std::size_t iteration_cap =
      config.use_quality_weighting ? config.max_iterations : 1;
  std::size_t iter = 0;
  bool converged = false;
  while (iter < iteration_cap && !converged) {
    ++iter;
    double max_change = 0.0;

    // E-step analog (Eq. 4): quality-weighted average per task. Tasks are
    // independent, so the loop fans out over the pool; the convergence
    // gauge is an exact max reduction.
    max_change = parallel_reduce(
        std::size_t{0}, num_tasks, kTaskGrain, max_change,
        [&](std::size_t t0, std::size_t t1) {
          double local = 0.0;
          for (std::size_t t = t0; t < t1; ++t) {
            double num = 0.0;
            double den = 0.0;
            for (const std::size_t vid : g.votes_by_task[t]) {
              const FlatVote& v = g.votes[vid];
              num += v.x * q[v.worker];
              den += q[v.worker];
            }
            const double next = den > 0.0 ? num / den : 0.5;
            local = std::max(local, std::abs(next - x[t]));
            x[t] = next;
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); });

    if (!config.use_quality_weighting) {
      // Plain averaging: one E-step with unit weights, no M-step.
      converged = true;
      if (trace_iters != nullptr) {
        trace_iters->add(1);
        trace::push_series(trace_delta, static_cast<double>(iter),
                           max_change);
      }
      break;
    }

    // M-step analog (Eq. 5): inverse total squared deviation, chi2-scaled.
    // Workers are independent; max_raw is again an exact max reduction.
    std::vector<double> raw(worker_count, 0.0);
    const double max_raw = parallel_reduce(
        std::size_t{0}, static_cast<std::size_t>(worker_count), kWorkerGrain,
        0.0,
        [&](std::size_t k0, std::size_t k1) {
          double local = 0.0;
          for (std::size_t k = k0; k < k1; ++k) {
            if (g.votes_by_worker[k].empty()) continue;
            double dev = config.deviation_floor *
                         static_cast<double>(g.votes_by_worker[k].size());
            for (const std::size_t vid : g.votes_by_worker[k]) {
              const FlatVote& v = g.votes[vid];
              const double d = v.x - x[v.task_index];
              dev += d * d;
            }
            raw[k] = chi2_scale[k] / dev;
            local = std::max(local, raw[k]);
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); });
    // Max-normalize into [0,1]; workers with no votes keep quality 1 (the
    // neutral prior) — they never enter Eq. 4 anyway.
    max_change = parallel_reduce(
        std::size_t{0}, static_cast<std::size_t>(worker_count), kWorkerGrain,
        max_change,
        [&](std::size_t k0, std::size_t k1) {
          double local = 0.0;
          for (std::size_t k = k0; k < k1; ++k) {
            const double next = g.votes_by_worker[k].empty()
                                    ? 1.0
                                    : (max_raw > 0.0 ? raw[k] / max_raw : 1.0);
            local = std::max(local, std::abs(next - q[k]));
            q[k] = next;
          }
          return local;
        },
        [](double a, double b) { return std::max(a, b); });

    converged = max_change < config.tolerance;

    if (trace_iters != nullptr) {
      trace_iters->add(1);
      // Convergence series, keyed by iteration number: the Eq. 4/5 delta
      // and the spread (max - min) of the normalized worker weights.
      trace::push_series(trace_delta, static_cast<double>(iter), max_change);
      const auto [q_min, q_max] = std::minmax_element(q.begin(), q.end());
      trace::push_series(trace_spread, static_cast<double>(iter),
                         *q_max - *q_min);
    }
  }

  result.truths.reserve(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    result.truths.push_back(
        TaskTruth{g.tasks[t], math::clamp01(x[t]), g.votes_by_task[t].size()});
  }
  // Calibrated quality for Step 2: sigma_hat_k is the empirical RMS
  // deviation of the worker's votes from the final truths; q = exp(-sigma)
  // inverts §V-B's sigma_k = -log(q_k).
  result.worker_quality.assign(worker_count, 1.0);
  parallel_for(0, worker_count, kWorkerGrain,
               [&](std::size_t k0, std::size_t k1) {
                 for (std::size_t k = k0; k < k1; ++k) {
                   if (g.votes_by_worker[k].empty()) continue;
                   double dev = 0.0;
                   for (const std::size_t vid : g.votes_by_worker[k]) {
                     const FlatVote& v = g.votes[vid];
                     const double d = v.x - x[v.task_index];
                     dev += d * d;
                   }
                   const double msd =
                       dev / static_cast<double>(g.votes_by_worker[k].size());
                   result.worker_quality[k] = std::exp(-std::sqrt(msd));
                 }
               });
  result.worker_weight = std::move(q);
  result.iterations = iter;
  result.converged = converged;
  return result;
}

PreferenceGraph TruthDiscoveryResult::to_preference_graph(
    std::size_t n) const {
  PreferenceGraph graph(n);
  for (const TaskTruth& t : truths) {
    CR_EXPECTS(t.task.first < n && t.task.second < n,
               "truth references an out-of-range object");
    graph.set_weight(t.task.first, t.task.second, t.x);
    graph.set_weight(t.task.second, t.task.first, 1.0 - t.x);
  }
  return graph;
}

std::vector<TaskTruth> majority_vote_truth(const VoteBatch& votes,
                                           std::size_t object_count) {
  const GroupedVotes g = group_votes(votes, object_count,
                                     [&] {
                                       WorkerId max_worker = 0;
                                       for (const Vote& v : votes) {
                                         max_worker =
                                             std::max(max_worker, v.worker);
                                       }
                                       return max_worker + 1;
                                     }());
  std::vector<TaskTruth> out;
  out.reserve(g.tasks.size());
  for (std::size_t t = 0; t < g.tasks.size(); ++t) {
    double sum = 0.0;
    for (const std::size_t vid : g.votes_by_task[t]) {
      sum += g.votes[vid].x;
    }
    const double x = sum / static_cast<double>(g.votes_by_task[t].size());
    out.push_back(TaskTruth{g.tasks[t], x, g.votes_by_task[t].size()});
  }
  return out;
}

}  // namespace crowdrank
