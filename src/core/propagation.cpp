#include "core/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "graph/transitive_closure.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Rows per pool task in the O(n^2) element-wise passes. Each (i, j) pair
/// with i < j is owned by row i's chunk and writes only closure(i, j) /
/// closure(j, i), so any row partition yields identical results; the
/// evidence counter is an exact integer-sum reduction.
constexpr std::size_t kRowGrain = 16;

/// S = sum_{k=1..L} W^k by doubling, max-renormalized each step (only the
/// entry *ratios* of S survive, which is all the pair-normalized closure
/// needs). L = smallest power of two >= target_length.
Matrix spectral_walk_sum(const Matrix& w, std::size_t target_length) {
  const std::size_t n = w.rows();

  // Per-doubling-step trace: the log-scale of W^m ("residual" of the power
  // iteration — how far the high-order terms have decayed), the carry
  // factor that re-injects S(m), and a count of the full-matrix max scans
  // (w_max + every renormalize) now folded into the parallel max-reduce.
  // Pure observation of existing state.
  metrics::Counter* trace_steps = trace::counter("propagation.power_steps");
  metrics::Counter* trace_scans =
      trace::counter("propagation.renormalize_scans");
  metrics::Series* trace_lp = trace::series("propagation.lp");
  metrics::Series* trace_carry = trace::series("propagation.carry");

  const double w_max = w.max_value();
  if (trace_scans != nullptr) trace_scans->add(1);
  if (w_max <= 0.0) {
    return Matrix(n, n, 0.0);  // edgeless graph: no evidence anywhere
  }

  const auto renormalize = [&](Matrix& m) {
    // Parallel exact max-reduce + parallel scale; both are element-disjoint
    // or rounding-free, so the pass is bitwise-stable at any thread count.
    const double max_entry = m.max_value();
    if (max_entry > 0.0) {
      m *= 1.0 / max_entry;
    }
    if (trace_scans != nullptr) trace_scans->add(1);
    return max_entry;
  };

  // Invariants: s_hat ∝ S(m), p_hat = W^m / e^{lp} with max entry 1.
  Matrix s_hat = w;
  renormalize(s_hat);
  Matrix p_hat = s_hat;
  double lp = std::log(w_max);
  std::size_t length = 1;
  while (length < target_length) {
    // S(2m) = S(m) + W^m * S(m)  ==>  (up to global scale)
    // s' = p_hat * s_hat + e^{-lp} * s_hat.
    if (lp <= -700.0) {
      // W^m is vanishingly small against S(m): the sum has converged.
      break;
    }
    // The carry add is fused into the product's parallel pass: each row
    // task applies `+ carry * s_hat` right after producing its rows, while
    // they are cache-hot, instead of a second full sweep over the matrix.
    Matrix next =
        lp < 700.0  // outside this band one term fully dominates
            ? Matrix::multiply_add_scaled(p_hat, s_hat, std::exp(-lp),
                                          s_hat)
            : Matrix::multiply(p_hat, s_hat);
    renormalize(next);
    s_hat = std::move(next);

    Matrix p_next = Matrix::multiply(p_hat, p_hat);
    const double scale = renormalize(p_next);
    p_hat = std::move(p_next);
    lp = 2.0 * lp + std::log(std::max(scale, 1e-300));
    length *= 2;

    if (trace_steps != nullptr) {
      trace_steps->add(1);
      const double len = static_cast<double>(length);
      trace::push_series(trace_lp, len, lp);
      trace::push_series(trace_carry, len,
                         lp < 700.0 && lp > -700.0 ? std::exp(-lp) : 0.0);
    }
  }
  return s_hat;
}

}  // namespace

Matrix propagate_preferences(const PreferenceGraph& smoothed,
                             const PropagationConfig& config,
                             PropagationStats* stats) {
  CR_EXPECTS(config.alpha >= 0.0 && config.alpha <= 1.0,
             "alpha must be in [0, 1]");
  CR_EXPECTS(config.max_length >= 2, "indirect paths have length >= 2");
  CR_EXPECTS(config.completeness_floor > 0.0 &&
                 config.completeness_floor < 0.5,
             "completeness floor must be in (0, 0.5)");
  const std::size_t n = smoothed.vertex_count();

  const Matrix& direct = smoothed.weights();

  if (config.mode == PropagationMode::SpectralLimit) {
    // The doubling sum already contains the direct (k = 1) term and its
    // global scale is normalized away, so the closure is simply the
    // pair-normalized sum (alpha is documented as ignored).
    const std::size_t target = std::max(config.max_length, n);
    const Matrix sum = spectral_walk_sum(direct, target);
    PropagationStats local;
    Matrix closure(n, n, 0.0);
    local.pairs_without_evidence = parallel_reduce(
        std::size_t{0}, n, kRowGrain, std::size_t{0},
        [&](std::size_t r0, std::size_t r1) {
          std::size_t missing = 0;
          for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
              double wij = sum(i, j);
              double wji = sum(j, i);
              const double total = wij + wji;
              if (total <= 0.0) {
                wij = 0.5;
                wji = 0.5;
                ++missing;
              } else {
                const double floor = config.completeness_floor;
                wij = std::clamp(wij / total, floor, 1.0 - floor);
                wji = std::clamp(wji / total, floor, 1.0 - floor);
              }
              closure(i, j) = wij;
              closure(j, i) = wji;
            }
          }
          return missing;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    local.complete = true;
    if (metrics::Counter* c =
            trace::counter("propagation.pairs_without_evidence")) {
      c->add(local.pairs_without_evidence);
    }
    if (stats != nullptr) {
      *stats = local;
    }
    return closure;
  }

  Matrix indirect =
      config.mode == PropagationMode::BoundedWalks
          ? walk_indirect_preferences(direct, config.max_length)
          : exact_indirect_preferences(smoothed, config.max_length);

  if (config.aggregation == PathAggregation::Average) {
    // Divide each pair's walk-sum by the number of contributing walks so
    // w* stays on the direct weights' [0,1] scale. The count matrix reuses
    // the same power-sum over the 0/1 adjacency indicator. Both O(n^2)
    // element-wise passes (indicator build, normalization) run as
    // element-disjoint row blocks on the pool.
    Matrix adjacency(n, n, 0.0);
    parallel_for(0, n, kRowGrain, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (direct(i, j) > 0.0) adjacency(i, j) = 1.0;
        }
      }
    });
    const Matrix counts =
        config.mode == PropagationMode::BoundedWalks
            ? walk_indirect_preferences(adjacency, config.max_length)
            : exact_indirect_preferences(
                  PreferenceGraph::from_matrix(adjacency),
                  config.max_length);
    parallel_for(0, n, kRowGrain, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (counts(i, j) > 0.0) {
            indirect(i, j) /= counts(i, j);
          }
        }
      }
    });
  }

  PropagationStats local;
  Matrix closure(n, n, 0.0);
  local.pairs_without_evidence = parallel_reduce(
      std::size_t{0}, n, kRowGrain, std::size_t{0},
      [&](std::size_t r0, std::size_t r1) {
        std::size_t missing = 0;
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            double wij = config.alpha * direct(i, j) +
                         (1.0 - config.alpha) * indirect(i, j);
            double wji = config.alpha * direct(j, i) +
                         (1.0 - config.alpha) * indirect(j, i);
            const double total = wij + wji;
            if (total <= 0.0) {
              // No direct vote and no transitive evidence within max_length:
              // uninformative prior keeps the closure complete (Thm 5.1).
              wij = 0.5;
              wji = 0.5;
              ++missing;
            } else {
              wij /= total;
              wji /= total;
              const double floor = config.completeness_floor;
              wij = std::clamp(wij, floor, 1.0 - floor);
              wji = std::clamp(wji, floor, 1.0 - floor);
            }
            closure(i, j) = wij;
            closure(j, i) = wji;
          }
        }
        return missing;
      },
      [](std::size_t a, std::size_t b) { return a + b; });

  // Completeness scan as an AND-reduction over row chunks. Each chunk
  // keeps the serial loop's early exit (it stops at its first hole), and
  // logical AND is exact, so the verdict matches the serial scan at any
  // thread count.
  local.complete = parallel_reduce(
      std::size_t{0}, n, kRowGrain, true,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            if (i != j && closure(i, j) <= 0.0) {
              return false;
            }
          }
        }
        return true;
      },
      [](bool acc, bool part) { return acc && part; });
  if (metrics::Counter* c =
          trace::counter("propagation.pairs_without_evidence")) {
    c->add(local.pairs_without_evidence);
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return closure;
}

}  // namespace crowdrank
