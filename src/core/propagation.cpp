#include "core/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/invariants.hpp"
#include "graph/transitive_closure.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/sparse_matrix.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Rows per pool task in the O(n^2) element-wise passes. Each (i, j) pair
/// with i < j is owned by row i's chunk and writes only closure(i, j) /
/// closure(j, i), so any row partition yields identical results; the
/// evidence counter is an exact integer-sum reduction.
constexpr std::size_t kRowGrain = 16;

/// S = sum_{k=1..L} W^k by doubling, max-renormalized each step (only the
/// entry *ratios* of S survive, which is all the pair-normalized closure
/// needs). L = smallest power of two >= the configured target length.
///
/// Sparse-first hybrid: the doubling starts on the smoothed graph's CSR
/// view and runs on SparseMatrix kernels while the state's fill stays
/// under config.fill_threshold; the moment a step would run past it the
/// state densifies once and the loop finishes on the blocked dense Matrix
/// kernels. The sparse kernels accumulate every output element in the
/// same ascending-k order as the dense ones, so where the representation
/// switches is unobservable in the result — any threshold (including 0,
/// dense from the start: the pinned oracle) produces a bitwise-identical
/// sum. Diagnostics land in `stats` and the propagation.* trace metrics.
Matrix spectral_walk_sum(const PreferenceGraph& smoothed,
                         const PropagationConfig& config,
                         PropagationStats& stats) {
  const std::size_t n = smoothed.vertex_count();
  const std::size_t target = config.spectral_horizon > 0
                                 ? config.spectral_horizon
                                 : std::max(config.max_length, n);

  // Per-doubling-step trace: the log-scale of W^m ("residual" of the power
  // iteration — how far the high-order terms have decayed), the carry
  // factor that re-injects S(m), a count of the full-matrix max scans, and
  // the sparse state's fill per step. Pure observation of existing state.
  metrics::Counter* trace_steps = trace::counter("propagation.power_steps");
  metrics::Counter* trace_scans =
      trace::counter("propagation.renormalize_scans");
  metrics::Series* trace_lp = trace::series("propagation.lp");
  metrics::Series* trace_carry = trace::series("propagation.carry");
  metrics::Series* trace_fill = trace::series("propagation.fill_ratio");

  const bool validate = analysis::invariant_checks_enabled();

  // The smoothed graph's cached CSR view is the natural sparse starting
  // point — no dense scan, no conversion beyond an O(m) copy.
  const CsrAdjacency& adj = smoothed.out_csr();
  SparseMatrix s_sparse = SparseMatrix::from_csr(
      n, n, adj.row_ptr, adj.neighbors, adj.weights);

  const double w_max = s_sparse.max_value();
  if (trace_scans != nullptr) trace_scans->add(1);
  if (w_max <= 0.0) {
    // Edgeless graph: no evidence anywhere.
    return Matrix(n, n, 0.0);  // lint:allow(dense-in-propagation)
  }

  const auto renormalize_dense = [&](Matrix& m) {
    // Parallel exact max-reduce + parallel scale; both are element-disjoint
    // or rounding-free, so the pass is bitwise-stable at any thread count.
    const double max_entry = m.max_value();
    if (max_entry > 0.0) {
      m *= 1.0 / max_entry;
    }
    if (trace_scans != nullptr) trace_scans->add(1);
    return max_entry;
  };
  const auto renormalize_sparse = [&](SparseMatrix& m) {
    // Same scan over the stored entries only: absent entries are zeros,
    // which the dense reduce floors away and the dense scale maps to
    // 0.0 * s == 0.0 — bit-for-bit the dense pass.
    const double max_entry = m.max_value();
    if (max_entry > 0.0) {
      m *= 1.0 / max_entry;
    }
    if (trace_scans != nullptr) trace_scans->add(1);
    return max_entry;
  };

  // Invariants: s_hat ∝ S(m), p_hat = W^m / e^{lp} with max entry 1 —
  // held in exactly one representation at a time.
  renormalize_sparse(s_sparse);
  SparseMatrix p_sparse = s_sparse;
  Matrix s_dense;
  Matrix p_dense;
  double lp = std::log(w_max);
  std::size_t length = 1;
  std::size_t step = 0;
  bool sparse = config.fill_threshold > 0.0;

  // The one sanctioned dense-materialization point of the hybrid: both
  // state matrices cross to the dense representation together, exactly
  // once per run (tools/crowdrank_lint.py bans dense Matrix construction
  // in this file everywhere else).
  const auto densify = [&] {
    if (validate) {
      analysis::check_sparse_matrix(s_sparse);
      analysis::check_sparse_matrix(p_sparse);
    }
    s_dense = s_sparse.to_dense();  // lint:allow(dense-in-propagation)
    p_dense = p_sparse.to_dense();  // lint:allow(dense-in-propagation)
    if (validate) {
      analysis::check_sparse_dense_consistency(s_sparse, s_dense);
      analysis::check_sparse_dense_consistency(p_sparse, p_dense);
    }
    s_sparse = SparseMatrix();
    p_sparse = SparseMatrix();
    sparse = false;
    stats.densify_step = step + 1;
  };

  if (!sparse) {
    densify();  // fill_threshold == 0: the dense oracle, from step one
  }

  while (length < target) {
    // S(2m) = S(m) + W^m * S(m)  ==>  (up to global scale)
    // s' = p_hat * s_hat + e^{-lp} * s_hat.
    if (lp <= -700.0) {
      // W^m is vanishingly small against S(m): the sum has converged.
      break;
    }
    if (sparse) {
      const double fill =
          std::max(s_sparse.fill_ratio(), p_sparse.fill_ratio());
      trace::push_series(trace_fill, static_cast<double>(length), fill);
      if (fill > config.fill_threshold) {
        densify();
      }
    }
    // On the final doubling step p_hat is dead after the s update — the
    // loop exits and only s_hat survives — so its squaring (the single
    // most expensive multiply of the step) is skipped. Applies to both
    // representations alike; no result bit depends on it.
    const bool last = length * 2 >= target;
    const bool carry = lp < 700.0;  // outside this band one term dominates
    ++step;
    if (sparse) {
      std::uint64_t flops = 0;
      // The carry add is fused into the product's row pass, mirroring the
      // dense fused kernel (per element: product terms first, then
      // + carry * s_hat).
      SparseMatrix next =
          carry ? SparseMatrix::multiply_add_scaled(
                      p_sparse, s_sparse, std::exp(-lp), s_sparse, &flops)
                : SparseMatrix::multiply(p_sparse, s_sparse, &flops);
      stats.sparse_flops += flops;
      renormalize_sparse(next);
      s_sparse = std::move(next);
      if (!last) {
        SparseMatrix p_next =
            SparseMatrix::multiply(p_sparse, p_sparse, &flops);
        stats.sparse_flops += flops;
        const double scale = renormalize_sparse(p_next);
        p_sparse = std::move(p_next);
        lp = 2.0 * lp + std::log(std::max(scale, 1e-300));
      }
    } else {
      // The carry add is fused into the product's parallel pass: each row
      // task applies `+ carry * s_hat` right after producing its rows,
      // while they are cache-hot, instead of a second full sweep.
      Matrix next =
          carry ? Matrix::multiply_add_scaled(p_dense, s_dense,
                                              std::exp(-lp), s_dense)
                : Matrix::multiply(p_dense, s_dense);
      renormalize_dense(next);
      s_dense = std::move(next);
      if (!last) {
        Matrix p_next = Matrix::multiply(p_dense, p_dense);
        const double scale = renormalize_dense(p_next);
        p_dense = std::move(p_next);
        lp = 2.0 * lp + std::log(std::max(scale, 1e-300));
      }
    }
    length *= 2;

    if (trace_steps != nullptr) {
      trace_steps->add(1);
      if (!last) {
        const double len = static_cast<double>(length);
        trace::push_series(trace_lp, len, lp);
        trace::push_series(trace_carry, len,
                           lp < 700.0 && lp > -700.0 ? std::exp(-lp) : 0.0);
      }
    }
  }
  stats.doubling_steps = step;
  stats.fill_ratio = sparse ? s_sparse.fill_ratio() : 1.0;
  if (sparse) {
    return s_sparse.to_dense();  // lint:allow(dense-in-propagation)
  }
  return s_dense;
}

}  // namespace

Matrix propagate_preferences(const PreferenceGraph& smoothed,
                             const PropagationConfig& config,
                             PropagationStats* stats) {
  CR_EXPECTS(config.alpha >= 0.0 && config.alpha <= 1.0,
             "alpha must be in [0, 1]");
  CR_EXPECTS(config.max_length >= 2, "indirect paths have length >= 2");
  CR_EXPECTS(config.completeness_floor > 0.0 &&
                 config.completeness_floor < 0.5,
             "completeness floor must be in (0, 0.5)");
  const std::size_t n = smoothed.vertex_count();

  const Matrix& direct = smoothed.weights();

  if (config.mode == PropagationMode::SpectralLimit) {
    CR_EXPECTS(config.fill_threshold >= 0.0 && config.fill_threshold <= 1.0,
               "fill threshold must be in [0, 1]");
    CR_EXPECTS(config.spectral_horizon == 0 || config.spectral_horizon >= 2,
               "spectral horizon must be 0 (auto) or >= 2");
    // The doubling sum already contains the direct (k = 1) term and its
    // global scale is normalized away, so the closure is simply the
    // pair-normalized sum (alpha is documented as ignored).
    PropagationStats local;
    const Matrix sum = spectral_walk_sum(smoothed, config, local);
    if (metrics::Counter* c = trace::counter("propagation.densify_step")) {
      c->add(local.densify_step);
      trace::counter("propagation.sparse_flops")->add(local.sparse_flops);
    }
    Matrix closure(n, n, 0.0);  // lint:allow(dense-in-propagation)
    local.pairs_without_evidence = parallel_reduce(
        std::size_t{0}, n, kRowGrain, std::size_t{0},
        [&](std::size_t r0, std::size_t r1) {
          std::size_t missing = 0;
          for (std::size_t i = r0; i < r1; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
              double wij = sum(i, j);
              double wji = sum(j, i);
              const double total = wij + wji;
              if (total <= 0.0) {
                wij = 0.5;
                wji = 0.5;
                ++missing;
              } else {
                const double floor = config.completeness_floor;
                wij = std::clamp(wij / total, floor, 1.0 - floor);
                wji = std::clamp(wji / total, floor, 1.0 - floor);
              }
              closure(i, j) = wij;
              closure(j, i) = wji;
            }
          }
          return missing;
        },
        [](std::size_t a, std::size_t b) { return a + b; });
    local.complete = true;
    if (metrics::Counter* c =
            trace::counter("propagation.pairs_without_evidence")) {
      c->add(local.pairs_without_evidence);
    }
    if (stats != nullptr) {
      *stats = local;
    }
    return closure;
  }

  // The bounded-walks / exact-paths engines are inherently dense (they
  // blend against the dense direct matrix pairwise); the sparse-first
  // mandate covers only the SpectralLimit branch above.
  Matrix indirect =
      config.mode == PropagationMode::BoundedWalks
          ? walk_indirect_preferences(direct, config.max_length)
          : exact_indirect_preferences(smoothed, config.max_length);

  if (config.aggregation == PathAggregation::Average) {
    // Divide each pair's walk-sum by the number of contributing walks so
    // w* stays on the direct weights' [0,1] scale. The count matrix reuses
    // the same power-sum over the 0/1 adjacency indicator. Both O(n^2)
    // element-wise passes (indicator build, normalization) run as
    // element-disjoint row blocks on the pool.
    Matrix adjacency(n, n, 0.0);  // lint:allow(dense-in-propagation)
    parallel_for(0, n, kRowGrain, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (direct(i, j) > 0.0) adjacency(i, j) = 1.0;
        }
      }
    });
    const Matrix counts =
        config.mode == PropagationMode::BoundedWalks
            ? walk_indirect_preferences(adjacency, config.max_length)
            : exact_indirect_preferences(
                  PreferenceGraph::from_matrix(adjacency),
                  config.max_length);
    parallel_for(0, n, kRowGrain, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (counts(i, j) > 0.0) {
            indirect(i, j) /= counts(i, j);
          }
        }
      }
    });
  }

  PropagationStats local;
  Matrix closure(n, n, 0.0);  // lint:allow(dense-in-propagation)
  local.pairs_without_evidence = parallel_reduce(
      std::size_t{0}, n, kRowGrain, std::size_t{0},
      [&](std::size_t r0, std::size_t r1) {
        std::size_t missing = 0;
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            double wij = config.alpha * direct(i, j) +
                         (1.0 - config.alpha) * indirect(i, j);
            double wji = config.alpha * direct(j, i) +
                         (1.0 - config.alpha) * indirect(j, i);
            const double total = wij + wji;
            if (total <= 0.0) {
              // No direct vote and no transitive evidence within max_length:
              // uninformative prior keeps the closure complete (Thm 5.1).
              wij = 0.5;
              wji = 0.5;
              ++missing;
            } else {
              wij /= total;
              wji /= total;
              const double floor = config.completeness_floor;
              wij = std::clamp(wij, floor, 1.0 - floor);
              wji = std::clamp(wji, floor, 1.0 - floor);
            }
            closure(i, j) = wij;
            closure(j, i) = wji;
          }
        }
        return missing;
      },
      [](std::size_t a, std::size_t b) { return a + b; });

  // Completeness scan as an AND-reduction over row chunks. Each chunk
  // keeps the serial loop's early exit (it stops at its first hole), and
  // logical AND is exact, so the verdict matches the serial scan at any
  // thread count.
  local.complete = parallel_reduce(
      std::size_t{0}, n, kRowGrain, true,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            if (i != j && closure(i, j) <= 0.0) {
              return false;
            }
          }
        }
        return true;
      },
      [](bool acc, bool part) { return acc && part; });
  if (metrics::Counter* c =
          trace::counter("propagation.pairs_without_evidence")) {
    c->add(local.pairs_without_evidence);
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return closure;
}

}  // namespace crowdrank
