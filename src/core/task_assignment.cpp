#include "core/task_assignment.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

double io_node_probability(std::size_t degree) {
  return 2.0 / std::pow(3.0, static_cast<double>(degree));
}

double hp_likelihood_lower_bound(std::size_t n, std::size_t d_min,
                                 std::size_t d_max) {
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(d_min >= 1 && d_min <= d_max, "need 1 <= d_min <= d_max");
  const double nn = static_cast<double>(n);
  const double pow_min = std::pow(3.0, static_cast<double>(d_min));
  const double pow_max = std::pow(3.0, static_cast<double>(d_max));
  const double base = std::pow(1.0 - 2.0 / pow_min, nn);
  const double denom = pow_max - 2.0;
  const double bracket =
      1.0 + 2.0 * nn / denom + nn * (nn - 1.0) / (2.0 * denom * denom);
  return base * bracket;
}

namespace {

TaskAssignmentStats make_stats(const TaskGraph& g,
                               std::size_t repair_operations) {
  TaskAssignmentStats stats;
  stats.edge_count = g.edge_count();
  stats.min_degree = g.min_degree();
  stats.max_degree = g.max_degree();
  stats.strictly_regular = stats.min_degree == stats.max_degree;
  stats.fair = stats.max_degree - stats.min_degree <= 1;
  stats.hp_likelihood_lower_bound = hp_likelihood_lower_bound(
      g.vertex_count(), std::max<std::size_t>(stats.min_degree, 1),
      std::max<std::size_t>(stats.max_degree, 1));
  stats.repair_operations = repair_operations;
  return stats;
}

/// Degree targets summing to 2l: base = floor(2l/n) everywhere, +1 for a
/// random subset of (2l mod n) vertices.
std::vector<std::size_t> degree_targets(std::size_t n, std::size_t num_edges,
                                        Rng& rng) {
  const std::size_t total = 2 * num_edges;
  const std::size_t base = total / n;
  const std::size_t surplus = total % n;
  std::vector<std::size_t> targets(n, base);
  const auto bumped = rng.sample_without_replacement(n, surplus);
  for (const std::size_t v : bumped) {
    targets[v] += 1;
  }
  return targets;
}

}  // namespace

TaskAssignment generate_task_assignment(std::size_t n, std::size_t num_edges,
                                        Rng& rng) {
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(num_edges >= n - 1,
             "budget below n-1 comparisons cannot connect all objects");
  CR_EXPECTS(num_edges <= math::pair_count(n),
             "budget exceeds the number of distinct pairs");

  TaskGraph graph(n);
  std::size_t repairs = 0;

  // Line 4: a random Hamiltonian path seeds connectivity (and is itself an
  // HP of the task graph, the necessary condition of Thm 4.2).
  const auto hp = rng.permutation(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph.add_edge(hp[i], hp[i + 1]);
  }

  // Degree targets approximating d = 2l/n for every vertex. The random HP
  // already gives interior vertices degree 2 and endpoints degree 1; when a
  // target falls below a vertex's current degree (only possible for the
  // sparse l ~ n-1 regime) the surplus is absorbed by the swap repair below
  // being unnecessary — we simply never add more edges at that vertex.
  auto targets = degree_targets(n, num_edges, rng);
  // Ensure no target is below the HP-seeded degree: shift deficit from
  // over-seeded vertices to others so the target sum stays 2l.
  for (std::size_t rounds = 0; rounds < n; ++rounds) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      while (targets[v] < graph.degree(v)) {
        // find a vertex with slack (target above current degree) and take
        // one unit from... rather give one unit to v taken from a vertex
        // whose target exceeds its HP degree by the most.
        VertexId donor = n;
        std::size_t best_slack = 0;
        for (VertexId u = 0; u < n; ++u) {
          if (u == v) continue;
          const std::size_t deg = graph.degree(u);
          const std::size_t slack = targets[u] > deg ? targets[u] - deg : 0;
          if (slack > best_slack) {
            best_slack = slack;
            donor = u;
          }
        }
        CR_ENSURES(donor < n, "cannot balance degree targets");
        targets[donor] -= 1;
        targets[v] += 1;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Lines 5-8: top every vertex up to its target by pairing deficient
  // vertices at random. PS (the set of saturated vertices) is implicit:
  // a vertex leaves the candidate pool once deg == target.
  std::vector<VertexId> deficient;
  for (VertexId v = 0; v < n; ++v) {
    if (graph.degree(v) < targets[v]) deficient.push_back(v);
  }

  const auto refresh_deficient = [&]() {
    deficient.erase(std::remove_if(deficient.begin(), deficient.end(),
                                   [&](VertexId v) {
                                     return graph.degree(v) >= targets[v];
                                   }),
                    deficient.end());
  };

  std::size_t guard = 0;
  const std::size_t guard_limit = 20 * num_edges + 1000;
  while (graph.edge_count() < num_edges) {
    CR_ENSURES(++guard < guard_limit, "task generation failed to converge");
    refresh_deficient();

    // Try a uniformly random deficient pair that is not yet adjacent.
    bool added = false;
    if (deficient.size() >= 2) {
      for (int attempt = 0; attempt < 32 && !added; ++attempt) {
        const auto a_idx = rng.uniform_index(deficient.size());
        auto b_idx = rng.uniform_index(deficient.size() - 1);
        if (b_idx >= a_idx) ++b_idx;
        const VertexId a = deficient[a_idx];
        const VertexId b = deficient[b_idx];
        if (!graph.has_edge(a, b)) {
          graph.add_edge(a, b);
          added = true;
        }
      }
      if (!added) {
        // Exhaustive scan before falling back to repair.
        for (std::size_t ai = 0; ai < deficient.size() && !added; ++ai) {
          for (std::size_t bi = ai + 1; bi < deficient.size(); ++bi) {
            if (!graph.has_edge(deficient[ai], deficient[bi])) {
              graph.add_edge(deficient[ai], deficient[bi]);
              added = true;
              break;
            }
          }
        }
      }
    }
    if (added) continue;

    // Greedy dead end: remaining deficient vertices form a clique (or a
    // single vertex with deficit 2). Swap repair: remove an existing edge
    // (a, b) disjoint from two deficient endpoints u, v and add (a, u),
    // (b, v) — degrees of a and b unchanged, u and v each gain one.
    refresh_deficient();
    CR_ENSURES(!deficient.empty(), "edge deficit without deficient vertices");
    const VertexId u = deficient[0];
    // Pair the two first deficient vertices; when only one vertex remains
    // deficient its deficit is >= 2 (total deficit is even), so u == v and
    // the repair gives it both new endpoints.
    const VertexId v = deficient.size() >= 2 ? deficient[1] : deficient[0];
    bool repaired = false;
    const auto edges_snapshot =
        std::vector<Edge>(graph.edges().begin(), graph.edges().end());
    // Random starting offset so repairs do not always cannibalize the same
    // (earliest) edges.
    const std::size_t offset = rng.uniform_index(edges_snapshot.size());
    for (std::size_t step = 0; step < edges_snapshot.size() && !repaired;
         ++step) {
      const Edge& e = edges_snapshot[(offset + step) % edges_snapshot.size()];
      const VertexId a = e.first;
      const VertexId b = e.second;
      if (a == u || a == v || b == u || b == v) continue;
      if (graph.has_edge(a, u) || graph.has_edge(b, v)) continue;
      // Never remove a seed-HP edge: connectivity must survive.
      bool is_hp_edge = false;
      for (std::size_t i = 0; i + 1 < n; ++i) {
        if (Edge::canonical(hp[i], hp[i + 1]) == e) {
          is_hp_edge = true;
          break;
        }
      }
      if (is_hp_edge) continue;
      // TaskGraph has no remove; rebuild is O(l) but repairs are rare.
      TaskGraph rebuilt(n);
      for (const Edge& keep : edges_snapshot) {
        if (keep == e) continue;
        rebuilt.add_edge(keep.first, keep.second);
      }
      rebuilt.add_edge(a, u);
      rebuilt.add_edge(b, v);
      graph = std::move(rebuilt);
      repaired = true;
      ++repairs;
    }
    CR_ENSURES(repaired, "task generation could not repair a dead end");
  }

  CR_ENSURES(graph.edge_count() == num_edges,
             "generated graph has the wrong edge count");
  CR_ENSURES(graph.is_connected(), "generated task graph is disconnected");
  auto stats = make_stats(graph, repairs);
  return TaskAssignment{std::move(graph), stats};
}

TaskAssignment generate_random_assignment(std::size_t n,
                                          std::size_t num_edges, Rng& rng) {
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(num_edges >= 1 && num_edges <= math::pair_count(n),
             "edge count out of range");
  // Sample edge indices without replacement from the C(n,2) pair universe.
  const auto picked =
      rng.sample_without_replacement(math::pair_count(n), num_edges);
  TaskGraph graph(n);
  for (const std::size_t flat : picked) {
    // Unrank the flat index into a pair (i, j), i < j, row-major over the
    // strictly-upper triangle.
    std::size_t i = 0;
    std::size_t remaining = flat;
    std::size_t row_len = n - 1;
    while (remaining >= row_len) {
      remaining -= row_len;
      ++i;
      --row_len;
    }
    const std::size_t j = i + 1 + remaining;
    graph.add_edge(i, j);
  }
  auto stats = make_stats(graph, 0);
  return TaskAssignment{std::move(graph), stats};
}

TaskAssignment generate_all_pairs_assignment(std::size_t n) {
  CR_EXPECTS(n >= 2, "need at least two objects");
  TaskGraph graph(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      graph.add_edge(i, j);
    }
  }
  auto stats = make_stats(graph, 0);
  return TaskAssignment{std::move(graph), stats};
}

}  // namespace crowdrank
