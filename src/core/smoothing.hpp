// Step 2 — preference smoothing (paper §V-B).
//
// 1-edges (unanimous tasks, weight exactly 1) are the root cause of
// Hamiltonian-path failure: they create in-/out-nodes whose reverse
// preference was simply never observed in this single round. Smoothing
// estimates that unseen reverse preference from the quality of the workers
// who answered the task: with sigma_k = -log(q_k), worker k's error mass is
// err_k ~ |N(0, sigma_k^2)|, and the 1-edge (i, j) becomes
//   w_ij = 1 - mean_k(err_k),   w_ji = mean_k(err_k).
// After smoothing, every crowdsourced edge is bidirectional with positive
// weights, so the smoothed graph of a *connected* task graph is strongly
// connected — the precondition of Thm 5.1's always-an-HP guarantee.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/truth_discovery.hpp"
#include "graph/preference_graph.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// How the per-worker error mass err_k is obtained from sigma_k.
enum class SmoothingMode {
  /// err_k = E|N(0, sigma_k^2)| = sigma_k * sqrt(2/pi). Deterministic;
  /// the library default.
  ExpectedError,
  /// err_k = |draw from N(0, sigma_k^2)|, the paper's literal description.
  /// Needs an Rng.
  SampledError,
};

struct SmoothingConfig {
  SmoothingMode mode = SmoothingMode::ExpectedError;
  /// Smoothed reverse mass is clamped into [min_mass, max_mass]: the floor
  /// keeps the reverse edge present even for perfect workers (q_k = 1 gives
  /// sigma_k = 0), the ceiling keeps the forward direction preferred.
  double min_mass = 1e-3;
  double max_mass = 0.49;
};

/// Per-run smoothing diagnostics.
struct SmoothingStats {
  std::size_t one_edges_smoothed = 0;
  std::size_t in_nodes_before = 0;
  std::size_t out_nodes_before = 0;
  bool strongly_connected_after = false;
};

/// Applies Step 2 to the Step-1 output. `truths` identifies which task each
/// 1-edge came from so the right workers' qualities are consulted;
/// `assignment_workers[t]` lists the workers of truths[t]'s task.
/// `rng` may be null for SmoothingMode::ExpectedError.
/// Returns the smoothed graph (the paper's G~_P).
PreferenceGraph smooth_preferences(
    const PreferenceGraph& graph, const TruthDiscoveryResult& step1,
    std::span<const std::vector<WorkerId>> assignment_workers,
    const SmoothingConfig& config, Rng* rng, SmoothingStats* stats = nullptr);

/// sigma_k = -log(q_k). The quality is clamped into [1e-9, 1] first so the
/// result is finite and non-negative even for degenerate q_k.
double worker_sigma_from_quality(double quality);

}  // namespace crowdrank
