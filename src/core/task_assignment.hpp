// Task assignment (paper §IV).
//
// Generates the l pairwise-comparison tasks as a task graph that is
//  * budget-conscious: exactly l edges,
//  * fair (Def 4.1 / Thm 4.1): every vertex has (near-)identical degree, so
//    every object has the same probability 2/3^d of ending up an in-/out-
//    node of the preference graph (Eq. 2), and
//  * of high HP-likelihood (Thm 4.4): the regular degree 2l/n maximizes the
//    lower bound Pr_l on the closure containing a Hamiltonian path.
//
// Algorithm 1: seed the graph with a random Hamiltonian path (which also
// guarantees connectivity, a prerequisite for smoothing to yield a strongly
// connected graph), then top vertices up to their target degree with random
// partners. When 2l is not divisible by n the surplus is spread by giving
// 2l mod n randomly chosen vertices one extra unit of degree — the closest
// achievable approximation of d_min = d_max = 2l/n.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/task_graph.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Diagnostics reported alongside a generated task graph.
struct TaskAssignmentStats {
  std::size_t edge_count = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  bool fair = false;             ///< max_degree - min_degree <= 1
  bool strictly_regular = false; ///< all degrees equal (Thm 4.1 exactly)
  double hp_likelihood_lower_bound = 0.0;  ///< Pr_l of Thm 4.4
  std::size_t repair_operations = 0;  ///< edge swaps needed to finish
};

/// Probability that a degree-d vertex is an in- OR out-node of a uniformly
/// random preference-graph instance of the task graph (Eq. 2): 2 / 3^d.
double io_node_probability(std::size_t degree);

/// The Thm 4.4 lower bound Pr_l on the probability that the closure of any
/// preference instance has at most one in-node and at most one out-node:
/// (1 - 2/3^dmin)^n * [1 + 2n/(3^dmax - 2) + n(n-1) / (2 (3^dmax - 2)^2)].
double hp_likelihood_lower_bound(std::size_t n, std::size_t d_min,
                                 std::size_t d_max);

/// Result of HIT generation: the graph plus its fairness diagnostics.
struct TaskAssignment {
  TaskGraph graph;
  TaskAssignmentStats stats;
};

/// Algorithm 1 (HITs generation). Requires n >= 2 and
/// n-1 <= num_edges <= C(n,2). Throws crowdrank::Error when the degree
/// targets cannot be met (does not happen for valid inputs; the internal
/// swap-repair resolves greedy dead ends).
TaskAssignment generate_task_assignment(std::size_t n, std::size_t num_edges,
                                        Rng& rng);

/// Baseline assignment for the ablation bench: num_edges edges sampled
/// uniformly from all C(n,2) pairs with no fairness control. May be
/// disconnected and irregular — that is the point.
TaskAssignment generate_random_assignment(std::size_t n,
                                          std::size_t num_edges, Rng& rng);

/// All-pairs assignment (selection ratio 1): the paper's baseline setting.
TaskAssignment generate_all_pairs_assignment(std::size_t n);

}  // namespace crowdrank
