// Confidence annotation of an aggregated ranking.
//
// A full ranking hides how sure the evidence is about each boundary: the
// closure weight w(a, b) of consecutive objects a, b is exactly the
// aggregated belief that the boundary is ordered correctly, so (w - 0.5)
// is its margin. Requesters use this to (a) report per-position error
// bars, (b) detect "effectively tied" runs that a downstream consumer
// should treat as unordered, and (c) decide where a second crowdsourcing
// round would help (core/two_round.hpp targets exactly the low-margin
// pairs).
#pragma once

#include <cstddef>
#include <vector>

#include "metrics/ranking.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Per-boundary confidence of a ranking under a pair-normalized closure.
///
/// Calibration note: with the default Sum path-aggregation the closure is
/// deliberately compressed toward 0.5 (that flattening is what aligns the
/// Step-4 objective with the global order), so boundary beliefs are
/// *conservative* and meaningful relative to one another rather than as
/// absolute probabilities — compare boundaries and rank them; do not read
/// 0.54 as "54% sure".
struct RankingConfidence {
  /// boundary_belief[p] = closure weight of ranking[p] over ranking[p+1],
  /// in [0, 1]; size n-1. Values near 0.5 are coin flips, near 1 solid.
  std::vector<double> boundary_belief;
  double min_belief = 1.0;
  double mean_belief = 1.0;
  /// Position of the weakest boundary (argmin), 0-based.
  std::size_t weakest_boundary = 0;
  /// Geometric-mean per-edge belief = Pr[path]^(1/(n-1)); a scale-free
  /// summary of how much the closure likes this ranking.
  double per_edge_geometric_mean = 1.0;
};

/// Computes the boundary profile. Requires a square closure matching the
/// ranking's size with n >= 2.
RankingConfidence ranking_confidence(const Matrix& closure,
                                     const Ranking& ranking);

/// Splits the ranking into maximal consecutive groups whose internal
/// boundaries all have belief below `tie_threshold` (default idea: 0.55
/// means "the crowd cannot really order these"). Every object appears in
/// exactly one group, groups are in ranking order, and a group of size 1
/// is a confidently-separated object.
std::vector<std::vector<VertexId>> effectively_tied_groups(
    const Matrix& closure, const Ranking& ranking, double tie_threshold);

}  // namespace crowdrank
