// Step 1 — truth discovery of direct pairwise comparisons (paper §V-A).
//
// Jointly estimates, from the raw vote batch,
//  * the true preference x_ij in [0,1] of every crowdsourced task (the
//    probability that O_i < O_j), and
//  * the quality q_k in [0,1] of every worker,
// by CRH-style alternation: truths are quality-weighted vote averages
// (Eq. 4); a worker's quality is proportional to
// chi2(alpha/2, |T_k|) / sum_over_their_tasks (x^k - x_hat)^2 (Eq. 5),
// max-normalized into [0,1]. Iterates until both estimate vectors move less
// than `tolerance` or `max_iterations` is hit — the paper reports
// convergence within ~10 iterations, which bench/truth_convergence checks.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/vote.hpp"
#include "crowd/worker.hpp"
#include "graph/preference_graph.hpp"
#include "graph/types.hpp"

namespace crowdrank {

/// Tunables for the iterative truth-discovery loop.
struct TruthDiscoveryConfig {
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;   ///< max |change| in any x or q to stop
  double alpha = 0.05;       ///< chi-squared confidence parameter (Eq. 5)
  /// Ablation switch: when false, the Eq. 4/5 alternation is skipped —
  /// every worker keeps weight 1 (plain averaging, i.e. soft majority
  /// voting) and only the calibrated qualities are still computed for
  /// Step 2. bench/ablation_assignment-style studies use this to price
  /// the paper's truth-discovery step in isolation.
  bool use_quality_weighting = true;
  /// Per-answer floor added to a worker's squared deviation before
  /// inversion (total floor = deviation_floor * |T_k|). Scaling by the task
  /// count keeps Eq. 5's chi2(|T_k|) / deviation ratio comparable across
  /// workers with different workloads: a flat floor would hand workers with
  /// few tasks a spuriously tiny quality whenever everyone is near-perfect,
  /// and Step 2 would then smooth unanimous edges into coin flips.
  double deviation_floor = 1e-4;
};

/// Estimated truth of one crowdsourced comparison task.
struct TaskTruth {
  Edge task;       ///< canonical pair (first < second)
  double x = 0.5;  ///< P(O_first < O_second) in [0, 1]
  std::size_t vote_count = 0;
};

/// Output of Step 1.
struct TruthDiscoveryResult {
  std::vector<TaskTruth> truths;  ///< one entry per unique task
  /// Calibrated worker quality q_k in [0,1]: q_k = exp(-sigma_hat_k), where
  /// sigma_hat_k is the worker's empirical root-mean-square deviation from
  /// the discovered truths. This inverts the paper's own sigma_k =
  /// -log(q_k) convention (§V-B), so Step 2 recovers exactly the error
  /// scale the data exhibits. (Eq. 5's weights are only defined up to a
  /// proportionality constant — usable for the iteration below, but not as
  /// absolute probabilities.)
  std::vector<double> worker_quality;
  /// Raw Eq.-5 iteration weights, max-normalized into [0,1]; exposed for
  /// diagnostics and the ablation benches.
  std::vector<double> worker_weight;
  std::size_t iterations = 0;
  bool converged = false;

  /// Builds the preference graph G_P from the estimated truths: for each
  /// task (i, j) with truth x, edge i->j gets weight x and j->i gets 1-x
  /// (a weight of 0 means the edge is absent, so unanimous tasks produce
  /// exactly the paper's 1-edges).
  PreferenceGraph to_preference_graph(std::size_t n) const;
};

/// Runs Step 1. `worker_count` sizes the quality vector (workers with no
/// votes keep the neutral prior quality 1 but influence nothing).
/// Throws when `votes` is empty or references out-of-range ids.
TruthDiscoveryResult discover_truth(const VoteBatch& votes,
                                    std::size_t object_count,
                                    std::size_t worker_count,
                                    const TruthDiscoveryConfig& config = {});

/// Plain majority voting over the same vote batch (every worker weight 1,
/// single pass). The paper's §I strawman; used by baselines and ablations.
std::vector<TaskTruth> majority_vote_truth(const VoteBatch& votes,
                                           std::size_t object_count);

}  // namespace crowdrank
