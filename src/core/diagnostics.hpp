// Rankability diagnostics — "will this vote batch aggregate cleanly, and
// if not, why?"
//
// A requester holding a fresh AMT export wants to know, before trusting
// any ranking: how much of the pair space was covered, how contested the
// answers are, whether the evidence graph determines a full order (one
// giant strongly connected component after smoothing / a near-linear
// condensation before), and which objects are starved of comparisons.
// This report packages those signals from the Step-1 output and the raw
// batch; the CLI exposes it as `crowdrank diagnose`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/truth_discovery.hpp"
#include "crowd/vote.hpp"
#include "graph/scc.hpp"

namespace crowdrank {

/// Everything the report measures.
struct RankabilityReport {
  std::size_t object_count = 0;
  std::size_t worker_count = 0;      ///< workers who actually voted
  std::size_t vote_count = 0;
  std::size_t unique_tasks = 0;
  double pair_coverage = 0.0;        ///< unique tasks / C(n,2)
  double mean_votes_per_task = 0.0;
  std::size_t min_votes_per_task = 0;

  std::size_t objects_never_compared = 0;  ///< degree-0 objects
  std::size_t min_object_degree = 0;
  std::size_t max_object_degree = 0;

  std::size_t unanimous_tasks = 0;   ///< x == 0 or 1 (the 1-edges)
  std::size_t contested_tasks = 0;   ///< 0.25 < x < 0.75
  double mean_worker_quality = 0.0;  ///< calibrated q_k mean (voters only)
  double min_worker_quality = 1.0;

  /// Structure of the *direct* preference graph (before smoothing).
  std::size_t scc_count = 0;
  std::size_t largest_scc = 0;
  std::size_t in_nodes = 0;
  std::size_t out_nodes = 0;
  bool direct_graph_connected = false;  ///< underlying undirected coverage

  /// Coarse verdict + human-readable findings.
  bool rankable = false;
  std::vector<std::string> findings;
};

/// Analyzes a batch. Runs Step-1 truth discovery internally (cheap) to get
/// calibrated qualities and the direct preference graph.
RankabilityReport diagnose_votes(const VoteBatch& votes,
                                 std::size_t object_count,
                                 std::size_t worker_count,
                                 const TruthDiscoveryConfig& config = {});

/// Renders the report as the CLI's human-readable block.
std::string format_report(const RankabilityReport& report);

}  // namespace crowdrank
