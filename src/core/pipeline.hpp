// End-to-end engine: the paper's full two-step strategy.
//
// InferenceEngine runs result inference (Steps 1-4, §V) over a collected
// vote batch; run_experiment() additionally drives the front half — task
// assignment (§IV), HIT construction, and a simulated non-interactive
// crowdsourcing round — which is what the benches and examples exercise.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/propagation.hpp"
#include "core/saps.hpp"
#include "core/smoothing.hpp"
#include "core/task_assignment.hpp"
#include "core/taps.hpp"
#include "core/truth_discovery.hpp"
#include "crowd/budget.hpp"
#include "crowd/hit.hpp"
#include "crowd/simulator.hpp"
#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"
#include "util/timer.hpp"

namespace crowdrank {

namespace trace {
class TraceSink;
}  // namespace trace

/// One structured configuration problem found by a `validate()` pass:
/// the offending field (dotted path, e.g. "saps.cooling_rate") and a
/// human-readable explanation. Collected into a list so a caller sees
/// every problem at once instead of fixing them one assert at a time.
struct ConfigError {
  std::string field;
  std::string message;
};

/// "field: message" rendering used by CLI/service error output.
std::string format_config_errors(const std::vector<ConfigError>& errors);

/// Which Step-4 search produces the final ranking.
enum class RankSearchMethod {
  Saps,      ///< simulated annealing (default; any n)
  Taps,      ///< threshold-based exact search (small n)
  HeldKarp,  ///< bitmask-DP exact search (n <= 20; test oracle)
};

/// Full configuration of the result-inference pipeline.
struct InferenceConfig {
  TruthDiscoveryConfig truth_discovery;
  SmoothingConfig smoothing;
  /// The engine defaults to SpectralLimit propagation: same O(n^3 log n)
  /// cost class as the bounded-walk default but covers pairs up to graph
  /// distance ~n, which matters on sparse (near-spanning-tree) budgets.
  /// Set mode = PropagationMode::BoundedWalks for the paper-literal sum.
  PropagationConfig propagation{.mode = PropagationMode::SpectralLimit};
  RankSearchMethod search = RankSearchMethod::Saps;
  SapsConfig saps;
  TapsConfig taps;
  /// When non-null, the engine installs this sink (trace::ScopedSink) for
  /// the duration of infer(): per-step spans, convergence series, and the
  /// pool/kernel counters all land here. Null (the default) keeps the
  /// entire tracing layer at zero overhead. The sink is observe-only —
  /// instrumentation never touches RNG state, so traced and untraced runs
  /// produce bitwise-identical results.
  trace::TraceSink* trace = nullptr;
  /// Runs the analysis/invariants.hpp stage validators between pipeline
  /// steps (Step-1 truth/quality ranges, smoothing unanimity semantics,
  /// closure pair-normalization, ranking permutation). ORed with the
  /// process-wide CROWDRANK_CHECK_INVARIANTS switch; violations throw
  /// analysis::InvariantError. Validation only reads stage output, so an
  /// enabled run is bitwise-identical to a disabled one.
  bool check_invariants = false;
  /// Cooperative stage control (core/checkpoint.hpp). When non-null the
  /// engine calls `control->checkpoint()` before every stage and once with
  /// PipelineStage::Done after Step 4; the controller may throw to abort
  /// the run between stages. Null (the default) costs one branch per
  /// stage. The serving layer uses this for deadlines, cancellation, and
  /// fault injection.
  StageControl* control = nullptr;

  /// Validates every tunable and returns all problems found (empty =
  /// valid). Used by the CLI and by `service::RankingService::submit`, so
  /// bad configs surface as structured errors instead of asserts or
  /// silent nonsense deep inside a stage.
  std::vector<ConfigError> validate() const;
};

/// Everything the pipeline learned, with per-step timings (Fig. 4's
/// breakdown uses phases "step1_truth_discovery", "step2_smoothing",
/// "step3_propagation", "step4_find_best_ranking").
struct InferenceResult {
  Ranking ranking;                ///< the aggregated full ranking
  double log_probability = 0.0;   ///< log Pr of the chosen Hamiltonian path
  TruthDiscoveryResult step1;
  SmoothingStats step2;
  PropagationStats step3;
  PhaseTimer timings;
  std::size_t one_edge_count = 0;  ///< 1-edges before smoothing
  /// Step 3's pair-normalized closure (n x n). Downstream consumers build
  /// on it: core/confidence.hpp annotates the ranking's boundaries,
  /// core/two_round.hpp targets its most uncertain pairs.
  Matrix closure;
};

/// Runs Steps 1-4 over a vote batch.
///  * `object_count` is n; `worker_count` sizes the quality vector.
///  * `task_workers(t)` must list the workers assigned to truths[t]'s task;
///    run_experiment wires this from the HitAssignment automatically.
/// `rng` drives SAPS and (if configured) sampled smoothing.
class InferenceEngine {
 public:
  explicit InferenceEngine(InferenceConfig config = {});

  const InferenceConfig& config() const { return config_; }

  /// Full inference over a collected batch. The assignment supplies the
  /// per-task worker lists needed by smoothing.
  InferenceResult infer(const VoteBatch& votes, std::size_t object_count,
                        std::size_t worker_count,
                        const HitAssignment& assignment, Rng& rng) const;

  /// Assignment-free variant: the workers consulted by smoothing for each
  /// task are exactly those who voted on it. Use this when only the raw
  /// vote export exists (e.g. an AMT result file through the CLI) — for
  /// a well-formed one-round batch it is equivalent to the assignment
  /// overload, since every assigned worker answers every task of their
  /// HIT.
  InferenceResult infer(const VoteBatch& votes, std::size_t object_count,
                        std::size_t worker_count, Rng& rng) const;

 private:
  InferenceResult infer_impl(
      const VoteBatch& votes, std::size_t object_count,
      std::size_t worker_count,
      const std::map<Edge, std::vector<WorkerId>>& task_workers,
      Rng& rng) const;

  InferenceConfig config_;
};

/// One simulated non-interactive experiment end to end.
struct ExperimentConfig {
  std::size_t object_count = 100;           ///< n
  double selection_ratio = 0.1;             ///< r: l = r * C(n,2)
  std::size_t worker_pool_size = 30;        ///< m
  std::size_t workers_per_task = 3;         ///< w (replication)
  std::size_t comparisons_per_hit = 5;      ///< c
  double reward_per_comparison = 0.025;     ///< the paper's AMT rate
  WorkerPoolConfig worker_quality;
  InferenceConfig inference;
  std::uint64_t seed = 42;

  /// Validates the experiment-level knobs (object count, budget ratio,
  /// replication vs pool size, HIT sizing, reward) plus the nested
  /// `inference` config. Empty result = valid. `run_experiment` throws a
  /// crowdrank::Error listing every problem when this is non-empty.
  std::vector<ConfigError> validate() const;
};

struct ExperimentResult {
  Ranking truth;
  InferenceResult inference;
  TaskAssignmentStats assignment_stats;
  double accuracy = 0.0;  ///< 1 - normalized Kendall tau vs ground truth
  std::size_t unique_tasks = 0;
  double total_cost = 0.0;
};

/// Generates ground truth + workers + assignment + votes, runs inference,
/// and scores the result — the full loop of §VI's simulated setting.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace crowdrank
