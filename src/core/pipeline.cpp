#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "analysis/invariants.hpp"
#include "graph/hamiltonian.hpp"
#include "metrics/kendall.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {

const char* stage_name(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::Validation:
      return "validation";
    case PipelineStage::Hardening:
      return "hardening";
    case PipelineStage::TruthDiscovery:
      return "truth_discovery";
    case PipelineStage::Smoothing:
      return "smoothing";
    case PipelineStage::Propagation:
      return "propagation";
    case PipelineStage::RankSearch:
      return "rank_search";
    case PipelineStage::Done:
      return "done";
  }
  return "unknown";
}

std::optional<PipelineStage> stage_from_name(std::string_view name) {
  for (const PipelineStage stage :
       {PipelineStage::Validation, PipelineStage::Hardening,
        PipelineStage::TruthDiscovery, PipelineStage::Smoothing,
        PipelineStage::Propagation, PipelineStage::RankSearch,
        PipelineStage::Done}) {
    if (name == stage_name(stage)) {
      return stage;
    }
  }
  return std::nullopt;
}

std::string format_config_errors(const std::vector<ConfigError>& errors) {
  std::string out;
  for (const ConfigError& e : errors) {
    if (!out.empty()) {
      out += "; ";
    }
    out += e.field;
    out += ": ";
    out += e.message;
  }
  return out;
}

namespace {

void check(std::vector<ConfigError>& errors, bool ok, const char* field,
           const char* message) {
  if (!ok) {
    errors.push_back({field, message});
  }
}

}  // namespace

std::vector<ConfigError> InferenceConfig::validate() const {
  std::vector<ConfigError> errors;
  check(errors, truth_discovery.max_iterations >= 1,
        "truth_discovery.max_iterations", "must be at least 1");
  check(errors, truth_discovery.tolerance > 0.0,
        "truth_discovery.tolerance", "must be positive");
  check(errors,
        truth_discovery.alpha > 0.0 && truth_discovery.alpha < 1.0,
        "truth_discovery.alpha", "must lie in (0, 1)");
  check(errors, truth_discovery.deviation_floor >= 0.0,
        "truth_discovery.deviation_floor", "must be non-negative");
  check(errors, smoothing.min_mass > 0.0, "smoothing.min_mass",
        "must be positive (a zero keeps 1-edges unidirectional)");
  check(errors, smoothing.min_mass <= smoothing.max_mass,
        "smoothing.min_mass", "must not exceed smoothing.max_mass");
  check(errors, smoothing.max_mass < 0.5, "smoothing.max_mass",
        "must stay below 0.5 so the forward direction stays preferred");
  check(errors, propagation.max_length >= 1, "propagation.max_length",
        "must be at least 1");
  check(errors, propagation.alpha >= 0.0 && propagation.alpha <= 1.0,
        "propagation.alpha", "must lie in [0, 1]");
  check(errors,
        propagation.completeness_floor > 0.0 &&
            propagation.completeness_floor < 0.5,
        "propagation.completeness_floor", "must lie in (0, 0.5)");
  check(errors,
        propagation.fill_threshold >= 0.0 &&
            propagation.fill_threshold <= 1.0,
        "propagation.fill_threshold", "must lie in [0, 1]");
  check(errors,
        propagation.spectral_horizon == 0 ||
            propagation.spectral_horizon >= 2,
        "propagation.spectral_horizon", "must be 0 (auto) or at least 2");
  check(errors, saps.iterations >= 1, "saps.iterations",
        "must be at least 1");
  check(errors, saps.initial_temperature > 0.0, "saps.initial_temperature",
        "must be positive");
  check(errors,
        saps.cooling_rate > 0.0 && saps.cooling_rate <= 1.0,
        "saps.cooling_rate", "must lie in (0, 1]");
  check(errors, saps.paper_mode || saps.restarts >= 1, "saps.restarts",
        "must be at least 1 unless paper_mode restarts from every vertex");
  check(errors, saps.use_rotate || saps.use_reverse || saps.use_swap,
        "saps.moves", "at least one move type must be enabled");
  check(errors, taps.max_expansions >= 1, "taps.max_expansions",
        "must be at least 1");
  check(errors, taps.tie_tolerance >= 0.0, "taps.tie_tolerance",
        "must be non-negative");
  return errors;
}

std::vector<ConfigError> ExperimentConfig::validate() const {
  std::vector<ConfigError> errors = inference.validate();
  check(errors, object_count >= 2, "object_count",
        "need at least two objects to rank");
  check(errors, selection_ratio > 0.0, "selection_ratio",
        "must be positive");
  check(errors, selection_ratio <= 1.0, "selection_ratio",
        "must not exceed 1: the budget cannot buy more than C(n,2) "
        "distinct comparisons");
  check(errors, workers_per_task >= 1, "workers_per_task",
        "replication w must be at least 1");
  check(errors, workers_per_task <= worker_pool_size, "workers_per_task",
        "replication w must not exceed the pool size m");
  check(errors, comparisons_per_hit >= 1, "comparisons_per_hit",
        "must be at least 1");
  check(errors, reward_per_comparison > 0.0, "reward_per_comparison",
        "must be positive");
  return errors;
}

InferenceEngine::InferenceEngine(InferenceConfig config)
    : config_(std::move(config)) {}

InferenceResult InferenceEngine::infer(const VoteBatch& votes,
                                       std::size_t object_count,
                                       std::size_t worker_count,
                                       const HitAssignment& assignment,
                                       Rng& rng) const {
  std::map<Edge, std::vector<WorkerId>> task_workers;
  for (std::size_t t = 0; t < assignment.tasks().size(); ++t) {
    const Edge& e = assignment.tasks()[t];
    task_workers.emplace(Edge::canonical(e.first, e.second),
                         assignment.workers_for_task(t));
  }
  return infer_impl(votes, object_count, worker_count, task_workers, rng);
}

InferenceResult InferenceEngine::infer(const VoteBatch& votes,
                                       std::size_t object_count,
                                       std::size_t worker_count,
                                       Rng& rng) const {
  // Derive each task's worker list from the batch itself.
  std::map<Edge, std::vector<WorkerId>> task_workers;
  for (const Vote& v : votes) {
    auto& workers = task_workers[Edge::canonical(v.i, v.j)];
    if (std::find(workers.begin(), workers.end(), v.worker) ==
        workers.end()) {
      workers.push_back(v.worker);
    }
  }
  return infer_impl(votes, object_count, worker_count, task_workers, rng);
}

InferenceResult InferenceEngine::infer_impl(
    const VoteBatch& votes, std::size_t object_count,
    std::size_t worker_count,
    const std::map<Edge, std::vector<WorkerId>>& assignment_workers,
    Rng& rng) const {
  InferenceResult result{Ranking::identity(object_count), 0.0, {}, {}, {},
                         {}, 0, {}};

  // Install the configured sink (if any) for the whole run; instrumented
  // code below and in the step implementations picks it up via
  // trace::sink(). Restored on every exit path.
  trace::ScopedSink scoped_sink(config_.trace);
  // Stage validators (analysis/invariants.hpp) run between steps when asked
  // to — one boolean test per stage otherwise. They observe, never mutate,
  // so validated and unvalidated runs are bitwise-identical.
  const bool validate =
      config_.check_invariants || analysis::invariant_checks_enabled();
  trace::Span root("infer");
  if (root.active()) {
    root.set_attr("check_invariants", validate);
    root.set_attr("objects", object_count);
    root.set_attr("workers", worker_count);
    root.set_attr("votes", votes.size());
    root.set_attr("threads", thread_count());
    root.set_attr("search", config_.search == RankSearchMethod::Saps ? "saps"
                            : config_.search == RankSearchMethod::Taps
                                ? "taps"
                                : "held_karp");
  }

  // Cooperative stage checkpoints: fire before every stage (and once with
  // Done) so a controller can deadline/cancel the run between stages. The
  // snapshot pointers fill in as stages complete.
  StageSnapshot snapshot;
  const auto checkpoint = [&](PipelineStage next) {
    if (config_.control != nullptr) {
      snapshot.next = next;
      config_.control->checkpoint(snapshot);
    }
  };

  // Step 1: truth discovery of the direct pairwise preferences.
  checkpoint(PipelineStage::TruthDiscovery);
  TruthDiscoveryResult step1;
  {
    trace::StepScope phase(result.timings, "step1_truth_discovery");
    step1 = discover_truth(votes, object_count, worker_count,
                           config_.truth_discovery);
    if (phase.span().active()) {
      phase.span().set_attr("iterations", step1.iterations);
      phase.span().set_attr("converged", step1.converged);
      phase.span().set_attr("tasks", step1.truths.size());
    }
  }
  if (validate) {
    analysis::check_truth_discovery(step1, object_count, worker_count);
  }
  snapshot.truth = &step1;
  checkpoint(PipelineStage::Smoothing);

  // Wire each discovered task to its workers, in truths[] order (smoothing
  // consults those workers' qualities).
  std::vector<std::vector<WorkerId>> task_workers;
  task_workers.reserve(step1.truths.size());
  for (const TaskTruth& t : step1.truths) {
    const auto it = assignment_workers.find(t.task);
    CR_EXPECTS(it != assignment_workers.end(),
               "votes reference a task outside the assignment");
    task_workers.push_back(it->second);
  }

  // Step 2: preference smoothing of the 1-edges. `direct` outlives the
  // timed scope so the validators can diff it against the smoothed graph.
  PreferenceGraph smoothed(object_count);
  PreferenceGraph direct(object_count);
  {
    trace::StepScope phase(result.timings, "step2_smoothing");
    direct = step1.to_preference_graph(object_count);
    result.one_edge_count = direct.one_edges().size();
    smoothed = smooth_preferences(direct, step1, task_workers,
                                  config_.smoothing, &rng, &result.step2);
    if (phase.span().active()) {
      phase.span().set_attr("one_edges", result.one_edge_count);
      phase.span().set_attr("one_edges_smoothed",
                            result.step2.one_edges_smoothed);
      phase.span().set_attr("strongly_connected_after",
                            result.step2.strongly_connected_after);
    }
  }
  if (validate) {
    analysis::check_preference_graph(direct);
    analysis::check_preference_graph(smoothed);
    analysis::check_smoothing(direct, smoothed, config_.smoothing);
  }
  snapshot.smoothed = &smoothed;
  checkpoint(PipelineStage::Propagation);

  // Step 3: transitive propagation into a complete, normalized closure.
  Matrix closure;
  {
    trace::StepScope phase(result.timings, "step3_propagation");
    closure = propagate_preferences(smoothed, config_.propagation,
                                    &result.step3);
    if (phase.span().active()) {
      phase.span().set_attr("pairs_without_evidence",
                            result.step3.pairs_without_evidence);
      phase.span().set_attr("complete", result.step3.complete);
      if (config_.propagation.mode == PropagationMode::SpectralLimit) {
        phase.span().set_attr("fill_ratio", result.step3.fill_ratio);
        phase.span().set_attr("densify_step", result.step3.densify_step);
        phase.span().set_attr("doubling_steps",
                              result.step3.doubling_steps);
        phase.span().set_attr("sparse_flops", result.step3.sparse_flops);
      }
    }
  }
  if (validate) {
    analysis::check_closure(closure);
  }
  snapshot.closure = &closure;
  checkpoint(PipelineStage::RankSearch);

  // Step 4: find the best ranking (max-probability Hamiltonian path).
  {
    trace::StepScope phase(result.timings, "step4_find_best_ranking");
    switch (config_.search) {
      case RankSearchMethod::Saps: {
        const SapsResult saps = saps_search(closure, config_.saps, rng);
        result.log_probability = -saps.log_cost;
        result.ranking = Ranking(saps.best_path);
        break;
      }
      case RankSearchMethod::Taps: {
        const TapsResult taps = taps_search(closure, config_.taps);
        result.log_probability = taps.log_probability;
        result.ranking = Ranking(taps.best_paths.front());
        break;
      }
      case RankSearchMethod::HeldKarp: {
        const auto path = max_probability_hamiltonian_path(closure);
        CR_ENSURES(path.has_value(),
                   "complete closure must contain a Hamiltonian path");
        result.log_probability = -path_log_cost(closure, *path);
        result.ranking = Ranking(*path);
        break;
      }
    }
    if (phase.span().active()) {
      phase.span().set_attr("log_probability", result.log_probability);
    }
  }
  if (validate) {
    analysis::check_ranking(result.ranking, object_count);
  }
  checkpoint(PipelineStage::Done);

  if (root.active()) {
    root.set_attr("log_probability", result.log_probability);
  }
  result.step1 = std::move(step1);
  result.closure = std::move(closure);
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (const auto errors = config.validate(); !errors.empty()) {
    throw Error("invalid experiment config: " +
                format_config_errors(errors));
  }
  Rng rng(config.seed);

  // Hidden ground truth: a uniformly random permutation.
  const Ranking truth(
      [&] {
        auto perm = rng.permutation(config.object_count);
        return std::vector<VertexId>(perm.begin(), perm.end());
      }());

  // Budget -> number of unique comparisons l.
  const BudgetModel budget = BudgetModel::for_selection_ratio(
      config.object_count, config.selection_ratio,
      config.reward_per_comparison, config.workers_per_task);
  const std::size_t l = budget.unique_task_count();

  // Task assignment (§IV) and HIT construction (§II).
  TaskAssignment assignment_result =
      generate_task_assignment(config.object_count, l, rng);
  if (config.inference.check_invariants ||
      analysis::invariant_checks_enabled()) {
    analysis::check_task_graph(assignment_result.graph, l);
  }
  const std::vector<Edge> tasks(assignment_result.graph.edges().begin(),
                                assignment_result.graph.edges().end());
  const HitConfig hit_config{config.comparisons_per_hit,
                             config.workers_per_task};
  const HitAssignment assignment(tasks, hit_config, config.worker_pool_size,
                                 rng);

  // One non-interactive crowdsourcing round.
  const auto workers =
      sample_worker_pool(config.worker_pool_size, config.worker_quality, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(assignment, rng);

  // Result inference (§V).
  const InferenceEngine engine(config.inference);
  InferenceResult inference =
      engine.infer(votes, config.object_count, config.worker_pool_size,
                   assignment, rng);

  ExperimentResult result{truth, std::move(inference),
                          assignment_result.stats, 0.0, l,
                          budget.total_cost()};
  result.accuracy = ranking_accuracy(truth, result.inference.ranking);
  return result;
}

}  // namespace crowdrank
