#include "core/saps.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/saps_kernel.hpp"
#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {

void saps_rotate(Path& path, std::size_t first, std::size_t middle,
                 std::size_t last) {
  CR_EXPECTS(first <= middle && middle <= last && last < path.size(),
             "rotate indices must satisfy first <= middle <= last < n");
  std::rotate(path.begin() + static_cast<std::ptrdiff_t>(first),
              path.begin() + static_cast<std::ptrdiff_t>(middle),
              path.begin() + static_cast<std::ptrdiff_t>(last) + 1);
}

void saps_reverse(Path& path, std::size_t first, std::size_t last) {
  CR_EXPECTS(first <= last && last < path.size(),
             "reverse indices must satisfy first <= last < n");
  std::reverse(path.begin() + static_cast<std::ptrdiff_t>(first),
               path.begin() + static_cast<std::ptrdiff_t>(last) + 1);
}

void saps_swap(Path& path, std::size_t a, std::size_t b) {
  CR_EXPECTS(a < path.size() && b < path.size(),
             "swap indices must be < n");
  std::swap(path[a], path[b]);
}

namespace {

/// Edge cost c(u -> v) = -log w(u, v), with the safe_log floor. Uncached
/// formulation, kept as the reference the cost-cache kernels are pinned
/// against (tests/core/test_saps_kernel.cpp); the annealing loop itself
/// reads the SapsCostCache.
double edge_cost(const Matrix& w, VertexId u, VertexId v) {
  return -math::safe_log(w(u, v));
}

}  // namespace

double saps_rotate_delta(const Matrix& w, const Path& path,
                         std::size_t first, std::size_t middle,
                         std::size_t last) {
  CR_EXPECTS(first <= middle && middle <= last && last < path.size(),
             "rotate indices must satisfy first <= middle <= last < n");
  if (middle == first || middle == last + 1) {
    return 0.0;  // rotation is a no-op
  }
  // After the rotation the range becomes B = path[middle..last] followed by
  // A = path[first..middle-1]; edges internal to A and B are untouched.
  double delta = 0.0;
  // Removed: in-edge to A's head, the A->B junction, B's out-edge.
  if (first > 0) {
    delta -= edge_cost(w, path[first - 1], path[first]);
  }
  delta -= edge_cost(w, path[middle - 1], path[middle]);
  if (last + 1 < path.size()) {
    delta -= edge_cost(w, path[last], path[last + 1]);
  }
  // Added: in-edge to B's head, the B->A junction, A's out-edge.
  if (first > 0) {
    delta += edge_cost(w, path[first - 1], path[middle]);
  }
  delta += edge_cost(w, path[last], path[first]);
  if (last + 1 < path.size()) {
    delta += edge_cost(w, path[middle - 1], path[last + 1]);
  }
  return delta;
}

double saps_reverse_delta(const Matrix& w, const Path& path,
                          std::size_t first, std::size_t last) {
  CR_EXPECTS(first <= last && last < path.size(),
             "reverse indices must satisfy first <= last < n");
  if (first == last) {
    return 0.0;
  }
  double delta = 0.0;
  // Boundary edges swap endpoints.
  if (first > 0) {
    delta += edge_cost(w, path[first - 1], path[last]) -
             edge_cost(w, path[first - 1], path[first]);
  }
  if (last + 1 < path.size()) {
    delta += edge_cost(w, path[first], path[last + 1]) -
             edge_cost(w, path[last], path[last + 1]);
  }
  // Interior edges flip direction.
  for (std::size_t k = first; k < last; ++k) {
    delta += edge_cost(w, path[k + 1], path[k]) -
             edge_cost(w, path[k], path[k + 1]);
  }
  return delta;
}

double saps_swap_delta(const Matrix& w, const Path& path, std::size_t a,
                       std::size_t b) {
  CR_EXPECTS(a < path.size() && b < path.size(), "swap indices must be < n");
  if (a == b) {
    return 0.0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  const std::size_t n = path.size();
  double delta = 0.0;
  if (b == a + 1) {
    // Adjacent swap: three affected edges.
    if (a > 0) {
      delta += edge_cost(w, path[a - 1], path[b]) -
               edge_cost(w, path[a - 1], path[a]);
    }
    delta += edge_cost(w, path[b], path[a]) - edge_cost(w, path[a], path[b]);
    if (b + 1 < n) {
      delta += edge_cost(w, path[a], path[b + 1]) -
               edge_cost(w, path[b], path[b + 1]);
    }
    return delta;
  }
  // Disjoint neighborhoods: four affected edges.
  if (a > 0) {
    delta += edge_cost(w, path[a - 1], path[b]) -
             edge_cost(w, path[a - 1], path[a]);
  }
  delta += edge_cost(w, path[b], path[a + 1]) -
           edge_cost(w, path[a], path[a + 1]);
  delta += edge_cost(w, path[b - 1], path[a]) -
           edge_cost(w, path[b - 1], path[b]);
  if (b + 1 < n) {
    delta += edge_cost(w, path[a], path[b + 1]) -
             edge_cost(w, path[b], path[b + 1]);
  }
  return delta;
}

namespace {

/// Everything one restart chain produces; restarts write disjoint slots of
/// an outcome vector, and the winner is selected by a deterministic
/// min-reduction afterwards.
struct RestartOutcome {
  Path best_path;
  double log_cost = std::numeric_limits<double>::infinity();
  std::uint64_t moves_proposed = 0;
  std::uint64_t moves_accepted = 0;
};

/// Trace handles resolved once on the calling thread; the sharded metrics
/// registry is safe to push from pool workers.
struct SapsTraceHandles {
  metrics::Series* temperature = nullptr;
  metrics::Series* acceptance = nullptr;
  metrics::Series* best = nullptr;
  std::size_t stride = 1;
};

/// One annealing chain (Algorithm 2 lines 3-11 + Algorithm 3 acceptance),
/// self-contained: it reads only the immutable cost cache and its own Rng
/// stream, so chains run concurrently without sharing any mutable state.
RestartOutcome run_restart(const SapsCostCache& cache,
                           const SapsConfig& config, std::size_t restart,
                           Rng& rng, const SapsTraceHandles& handles) {
  const std::size_t n = cache.size();
  trace::Span restart_span("saps_restart");
  if (restart_span.active()) {
    restart_span.set_attr("restart", restart);
  }

  // Algorithm 3: Metropolis acceptance on d = sum log(1/w).
  const auto accept = [&](double d_cur, double d_next, double temp) {
    if (d_next < d_cur) return true;
    if (temp <= 0.0) return false;
    const double p = std::exp(-(d_next - d_cur) / temp);
    return rng.bernoulli(p);
  };

  RestartOutcome out;
  const VertexId anchor = static_cast<VertexId>(restart % n);
  Path current = saps_initial_path(cache, anchor, config.init_mode,
                                   /*force_anchor=*/restart > 0, rng);
  double d_cur = path_log_cost(cache, current);
  out.log_cost = d_cur;
  out.best_path = current;

  // Windowed acceptance bookkeeping for the trace samples below. The
  // best-cost series tracks this restart's own best (chains no longer see
  // each other's progress mid-flight).
  std::uint64_t window_proposed = 0;
  std::uint64_t window_accepted = 0;
  const double iter_base =
      static_cast<double>(restart) * static_cast<double>(config.iterations);

  double temp = config.initial_temperature;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Algorithm 2 lines 5-11: propose each enabled move in turn. Each
    // proposal is scored by its incremental delta (O(1) for rotate and
    // swap, O(segment) for reverse) and applied only on acceptance.
    for (int move = 0; move < 3; ++move) {
      if (move == 0 && !config.use_rotate) continue;
      if (move == 1 && !config.use_reverse) continue;
      if (move == 2 && !config.use_swap) continue;

      double delta = 0.0;
      std::size_t p0 = 0;
      std::size_t p1 = 0;
      std::size_t p2 = 0;
      if (move == 0) {
        // Rotate a random range about a random interior pivot.
        p0 = rng.uniform_index(n);
        p2 = rng.uniform_index(n);
        if (p0 > p2) std::swap(p0, p2);
        p1 = p0 + static_cast<std::size_t>(rng.uniform_index(p2 - p0 + 1));
        delta = saps_rotate_delta(cache, current, p0, p1, p2);
      } else if (move == 1) {
        p0 = rng.uniform_index(n);
        p1 = rng.uniform_index(n);
        if (p0 > p1) std::swap(p0, p1);
        delta = saps_reverse_delta(cache, current, p0, p1);
      } else {
        p0 = rng.uniform_index(n);
        p1 = rng.uniform_index(n - 1);
        if (p1 >= p0) ++p1;
        delta = saps_swap_delta(cache, current, p0, p1);
      }

      ++out.moves_proposed;
      ++window_proposed;
      if (accept(d_cur, d_cur + delta, temp)) {
        if (move == 0) {
          saps_rotate(current, p0, p1, p2);
        } else if (move == 1) {
          saps_reverse(current, p0, p1);
        } else {
          saps_swap(current, p0, p1);
        }
        d_cur += delta;
        ++out.moves_accepted;
        ++window_accepted;
        if (d_cur < out.log_cost) {
          out.log_cost = d_cur;
          out.best_path = current;
        }
      }
    }
    temp *= config.cooling_rate;

    if (handles.temperature != nullptr &&
        (iter + 1) % handles.stride == 0) {
      const double t = iter_base + static_cast<double>(iter + 1);
      trace::push_series(handles.temperature, t, temp);
      trace::push_series(
          handles.acceptance, t,
          window_proposed > 0 ? static_cast<double>(window_accepted) /
                                    static_cast<double>(window_proposed)
                              : 0.0);
      trace::push_series(handles.best, t, out.log_cost);
      window_proposed = 0;
      window_accepted = 0;
    }
  }
  if (restart_span.active()) {
    restart_span.set_attr("best_log_cost", out.log_cost);
  }
  return out;
}

}  // namespace

SapsResult saps_search(const Matrix& closure, const SapsConfig& config,
                       Rng& rng) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  const std::size_t n = closure.rows();
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(config.iterations >= 1, "need at least one iteration");
  CR_EXPECTS(config.initial_temperature > 0.0,
             "initial temperature must be positive");
  CR_EXPECTS(config.cooling_rate > 0.0 && config.cooling_rate <= 1.0,
             "cooling rate must be in (0, 1]");
  CR_EXPECTS(config.restarts >= 1 || config.paper_mode,
             "need at least one restart");
  CR_EXPECTS(config.use_rotate || config.use_reverse || config.use_swap,
             "at least one move type must be enabled");

  const std::size_t restarts = config.paper_mode
                                   ? n
                                   : std::min(config.restarts, n);

  // Materialize the -log w cost matrix once; every delta evaluation below
  // is a handful of loads instead of std::log calls.
  const SapsCostCache cache(closure);

  // One draw from the caller's stream seeds every restart chain: restart r
  // runs on Rng(task_stream_seed(base, r)). The derivation depends only on
  // (caller seed state, restart index) — never on the thread count or the
  // execution schedule — and the caller's Rng advances by exactly one step
  // regardless of how many restarts run, so results are bitwise-identical
  // at 1 vs N threads and across repeated runs.
  const std::uint64_t stream_base = rng();

  // Annealing-schedule trace, sampled every `stride` iterations so even
  // million-iteration runs stay at ~128 points per restart. The stride is
  // derived from the config alone (never the clock), and all observations
  // are reads of existing state — the anneal itself is untouched.
  SapsTraceHandles handles;
  handles.temperature = trace::series("saps.temperature");
  handles.acceptance = trace::series("saps.acceptance_rate");
  handles.best = trace::series("saps.best_log_cost");
  handles.stride = config.iterations > 128 ? config.iterations / 128 : 1;

  // Restart chains fan out across the pool as independent tasks; each
  // writes only its own outcome slot. Inside a nested region (or with
  // CROWDRANK_THREADS=1) this degenerates to the serial restart loop.
  // Tiny searches skip the fan-out entirely: below ~2e6 proposed-move
  // evaluations the pool's wake/park round trip costs more than the work
  // (the per-restart RNG streams make the serial loop bit-identical to
  // the parallel one, so this is a pure scheduling decision).
  constexpr std::uint64_t kSerialMoveLimit = 2'000'000;
  const std::uint64_t total_moves = static_cast<std::uint64_t>(restarts) *
                                    config.iterations * n;
  std::vector<RestartOutcome> outcomes(restarts);
  const auto run_one = [&](std::size_t restart) {
    Rng restart_rng(task_stream_seed(stream_base, restart));
    outcomes[restart] =
        run_restart(cache, config, restart, restart_rng, handles);
  };
  if (total_moves < kSerialMoveLimit) {
    for (std::size_t restart = 0; restart < restarts; ++restart) {
      run_one(restart);
    }
  } else {
    ThreadPool::instance().run(restarts, run_one);
  }

  // Deterministic winner: min-reduction in ascending restart order keyed on
  // (log_cost, restart_index) — strict < keeps the earliest restart on
  // exact ties, independent of which thread finished first.
  SapsResult result;
  std::size_t winner = 0;
  for (std::size_t r = 0; r < restarts; ++r) {
    if (outcomes[r].log_cost < outcomes[winner].log_cost) {
      winner = r;
    }
    result.moves_proposed += outcomes[r].moves_proposed;
    result.moves_accepted += outcomes[r].moves_accepted;
    ++result.restarts_run;
  }
  result.best_path = std::move(outcomes[winner].best_path);

  if (metrics::Counter* c = trace::counter("saps.moves_proposed")) {
    c->add(result.moves_proposed);
    trace::counter("saps.moves_accepted")->add(result.moves_accepted);
    trace::counter("saps.restarts")->add(result.restarts_run);
  }

  // Re-derive the exact cost of the winner: accumulated deltas can drift
  // by float rounding over millions of accepted moves.
  result.log_cost = path_log_cost(cache, result.best_path);
  result.probability = std::exp(-result.log_cost);
  CR_ENSURES(is_permutation_path(result.best_path, n),
             "SAPS produced a non-Hamiltonian path");
  return result;
}

}  // namespace crowdrank
