#include "core/saps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/hamiltonian.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/trace.hpp"

namespace crowdrank {

void saps_rotate(Path& path, std::size_t first, std::size_t middle,
                 std::size_t last) {
  CR_EXPECTS(first <= middle && middle <= last && last < path.size(),
             "rotate indices must satisfy first <= middle <= last < n");
  std::rotate(path.begin() + static_cast<std::ptrdiff_t>(first),
              path.begin() + static_cast<std::ptrdiff_t>(middle),
              path.begin() + static_cast<std::ptrdiff_t>(last) + 1);
}

void saps_reverse(Path& path, std::size_t first, std::size_t last) {
  CR_EXPECTS(first <= last && last < path.size(),
             "reverse indices must satisfy first <= last < n");
  std::reverse(path.begin() + static_cast<std::ptrdiff_t>(first),
               path.begin() + static_cast<std::ptrdiff_t>(last) + 1);
}

void saps_swap(Path& path, std::size_t a, std::size_t b) {
  CR_EXPECTS(a < path.size() && b < path.size(),
             "swap indices must be < n");
  std::swap(path[a], path[b]);
}

namespace {

/// Edge cost c(u -> v) = -log w(u, v), with the safe_log floor.
double edge_cost(const Matrix& w, VertexId u, VertexId v) {
  return -math::safe_log(w(u, v));
}

}  // namespace

double saps_rotate_delta(const Matrix& w, const Path& path,
                         std::size_t first, std::size_t middle,
                         std::size_t last) {
  CR_EXPECTS(first <= middle && middle <= last && last < path.size(),
             "rotate indices must satisfy first <= middle <= last < n");
  if (middle == first || middle == last + 1) {
    return 0.0;  // rotation is a no-op
  }
  // After the rotation the range becomes B = path[middle..last] followed by
  // A = path[first..middle-1]; edges internal to A and B are untouched.
  double delta = 0.0;
  // Removed: in-edge to A's head, the A->B junction, B's out-edge.
  if (first > 0) {
    delta -= edge_cost(w, path[first - 1], path[first]);
  }
  delta -= edge_cost(w, path[middle - 1], path[middle]);
  if (last + 1 < path.size()) {
    delta -= edge_cost(w, path[last], path[last + 1]);
  }
  // Added: in-edge to B's head, the B->A junction, A's out-edge.
  if (first > 0) {
    delta += edge_cost(w, path[first - 1], path[middle]);
  }
  delta += edge_cost(w, path[last], path[first]);
  if (last + 1 < path.size()) {
    delta += edge_cost(w, path[middle - 1], path[last + 1]);
  }
  return delta;
}

double saps_reverse_delta(const Matrix& w, const Path& path,
                          std::size_t first, std::size_t last) {
  CR_EXPECTS(first <= last && last < path.size(),
             "reverse indices must satisfy first <= last < n");
  if (first == last) {
    return 0.0;
  }
  double delta = 0.0;
  // Boundary edges swap endpoints.
  if (first > 0) {
    delta += edge_cost(w, path[first - 1], path[last]) -
             edge_cost(w, path[first - 1], path[first]);
  }
  if (last + 1 < path.size()) {
    delta += edge_cost(w, path[first], path[last + 1]) -
             edge_cost(w, path[last], path[last + 1]);
  }
  // Interior edges flip direction.
  for (std::size_t k = first; k < last; ++k) {
    delta += edge_cost(w, path[k + 1], path[k]) -
             edge_cost(w, path[k], path[k + 1]);
  }
  return delta;
}

double saps_swap_delta(const Matrix& w, const Path& path, std::size_t a,
                       std::size_t b) {
  CR_EXPECTS(a < path.size() && b < path.size(), "swap indices must be < n");
  if (a == b) {
    return 0.0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  const std::size_t n = path.size();
  double delta = 0.0;
  if (b == a + 1) {
    // Adjacent swap: three affected edges.
    if (a > 0) {
      delta += edge_cost(w, path[a - 1], path[b]) -
               edge_cost(w, path[a - 1], path[a]);
    }
    delta += edge_cost(w, path[b], path[a]) - edge_cost(w, path[a], path[b]);
    if (b + 1 < n) {
      delta += edge_cost(w, path[a], path[b + 1]) -
               edge_cost(w, path[b], path[b + 1]);
    }
    return delta;
  }
  // Disjoint neighborhoods: four affected edges.
  if (a > 0) {
    delta += edge_cost(w, path[a - 1], path[b]) -
             edge_cost(w, path[a - 1], path[a]);
  }
  delta += edge_cost(w, path[b], path[a + 1]) -
           edge_cost(w, path[a], path[a + 1]);
  delta += edge_cost(w, path[b - 1], path[a]) -
           edge_cost(w, path[b - 1], path[b]);
  if (b + 1 < n) {
    delta += edge_cost(w, path[a], path[b + 1]) -
             edge_cost(w, path[b], path[b + 1]);
  }
  return delta;
}

namespace {

Path initial_path(const Matrix& w, VertexId start, SapsInitMode mode,
                  bool force_anchor, Rng& rng) {
  const std::size_t n = w.rows();
  switch (mode) {
    case SapsInitMode::GreedyNearestNeighbor: {
      Path path;
      path.reserve(n);
      std::vector<bool> used(n, false);
      VertexId current = start;
      path.push_back(current);
      used[current] = true;
      for (std::size_t step = 1; step < n; ++step) {
        VertexId best = n;
        double best_w = -1.0;
        for (VertexId next = 0; next < n; ++next) {
          if (used[next]) continue;
          if (w(current, next) > best_w) {
            best_w = w(current, next);
            best = next;
          }
        }
        path.push_back(best);
        used[best] = true;
        current = best;
      }
      return path;
    }
    case SapsInitMode::WeightDifferenceRanking: {
      std::vector<double> diff(n, 0.0);
      for (VertexId v = 0; v < n; ++v) {
        for (VertexId u = 0; u < n; ++u) {
          if (u == v) continue;
          diff[v] += w(v, u) - w(u, v);
        }
      }
      Path path(n);
      std::iota(path.begin(), path.end(), VertexId{0});
      std::stable_sort(path.begin(), path.end(), [&](VertexId a, VertexId b) {
        return diff[a] > diff[b];
      });
      if (force_anchor) {
        // Later restarts diversify by pulling their anchor vertex to the
        // front, preserving the relative order of the rest.
        const auto it = std::find(path.begin(), path.end(), start);
        std::rotate(path.begin(), it, it + 1);
      }
      return path;
    }
    case SapsInitMode::RandomPermutation: {
      auto perm = rng.permutation(n);
      Path path(perm.begin(), perm.end());
      const auto it = std::find(path.begin(), path.end(), start);
      std::swap(*path.begin(), *it);
      return path;
    }
  }
  throw Error("unknown SAPS init mode");
}

}  // namespace

SapsResult saps_search(const Matrix& closure, const SapsConfig& config,
                       Rng& rng) {
  CR_EXPECTS(closure.is_square(), "closure matrix must be square");
  const std::size_t n = closure.rows();
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(config.iterations >= 1, "need at least one iteration");
  CR_EXPECTS(config.initial_temperature > 0.0,
             "initial temperature must be positive");
  CR_EXPECTS(config.cooling_rate > 0.0 && config.cooling_rate <= 1.0,
             "cooling rate must be in (0, 1]");
  CR_EXPECTS(config.restarts >= 1 || config.paper_mode,
             "need at least one restart");
  CR_EXPECTS(config.use_rotate || config.use_reverse || config.use_swap,
             "at least one move type must be enabled");

  const std::size_t restarts = config.paper_mode
                                   ? n
                                   : std::min(config.restarts, n);

  SapsResult result;
  result.log_cost = std::numeric_limits<double>::infinity();

  // Annealing-schedule trace, sampled every `stride` iterations so even
  // million-iteration runs stay at ~128 points per restart. The stride is
  // derived from the config alone (never the clock), and all observations
  // are reads of existing state — the anneal itself is untouched.
  metrics::Series* trace_temp = trace::series("saps.temperature");
  metrics::Series* trace_accept = trace::series("saps.acceptance_rate");
  metrics::Series* trace_best = trace::series("saps.best_log_cost");
  const std::size_t trace_stride =
      config.iterations > 128 ? config.iterations / 128 : 1;

  // Algorithm 3: Metropolis acceptance on d = sum log(1/w).
  const auto accept = [&](double d_cur, double d_next, double temp) {
    if (d_next < d_cur) return true;
    if (temp <= 0.0) return false;
    const double p = std::exp(-(d_next - d_cur) / temp);
    return rng.bernoulli(p);
  };

  for (std::size_t restart = 0; restart < restarts; ++restart) {
    trace::Span restart_span("saps_restart");
    if (restart_span.active()) {
      restart_span.set_attr("restart", restart);
    }
    const VertexId anchor = static_cast<VertexId>(restart % n);
    Path current = initial_path(closure, anchor, config.init_mode,
                                /*force_anchor=*/restart > 0, rng);
    double d_cur = path_log_cost(closure, current);
    if (d_cur < result.log_cost) {
      result.log_cost = d_cur;
      result.best_path = current;
    }

    // Windowed acceptance bookkeeping for the trace samples below.
    std::uint64_t window_proposed = 0;
    std::uint64_t window_accepted = 0;
    const double iter_base =
        static_cast<double>(restart) * static_cast<double>(config.iterations);

    double temp = config.initial_temperature;
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      // Algorithm 2 lines 5-11: propose each enabled move in turn. Each
      // proposal is scored by its incremental delta (O(1) for rotate and
      // swap, O(segment) for reverse) and applied only on acceptance.
      for (int move = 0; move < 3; ++move) {
        if (move == 0 && !config.use_rotate) continue;
        if (move == 1 && !config.use_reverse) continue;
        if (move == 2 && !config.use_swap) continue;

        double delta = 0.0;
        std::size_t p0 = 0;
        std::size_t p1 = 0;
        std::size_t p2 = 0;
        if (move == 0) {
          // Rotate a random range about a random interior pivot.
          p0 = rng.uniform_index(n);
          p2 = rng.uniform_index(n);
          if (p0 > p2) std::swap(p0, p2);
          p1 = p0 +
               static_cast<std::size_t>(rng.uniform_index(p2 - p0 + 1));
          delta = saps_rotate_delta(closure, current, p0, p1, p2);
        } else if (move == 1) {
          p0 = rng.uniform_index(n);
          p1 = rng.uniform_index(n);
          if (p0 > p1) std::swap(p0, p1);
          delta = saps_reverse_delta(closure, current, p0, p1);
        } else {
          p0 = rng.uniform_index(n);
          p1 = rng.uniform_index(n - 1);
          if (p1 >= p0) ++p1;
          delta = saps_swap_delta(closure, current, p0, p1);
        }

        ++result.moves_proposed;
        ++window_proposed;
        if (accept(d_cur, d_cur + delta, temp)) {
          if (move == 0) {
            saps_rotate(current, p0, p1, p2);
          } else if (move == 1) {
            saps_reverse(current, p0, p1);
          } else {
            saps_swap(current, p0, p1);
          }
          d_cur += delta;
          ++result.moves_accepted;
          ++window_accepted;
          if (d_cur < result.log_cost) {
            result.log_cost = d_cur;
            result.best_path = current;
          }
        }
      }
      temp *= config.cooling_rate;

      if (trace_temp != nullptr && (iter + 1) % trace_stride == 0) {
        const double t = iter_base + static_cast<double>(iter + 1);
        trace::push_series(trace_temp, t, temp);
        trace::push_series(
            trace_accept, t,
            window_proposed > 0 ? static_cast<double>(window_accepted) /
                                      static_cast<double>(window_proposed)
                                : 0.0);
        trace::push_series(trace_best, t, result.log_cost);
        window_proposed = 0;
        window_accepted = 0;
      }
    }
    if (restart_span.active()) {
      restart_span.set_attr("best_log_cost", result.log_cost);
    }
    // Guard against float drift from long delta chains: the reported cost
    // is recomputed exactly from the stored best path below.
    ++result.restarts_run;
  }

  if (metrics::Counter* c = trace::counter("saps.moves_proposed")) {
    c->add(result.moves_proposed);
    trace::counter("saps.moves_accepted")->add(result.moves_accepted);
    trace::counter("saps.restarts")->add(result.restarts_run);
  }

  // Re-derive the exact cost of the winner: accumulated deltas can drift
  // by float rounding over millions of accepted moves.
  result.log_cost = path_log_cost(closure, result.best_path);
  result.probability = std::exp(-result.log_cost);
  CR_ENSURES(is_permutation_path(result.best_path, n),
             "SAPS produced a non-Hamiltonian path");
  return result;
}

}  // namespace crowdrank
