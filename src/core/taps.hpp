// Step 4 (exact) — threshold-based path search, TAPS (paper §V-D1).
//
// Finds the Hamiltonian path of maximum preference probability
// Pr[P] = prod of edge weights, with the Threshold-Algorithm stop rule of
// Fagin et al.: candidates are examined in best-first order under an upper
// bound built from per-position sorted edge lists, and the search halts as
// soon as the best complete path's probability meets the bound of every
// unexamined candidate (max >= theta). The paper materializes n! path rows
// across n-1 sorted lists; we generate the same candidate order lazily by
// best-first expansion of partial paths, which keeps the identical
// semantics — exact top-1 with all ties, early termination — without the
// factorial table (DESIGN.md substitution #4).
//
// Like the paper, TAPS is intended for the small-n regime (the 10/20-image
// AMT settings); tests cross-check it against Held-Karp and brute force.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

struct TapsConfig {
  /// Hard cap on priority-queue expansions; beyond it TAPS throws (the
  /// caller should switch to SAPS or Held-Karp). The default covers
  /// n <= ~16 even on flat closures and n <= ~20 on peaked ones; each
  /// expansion can push up to n ~32-byte search nodes, so the cap also
  /// bounds memory (~0.5 GB at the default for n = 20).
  std::size_t max_expansions = 1'000'000;
  /// Return every tying optimum (the paper's Step 1 keeps tie paths in Y).
  bool collect_ties = true;
  /// Relative slack for tie detection on log-probabilities.
  double tie_tolerance = 1e-12;
};

struct TapsResult {
  /// Optimal path(s): all share the maximum probability. Non-empty.
  std::vector<Path> best_paths;
  double log_probability = 0.0;  ///< log Pr of the optimum
  double probability = 0.0;      ///< Pr of the optimum (may underflow to 0)
  std::size_t expansions = 0;    ///< nodes popped before the threshold hit
};

/// Runs TAPS on a complete preference closure (all off-diagonal weights in
/// (0, 1)). Throws crowdrank::Error if the expansion cap is exceeded.
TapsResult taps_search(const Matrix& closure, const TapsConfig& config = {});

}  // namespace crowdrank
