#include "core/saps_kernel.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace crowdrank {

namespace {

/// Elements per pool task when materializing the cost matrix. Large enough
/// that small closures (n <= 128) fill inline with zero dispatch cost.
constexpr std::size_t kFillGrain = 1 << 14;

/// The safe_log floor the cost fill bakes in; must equal the default
/// `floor_log` of math::safe_log so cost() == -safe_log(w) stays exact
/// (tests/core/test_saps_kernel.cpp pins the equality element-wise).
constexpr double kCostLogFloor = -745.0;

}  // namespace

SapsCostCache::SapsCostCache(const Matrix& weights)
    : weights_(&weights),
      n_(weights.rows()),
      costs_(n_ * n_, 0.0, arena::current()) {
  CR_EXPECTS(weights.is_square(), "cost cache requires a square matrix");
  const std::span<const double> w = weights.data();
  // Batch -safe_log transform; element-disjoint chunks, and the simd
  // backend is bitwise-pinned to the scalar safe_log branch structure.
  parallel_for(0, costs_.size(), kFillGrain,
               [&](std::size_t b, std::size_t e) {
                 simd::neg_log_clamped(costs_.data() + b, w.data() + b, e - b,
                                       kCostLogFloor);
               });
}

double path_log_cost(const SapsCostCache& cache, const Path& path) {
  // Same accumulation order as the uncached path_log_cost: cost -= log
  // there is cost += (-log) here, term by term in path order (the gather
  // sum is order-sensitive, so it runs scalar on every backend).
  return simd::path_cost_sum(cache.data().data(), path.data(), path.size(),
                             cache.size());
}

double saps_rotate_delta(const SapsCostCache& cache, const Path& path,
                         std::size_t first, std::size_t middle,
                         std::size_t last) {
  CR_EXPECTS(first <= middle && middle <= last && last < path.size(),
             "rotate indices must satisfy first <= middle <= last < n");
  if (middle == first || middle == last + 1) {
    return 0.0;  // rotation is a no-op
  }
  // Mirrors the uncached saps_rotate_delta term for term (removed in-edge /
  // junction / out-edge, then the added ones) so the float sums agree
  // bitwise.
  double delta = 0.0;
  if (first > 0) {
    delta -= cache.cost(path[first - 1], path[first]);
  }
  delta -= cache.cost(path[middle - 1], path[middle]);
  if (last + 1 < path.size()) {
    delta -= cache.cost(path[last], path[last + 1]);
  }
  if (first > 0) {
    delta += cache.cost(path[first - 1], path[middle]);
  }
  delta += cache.cost(path[last], path[first]);
  if (last + 1 < path.size()) {
    delta += cache.cost(path[middle - 1], path[last + 1]);
  }
  return delta;
}

double saps_reverse_delta(const SapsCostCache& cache, const Path& path,
                          std::size_t first, std::size_t last) {
  CR_EXPECTS(first <= last && last < path.size(),
             "reverse indices must satisfy first <= last < n");
  if (first == last) {
    return 0.0;
  }
  double delta = 0.0;
  if (first > 0) {
    delta += cache.cost(path[first - 1], path[last]) -
             cache.cost(path[first - 1], path[first]);
  }
  if (last + 1 < path.size()) {
    delta += cache.cost(path[first], path[last + 1]) -
             cache.cost(path[last], path[last + 1]);
  }
  for (std::size_t k = first; k < last; ++k) {
    delta += cache.cost(path[k + 1], path[k]) -
             cache.cost(path[k], path[k + 1]);
  }
  return delta;
}

double saps_swap_delta(const SapsCostCache& cache, const Path& path,
                       std::size_t a, std::size_t b) {
  CR_EXPECTS(a < path.size() && b < path.size(), "swap indices must be < n");
  if (a == b) {
    return 0.0;
  }
  if (a > b) {
    std::swap(a, b);
  }
  const std::size_t n = path.size();
  double delta = 0.0;
  if (b == a + 1) {
    // Adjacent swap: three affected edges.
    if (a > 0) {
      delta += cache.cost(path[a - 1], path[b]) -
               cache.cost(path[a - 1], path[a]);
    }
    delta +=
        cache.cost(path[b], path[a]) - cache.cost(path[a], path[b]);
    if (b + 1 < n) {
      delta += cache.cost(path[a], path[b + 1]) -
               cache.cost(path[b], path[b + 1]);
    }
    return delta;
  }
  // Disjoint neighborhoods: four affected edges.
  if (a > 0) {
    delta += cache.cost(path[a - 1], path[b]) -
             cache.cost(path[a - 1], path[a]);
  }
  delta += cache.cost(path[b], path[a + 1]) -
           cache.cost(path[a], path[a + 1]);
  delta += cache.cost(path[b - 1], path[a]) -
           cache.cost(path[b - 1], path[b]);
  if (b + 1 < n) {
    delta += cache.cost(path[a], path[b + 1]) -
             cache.cost(path[b], path[b + 1]);
  }
  return delta;
}

Path saps_initial_path(const SapsCostCache& cache, VertexId start,
                       SapsInitMode mode, bool force_anchor, Rng& rng) {
  const std::size_t n = cache.size();
  switch (mode) {
    case SapsInitMode::GreedyNearestNeighbor: {
      Path path;
      path.reserve(n);
      std::vector<bool> used(n, false);
      VertexId current = start;
      path.push_back(current);
      used[current] = true;
      for (std::size_t step = 1; step < n; ++step) {
        // Minimum cost == maximum weight: -safe_log is strictly decreasing
        // on w > 0 and maps every w <= 0 to the same ceiling, and both
        // formulations keep the first best on ties, so this hops exactly
        // where the weight-matrix greedy hopped.
        VertexId best = n;
        double best_cost = std::numeric_limits<double>::infinity();
        for (VertexId next = 0; next < n; ++next) {
          if (used[next]) continue;
          if (cache.cost(current, next) < best_cost) {
            best_cost = cache.cost(current, next);
            best = next;
          }
        }
        path.push_back(best);
        used[best] = true;
        current = best;
      }
      return path;
    }
    case SapsInitMode::WeightDifferenceRanking: {
      const Matrix& w = cache.weights();
      std::vector<double> diff(n, 0.0);
      for (VertexId v = 0; v < n; ++v) {
        for (VertexId u = 0; u < n; ++u) {
          if (u == v) continue;
          diff[v] += w(v, u) - w(u, v);
        }
      }
      Path path(n);
      std::iota(path.begin(), path.end(), VertexId{0});
      std::stable_sort(path.begin(), path.end(), [&](VertexId a, VertexId b) {
        return diff[a] > diff[b];
      });
      if (force_anchor) {
        // Later restarts diversify by pulling their anchor vertex to the
        // front, preserving the relative order of the rest.
        const auto it = std::find(path.begin(), path.end(), start);
        std::rotate(path.begin(), it, it + 1);
      }
      return path;
    }
    case SapsInitMode::RandomPermutation: {
      auto perm = rng.permutation(n);
      Path path(perm.begin(), perm.end());
      const auto it = std::find(path.begin(), path.end(), start);
      std::swap(*path.begin(), *it);
      return path;
    }
  }
  throw Error("unknown SAPS init mode");
}

}  // namespace crowdrank
