#include "core/smoothing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/trace.hpp"

namespace crowdrank {

double worker_sigma_from_quality(double quality) {
  const double q = std::clamp(quality, 1e-9, 1.0);
  return -std::log(q);
}

PreferenceGraph smooth_preferences(
    const PreferenceGraph& graph, const TruthDiscoveryResult& step1,
    std::span<const std::vector<WorkerId>> assignment_workers,
    const SmoothingConfig& config, Rng* rng, SmoothingStats* stats) {
  CR_EXPECTS(assignment_workers.size() == step1.truths.size(),
             "need one worker list per discovered task");
  CR_EXPECTS(config.min_mass > 0.0 && config.min_mass <= config.max_mass &&
                 config.max_mass < 0.5,
             "smoothing masses must satisfy 0 < min <= max < 0.5");
  CR_EXPECTS(config.mode == SmoothingMode::ExpectedError || rng != nullptr,
             "SampledError smoothing needs an Rng");

  SmoothingStats local;
  local.in_nodes_before = graph.in_nodes().size();
  local.out_nodes_before = graph.out_nodes().size();

  // Per-orientation flip counters for the trace: how many 1-edges were
  // softened in the forward (x == 1) vs backward (x == 0) direction.
  metrics::Counter* trace_forward = trace::counter("smoothing.forward_ones");
  metrics::Counter* trace_backward =
      trace::counter("smoothing.backward_ones");
  metrics::Histogram* trace_mass = trace::histogram("smoothing.mass");

  PreferenceGraph smoothed = graph;
  for (std::size_t t = 0; t < step1.truths.size(); ++t) {
    const TaskTruth& truth = step1.truths[t];
    const VertexId i = truth.task.first;
    const VertexId j = truth.task.second;
    // Identify 1-edges in either orientation: x == 1 means i -> j is a
    // 1-edge (j -> i absent); x == 0 the reverse.
    const bool forward_one = smoothed.weight(i, j) == 1.0;
    const bool backward_one = smoothed.weight(j, i) == 1.0;
    if (!forward_one && !backward_one) {
      continue;
    }
    const auto& workers = assignment_workers[t];
    CR_EXPECTS(!workers.empty(), "a crowdsourced task must have workers");
    double err_sum = 0.0;
    for (const WorkerId k : workers) {
      CR_EXPECTS(k < step1.worker_quality.size(),
                 "worker id outside the quality vector");
      const double sigma = worker_sigma_from_quality(step1.worker_quality[k]);
      const double err = config.mode == SmoothingMode::ExpectedError
                             ? math::expected_abs_normal(sigma)
                             : std::abs(rng->normal(0.0, sigma));
      err_sum += err;
    }
    const double mass = std::clamp(
        err_sum / static_cast<double>(workers.size()), config.min_mass,
        config.max_mass);
    if (forward_one) {
      smoothed.set_weight(i, j, 1.0 - mass);
      smoothed.set_weight(j, i, mass);
      if (trace_forward != nullptr) trace_forward->add(1);
    } else {
      smoothed.set_weight(j, i, 1.0 - mass);
      smoothed.set_weight(i, j, mass);
      if (trace_backward != nullptr) trace_backward->add(1);
    }
    if (trace_mass != nullptr) trace_mass->observe(mass);
    ++local.one_edges_smoothed;
  }

  local.strongly_connected_after = smoothed.is_strongly_connected();
  if (metrics::Counter* c = trace::counter("smoothing.one_edges_smoothed")) {
    c->add(local.one_edges_smoothed);
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return smoothed;
}

}  // namespace crowdrank
