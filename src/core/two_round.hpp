// Two-round extension: spend most of the budget non-interactively, then
// target the leftovers at the pairs round 1 left uncertain.
//
// The paper positions one-shot crowdsourcing against fully interactive
// systems (one round-trip vs thousands). This extension sits between: TWO
// round-trips total, same dollars. Round 1 runs the standard fair
// assignment on a fraction f of the budget; Steps 1-3 then score every
// pair's closure confidence |w - 0.5|, and round 2 re-crowdsources the
// (1-f) most uncertain pairs (contested tasks get more redundancy, unseen
// near-ties get their first direct votes). Inference finally runs on the
// merged batch. bench/extension_two_round measures what the second
// round-trip buys at equal total cost.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pipeline.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Pairs ordered by closure uncertainty, most uncertain first: the `count`
/// pairs (i, j) with the smallest |closure(i, j) - 0.5|; ties broken by
/// canonical pair order. The closure must be pair-normalized.
std::vector<Edge> most_uncertain_pairs(const Matrix& closure,
                                       std::size_t count);

struct TwoRoundConfig {
  /// Base experiment: object count, *total* budget (selection_ratio),
  /// worker pool, quality — identical meaning to run_experiment.
  ExperimentConfig base;
  /// Fraction of the unique-comparison budget spent in round 1 (the fair
  /// blind assignment). Must be in (0, 1]; 1.0 degenerates to one round.
  double round1_fraction = 0.7;
};

struct TwoRoundResult {
  Ranking truth;
  InferenceResult inference;   ///< over the merged two-round batch
  double accuracy = 0.0;
  std::size_t round1_tasks = 0;
  std::size_t round2_tasks = 0;
  /// How many round-2 pairs had already been asked in round 1 (extra
  /// redundancy) vs brand new pairs.
  std::size_t round2_repeats = 0;
  double total_cost = 0.0;
};

/// Runs the full two-round protocol against a simulated crowd.
TwoRoundResult run_two_round_experiment(const TwoRoundConfig& config);

}  // namespace crowdrank
