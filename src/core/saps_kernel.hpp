// Hot-path kernels for SAPS (Step 4): the materialized log-cost matrix.
//
// Every SAPS proposal is scored as a sum/difference of edge costs
// c(u -> v) = -log w(u, v). The closure matrix never changes during a
// search, yet the uncached formulation in core/saps.hpp re-derives each
// cost through `safe_log` on every evaluation — millions of redundant
// `std::log` calls per search. `SapsCostCache` materializes the full n x n
// cost matrix once per `saps_search` call (parallelized, element-disjoint)
// and the cached kernels below read it back with one load per edge.
//
// Contract: every cached kernel is **bitwise-identical** to its uncached
// counterpart in core/saps.hpp / graph/hamiltonian.hpp. The cache stores
// exactly `-math::safe_log(w(u, v))` (including the safe_log floor for
// w <= 0), and each kernel accumulates its terms in the same order as the
// uncached code, so no float rounding can diverge.
// tests/core/test_saps_kernel.cpp pins this bit for bit.
#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>
#include <vector>

#include "core/saps.hpp"
#include "graph/types.hpp"
#include "util/arena.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Immutable -log w cost matrix over a square weight matrix. Built once
/// per search; the referenced weight matrix must outlive the cache.
class SapsCostCache {
 public:
  /// Materializes cost(u, v) = -safe_log(w(u, v)) for all pairs. The fill
  /// is an element-disjoint parallel transform, so it is bitwise-identical
  /// at any thread count.
  explicit SapsCostCache(const Matrix& weights);

  std::size_t size() const { return n_; }

  /// Edge cost c(u -> v); exactly -safe_log(weights(u, v)).
  double cost(VertexId u, VertexId v) const { return costs_[u * n_ + v]; }

  /// Row-major raw cost matrix (size * size), for the batch kernels.
  std::span<const double> data() const { return costs_; }

  /// The weight matrix the cache was built from.
  const Matrix& weights() const { return *weights_; }

 private:
  const Matrix* weights_;
  std::size_t n_;
  // Per-search scratch: drawn from the caller's arena::current() resource,
  // so a service executor's arena absorbs the n^2 buffer each job.
  std::pmr::vector<double> costs_;
};

/// Total path cost sum of c(p[i] -> p[i+1]); bitwise-identical to
/// path_log_cost(weights, path) from graph/hamiltonian.hpp.
double path_log_cost(const SapsCostCache& cache, const Path& path);

/// Cached incremental deltas: bitwise-identical to the Matrix overloads in
/// core/saps.hpp with the same index preconditions.
double saps_rotate_delta(const SapsCostCache& cache, const Path& path,
                         std::size_t first, std::size_t middle,
                         std::size_t last);
double saps_reverse_delta(const SapsCostCache& cache, const Path& path,
                          std::size_t first, std::size_t last);
double saps_swap_delta(const SapsCostCache& cache, const Path& path,
                       std::size_t a, std::size_t b);

/// Restart-chain initial path (Algorithm 2 line 3), routed through the
/// cache. GreedyNearestNeighbor picks the minimum-cost unvisited successor,
/// which selects exactly the maximum-weight successor the uncached code
/// picked (-log is strictly decreasing and ties map to ties), so the
/// produced paths are identical. WeightDifferenceRanking and
/// RandomPermutation read `cache.weights()` / the rng as before.
Path saps_initial_path(const SapsCostCache& cache, VertexId start,
                       SapsInitMode mode, bool force_anchor, Rng& rng);

}  // namespace crowdrank
