// Cooperative stage checkpoints for the inference pipeline.
//
// A long-lived serving layer (src/service) needs to deadline, cancel, and
// fault-inject jobs without preemption. The pipeline cooperates: between
// every two stages it calls `StageControl::checkpoint` with a snapshot of
// the work completed so far. A controller aborts the run by throwing from
// the checkpoint — the pipeline performs no stage-spanning mutation, so an
// abort between stages leaves no partial state behind — or records the
// snapshot pointers to capture resumable intermediate output (the Step-1
// truths, the smoothed graph, the closure) before the run continues.
//
// Checkpoints run on the coordinating thread, never inside a parallel
// region, so a throwing checkpoint unwinds without wedging the pool.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace crowdrank {

struct TruthDiscoveryResult;
class PreferenceGraph;
class Matrix;

/// Lifecycle stages of one ranking job, in execution order. Validation and
/// Hardening are service-level stages (src/service); the inference engine
/// itself checkpoints TruthDiscovery through Done.
enum class PipelineStage {
  Validation,      ///< config/request validation (before any work)
  Hardening,       ///< vote-batch repair (service input hardening)
  TruthDiscovery,  ///< Step 1 (§V-A)
  Smoothing,       ///< Step 2 (§V-B)
  Propagation,     ///< Step 3 (§V-C)
  RankSearch,      ///< Step 4 (§V-D)
  Done,            ///< pipeline finished
};

/// Stable machine-readable stage name ("truth_discovery", ...).
const char* stage_name(PipelineStage stage);

/// Inverse of `stage_name`: nullopt for an unknown name. Used by the
/// serve CLI to accept stage names in jobs files (fault injection).
std::optional<PipelineStage> stage_from_name(std::string_view name);

/// What the pipeline has produced when a checkpoint fires. `next` is the
/// stage about to start (Done once the ranking exists); the pointers fill
/// in as stages complete and stay valid only for the checkpoint call.
struct StageSnapshot {
  PipelineStage next = PipelineStage::TruthDiscovery;
  const TruthDiscoveryResult* truth = nullptr;  ///< after Step 1
  const PreferenceGraph* smoothed = nullptr;    ///< after Step 2
  const Matrix* closure = nullptr;              ///< after Step 3
};

/// Cooperative control handle. Implementations observe progress and may
/// throw to abort the run between stages (the service layer throws
/// service::JobInterrupt to map aborts onto structured job outcomes).
class StageControl {
 public:
  virtual ~StageControl() = default;
  virtual void checkpoint(const StageSnapshot& snapshot) = 0;
};

}  // namespace crowdrank
