// CrowdBT baseline — pairwise ranking aggregation in a crowdsourced
// setting (paper §VI-A2, ref [7]: Chen, Bennett, Collins-Thompson, Horvitz,
// WSDM 2013).
//
// Bayesian Bradley-Terry with per-worker quality, run in the *interactive*
// regime the ICDCS paper compares against:
//  * each object i carries a Gaussian skill posterior N(mu_i, sigma_i^2);
//  * each worker k carries a quality posterior Beta(alpha_k, beta_k) on
//    eta_k, the probability they answer consistently with the true order;
//  * every purchased vote triggers an online update: Gaussian natural-
//    gradient moment matching on (mu, sigma) and a Bayesian agreement
//    update on (alpha, beta);
//  * *active learning*: each round scores candidate pairs by an
//    uncertainty-weighted information-gain proxy
//    (sigma_i^2 + sigma_j^2) * p_hat (1 - p_hat) and crowdsources the
//    best, which costs O(candidates) per purchased answer — the reason
//    CrowdBT's runtime explodes with n in Table I.
//
// Full-candidate scoring is n^2 per answer; `candidate_sample_size` allows
// the sampled-active-learning variant for large n (DESIGN.md
// substitution #5 documents this and the simplified gain proxy).
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/interactive.hpp"
#include "metrics/ranking.hpp"
#include "util/rng.hpp"

namespace crowdrank {

struct CrowdBtConfig {
  double initial_mu = 0.0;
  double initial_sigma2 = 1.0;
  double prior_alpha = 10.0;  ///< Beta prior: mildly trusting workers
  double prior_beta = 1.0;
  /// Variance floor: multiplicative variance updates never shrink a
  /// sigma^2 below this (keeps later updates alive; kappa in Chen et al.).
  double min_sigma2 = 1e-6;
  /// Candidate pairs scored per purchased answer. 0 = all n(n-1)/2 pairs
  /// (the literal algorithm; quadratic per answer).
  std::size_t candidate_sample_size = 0;
  /// Exploration: with this probability a round picks a uniform random
  /// pair instead of the argmax (Chen et al.'s epsilon-greedy smoothing).
  double exploration_rate = 0.1;
};

struct CrowdBtResult {
  Ranking ranking;
  std::vector<double> mu;       ///< posterior skill means
  std::vector<double> sigma2;   ///< posterior skill variances
  std::vector<double> eta;      ///< posterior worker quality means
  std::size_t answers_used = 0;
};

/// Runs interactive CrowdBT against a budget-metered crowd until the budget
/// is exhausted, then ranks by posterior mean skill.
CrowdBtResult crowd_bt_interactive(InteractiveCrowd& crowd,
                                   std::size_t object_count,
                                   std::size_t worker_count,
                                   const CrowdBtConfig& config, Rng& rng);

/// Offline variant: one online pass over an already-collected batch (no
/// active learning). Used by tests and the ablation benches.
CrowdBtResult crowd_bt_offline(const VoteBatch& votes,
                               std::size_t object_count,
                               std::size_t worker_count,
                               const CrowdBtConfig& config);

}  // namespace crowdrank
