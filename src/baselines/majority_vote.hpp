// Majority-vote utilities shared by the heuristic baselines.
//
// The paper's §I strawman aggregator: every vote counts equally, a pair's
// direction is the majority, and objects are ranked by Copeland score
// (majority wins minus majority losses). Also the substrate of the
// QuickSort baseline's Condorcet comparator.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Dense tally of votes: wins(i, j) = number of votes saying O_i < O_j.
Matrix vote_tally(const VoteBatch& votes, std::size_t object_count);

/// Majority direction of the pair (i, j) from a tally:
/// +1 if i wins, -1 if j wins, 0 on a tie or no votes.
int majority_direction(const Matrix& tally, VertexId i, VertexId j);

/// Copeland ranking: score(v) = #majority wins - #majority losses over the
/// pairs that received votes; ties broken by object id.
Ranking majority_vote_ranking(const VoteBatch& votes,
                              std::size_t object_count);

}  // namespace crowdrank
