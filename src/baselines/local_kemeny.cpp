#include "baselines/local_kemeny.hpp"

#include <vector>

#include "baselines/majority_vote.hpp"
#include "util/error.hpp"

namespace crowdrank {

double kemeny_disagreement(const Matrix& evidence, const Ranking& ranking) {
  CR_EXPECTS(evidence.is_square(), "evidence matrix must be square");
  CR_EXPECTS(evidence.rows() == ranking.size(),
             "evidence and ranking sizes must match");
  double total = 0.0;
  const std::size_t n = ranking.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      // u ranked before v: every vote saying v < u disagrees.
      total += evidence(ranking.object_at(b), ranking.object_at(a));
    }
  }
  return total;
}

Ranking local_kemenize(const Matrix& evidence, const Ranking& seed) {
  CR_EXPECTS(evidence.is_square(), "evidence matrix must be square");
  CR_EXPECTS(evidence.rows() == seed.size(),
             "evidence and ranking sizes must match");
  std::vector<VertexId> order(seed.order().begin(), seed.order().end());
  const std::size_t n = order.size();

  // Bubble until no adjacent swap strictly helps. Each accepted swap
  // reduces the (finite, non-negative) disagreement by the margin, so the
  // loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      const VertexId u = order[p];
      const VertexId v = order[p + 1];
      // Current cost of this pair: mass for v over u; swapped: u over v.
      if (evidence(v, u) > evidence(u, v)) {
        order[p] = v;
        order[p + 1] = u;
        changed = true;
      }
    }
  }
  return Ranking(std::move(order));
}

Ranking local_kemeny_ranking(const VoteBatch& votes,
                             std::size_t object_count) {
  const Matrix tally = vote_tally(votes, object_count);
  const Ranking seed = majority_vote_ranking(votes, object_count);
  return local_kemenize(tally, seed);
}

}  // namespace crowdrank
