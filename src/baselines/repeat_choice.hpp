// RepeatChoice (RC) baseline — rank aggregation over partial rankings
// (paper §VI-A2, ref [17]: Ailon, "Aggregation of partial rankings,
// p-ratings and top-m lists").
//
// RepeatChoice aggregates m input partial rankings (rankings with ties)
// into one full ranking: start with all objects in a single equivalence
// class; repeatedly pick an input ranking uniformly at random (without
// replacement) and use it to refine every current class by how it orders
// the class members (members it does not cover stay tied); finish by
// breaking any remaining ties randomly.
//
// In the crowdsourced setting each worker contributes a partial ranking
// derived from their own votes: objects ordered by the worker's local
// Copeland score, objects the worker never compared forming the bottom tie
// class. With a small budget every worker sees only a sliver of the
// objects, which is exactly why RC collapses at low selection ratios in
// Table I — the behaviour this reproduction must preserve.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// A partial ranking: tie groups listed best-first; objects absent from all
/// groups are implicitly one final tie class. Groups must be disjoint.
struct PartialRanking {
  std::vector<std::vector<VertexId>> tie_groups;
};

/// Derives worker k's partial ranking from their votes: order by local
/// Copeland score (descending), equal scores tied, unseen objects absent.
PartialRanking worker_partial_ranking(const VoteBatch& votes, WorkerId worker,
                                      std::size_t object_count);

/// Aggregates partial rankings with RepeatChoice. `rng` drives the random
/// processing order and the final tie-breaking.
Ranking repeat_choice(const std::vector<PartialRanking>& inputs,
                      std::size_t object_count, Rng& rng);

/// Convenience wrapper: derive one partial ranking per worker that voted,
/// then aggregate.
Ranking repeat_choice_from_votes(const VoteBatch& votes,
                                 std::size_t object_count,
                                 std::size_t worker_count, Rng& rng);

}  // namespace crowdrank
