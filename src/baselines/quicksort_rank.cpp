#include "baselines/quicksort_rank.hpp"

#include <vector>

#include "baselines/majority_vote.hpp"
#include "util/error.hpp"

namespace crowdrank {

namespace {

/// Quicksort with a majority-vote comparator: partitions around a random
/// pivot; unvoted pairs are decided by coin flip. Iterative (explicit
/// stack) so adversarial partitions cannot overflow the call stack.
void condorcet_quicksort(std::vector<VertexId>& items, const Matrix& tally,
                         Rng& rng) {
  struct Range {
    std::size_t lo;
    std::size_t hi;  // exclusive
  };
  std::vector<Range> stack{{0, items.size()}};
  while (!stack.empty()) {
    const Range range = stack.back();
    stack.pop_back();
    if (range.hi - range.lo <= 1) continue;

    const std::size_t pivot_idx =
        range.lo + static_cast<std::size_t>(
                       rng.uniform_index(range.hi - range.lo));
    const VertexId pivot = items[pivot_idx];

    std::vector<VertexId> before;
    std::vector<VertexId> after;
    for (std::size_t idx = range.lo; idx < range.hi; ++idx) {
      const VertexId v = items[idx];
      if (v == pivot) continue;
      int dir = majority_direction(tally, v, pivot);
      if (dir == 0) {
        dir = rng.bernoulli(0.5) ? 1 : -1;  // no signal: coin flip
      }
      (dir > 0 ? before : after).push_back(v);
    }
    std::size_t write = range.lo;
    for (const VertexId v : before) items[write++] = v;
    const std::size_t pivot_pos = write;
    items[write++] = pivot;
    for (const VertexId v : after) items[write++] = v;

    stack.push_back(Range{range.lo, pivot_pos});
    stack.push_back(Range{pivot_pos + 1, range.hi});
  }
}

}  // namespace

Ranking quicksort_ranking(const VoteBatch& votes, std::size_t object_count,
                          Rng& rng) {
  CR_EXPECTS(object_count >= 1, "need at least one object");
  const Matrix tally = vote_tally(votes, object_count);
  std::vector<VertexId> items(object_count);
  for (VertexId v = 0; v < object_count; ++v) items[v] = v;
  rng.shuffle(items);
  condorcet_quicksort(items, tally, rng);
  return Ranking(std::move(items));
}

}  // namespace crowdrank
