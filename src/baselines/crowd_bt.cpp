#include "baselines/crowd_bt.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

namespace {

/// Mutable CrowdBT posterior state.
struct State {
  std::vector<double> mu;
  std::vector<double> sigma2;
  std::vector<double> alpha;
  std::vector<double> beta;
};

State make_state(std::size_t object_count, std::size_t worker_count,
                 const CrowdBtConfig& config) {
  CR_EXPECTS(object_count >= 2, "need at least two objects");
  CR_EXPECTS(worker_count >= 1, "need at least one worker");
  CR_EXPECTS(config.initial_sigma2 > 0.0, "initial variance must be > 0");
  CR_EXPECTS(config.prior_alpha > 0.0 && config.prior_beta > 0.0,
             "Beta prior parameters must be positive");
  State s;
  s.mu.assign(object_count, config.initial_mu);
  s.sigma2.assign(object_count, config.initial_sigma2);
  s.alpha.assign(worker_count, config.prior_alpha);
  s.beta.assign(worker_count, config.prior_beta);
  return s;
}

/// One online update for "worker k reported winner beats loser".
void update(State& s, WorkerId k, VertexId winner, VertexId loser,
            const CrowdBtConfig& config) {
  const double eta = s.alpha[k] / (s.alpha[k] + s.beta[k]);
  // BT win probability under current means.
  const double p = 1.0 / (1.0 + std::exp(-(s.mu[winner] - s.mu[loser])));
  // Likelihood of the observed report: the worker is consistent with the
  // true order with probability eta.
  const double like = eta * p + (1.0 - eta) * (1.0 - p);
  const double safe_like = std::max(like, 1e-12);

  // Gradient and curvature of log-likelihood w.r.t. mu_winner
  // (anti-symmetric in mu_loser).
  const double g = (2.0 * eta - 1.0) * p * (1.0 - p) / safe_like;
  const double curve =
      (2.0 * eta - 1.0) * p * (1.0 - p) * (1.0 - 2.0 * p) / safe_like -
      g * g;

  s.mu[winner] += s.sigma2[winner] * g;
  s.mu[loser] -= s.sigma2[loser] * g;
  const double factor_w =
      std::max(1.0 + s.sigma2[winner] * curve, config.min_sigma2);
  const double factor_l =
      std::max(1.0 + s.sigma2[loser] * curve, config.min_sigma2);
  s.sigma2[winner] =
      std::max(s.sigma2[winner] * factor_w, config.min_sigma2);
  s.sigma2[loser] = std::max(s.sigma2[loser] * factor_l, config.min_sigma2);

  // Worker-quality update: posterior responsibility that the report is
  // consistent with the (current) true order.
  const double resp = eta * p / safe_like;
  s.alpha[k] += resp;
  s.beta[k] += 1.0 - resp;
}

CrowdBtResult finish(State&& s, std::size_t answers_used) {
  CrowdBtResult result{Ranking::from_scores(s.mu), std::move(s.mu),
                       std::move(s.sigma2), {}, answers_used};
  result.eta.reserve(s.alpha.size());
  for (std::size_t k = 0; k < s.alpha.size(); ++k) {
    result.eta.push_back(s.alpha[k] / (s.alpha[k] + s.beta[k]));
  }
  return result;
}

}  // namespace

CrowdBtResult crowd_bt_interactive(InteractiveCrowd& crowd,
                                   std::size_t object_count,
                                   std::size_t worker_count,
                                   const CrowdBtConfig& config, Rng& rng) {
  State s = make_state(object_count, worker_count, config);
  std::size_t answers = 0;

  const auto score_pair = [&](VertexId i, VertexId j) {
    const double p = 1.0 / (1.0 + std::exp(-(s.mu[i] - s.mu[j])));
    return (s.sigma2[i] + s.sigma2[j]) * p * (1.0 - p);
  };

  while (crowd.can_query()) {
    VertexId best_i = 0;
    VertexId best_j = 1;
    if (rng.bernoulli(config.exploration_rate)) {
      best_i = static_cast<VertexId>(rng.uniform_index(object_count));
      best_j = static_cast<VertexId>(rng.uniform_index(object_count - 1));
      if (best_j >= best_i) ++best_j;
    } else if (config.candidate_sample_size == 0) {
      // Literal active learning: score every pair, pick the argmax.
      double best_score = -1.0;
      for (VertexId i = 0; i < object_count; ++i) {
        for (VertexId j = i + 1; j < object_count; ++j) {
          const double sc = score_pair(i, j);
          if (sc > best_score) {
            best_score = sc;
            best_i = i;
            best_j = j;
          }
        }
      }
    } else {
      // Sampled active learning: argmax over a random candidate set.
      double best_score = -1.0;
      for (std::size_t c = 0; c < config.candidate_sample_size; ++c) {
        const auto i = static_cast<VertexId>(rng.uniform_index(object_count));
        auto j = static_cast<VertexId>(rng.uniform_index(object_count - 1));
        if (j >= i) ++j;
        const double sc = score_pair(i, j);
        if (sc > best_score) {
          best_score = sc;
          best_i = i;
          best_j = j;
        }
      }
    }

    const auto vote = crowd.query_random_worker(best_i, best_j);
    if (!vote.has_value()) break;  // budget exhausted
    ++answers;
    const VertexId winner = vote->prefers_i ? vote->i : vote->j;
    const VertexId loser = vote->prefers_i ? vote->j : vote->i;
    update(s, vote->worker, winner, loser, config);
  }
  return finish(std::move(s), answers);
}

CrowdBtResult crowd_bt_offline(const VoteBatch& votes,
                               std::size_t object_count,
                               std::size_t worker_count,
                               const CrowdBtConfig& config) {
  CR_EXPECTS(!votes.empty(), "need at least one vote");
  State s = make_state(object_count, worker_count, config);
  for (const Vote& v : votes) {
    CR_EXPECTS(v.i < object_count && v.j < object_count,
               "vote references an out-of-range object");
    CR_EXPECTS(v.worker < worker_count,
               "vote references an out-of-range worker");
    const VertexId winner = v.prefers_i ? v.i : v.j;
    const VertexId loser = v.prefers_i ? v.j : v.i;
    update(s, v.worker, winner, loser, config);
  }
  return finish(std::move(s), votes.size());
}

}  // namespace crowdrank
