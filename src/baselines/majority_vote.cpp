#include "baselines/majority_vote.hpp"

#include "util/error.hpp"

namespace crowdrank {

Matrix vote_tally(const VoteBatch& votes, std::size_t object_count) {
  Matrix tally(object_count, object_count, 0.0);
  for (const Vote& v : votes) {
    CR_EXPECTS(v.i < object_count && v.j < object_count,
               "vote references an out-of-range object");
    if (v.prefers_i) {
      tally(v.i, v.j) += 1.0;
    } else {
      tally(v.j, v.i) += 1.0;
    }
  }
  return tally;
}

int majority_direction(const Matrix& tally, VertexId i, VertexId j) {
  const double forward = tally(i, j);
  const double backward = tally(j, i);
  if (forward > backward) return 1;
  if (backward > forward) return -1;
  return 0;
}

Ranking majority_vote_ranking(const VoteBatch& votes,
                              std::size_t object_count) {
  const Matrix tally = vote_tally(votes, object_count);
  std::vector<double> copeland(object_count, 0.0);
  for (VertexId i = 0; i < object_count; ++i) {
    for (VertexId j = i + 1; j < object_count; ++j) {
      if (tally(i, j) == 0.0 && tally(j, i) == 0.0) continue;
      const int dir = majority_direction(tally, i, j);
      copeland[i] += dir;
      copeland[j] -= dir;
    }
  }
  return Ranking::from_scores(copeland);
}

}  // namespace crowdrank
