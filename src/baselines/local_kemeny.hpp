// Local Kemenization baseline.
//
// The paper frames rank aggregation as minimizing Kendall-tau disagreement
// (refs [14], [27]); full Kemeny optimization is NP-hard, but *local*
// Kemenization (Dwork, Kumar, Naor, Sivakumar) repairs any seed ranking
// until no adjacent transposition reduces the weighted disagreement with
// the pairwise evidence. The result is locally Kemeny-optimal and keeps
// the extended Condorcet property. Included as the classical
// aggregation-theoretic comparator to Step 4's probabilistic objective,
// and usable as a cheap polish pass over any baseline's output.
#pragma once

#include <cstddef>

#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Weighted pairwise disagreement of `ranking` with an evidence matrix:
/// sum over ordered pairs (u before v in the ranking) of evidence(v, u) —
/// i.e. the total vote/preference mass that contradicts the ranking.
double kemeny_disagreement(const Matrix& evidence, const Ranking& ranking);

/// Repairs `seed` by adjacent transpositions until locally optimal w.r.t.
/// `evidence` (bubble passes; each swap strictly reduces disagreement, so
/// termination is guaranteed). Evidence can be a vote tally or any
/// non-negative preference-mass matrix.
Ranking local_kemenize(const Matrix& evidence, const Ranking& seed);

/// Convenience baseline: Copeland seed from the raw votes, then local
/// Kemenization against the vote tally.
Ranking local_kemeny_ranking(const VoteBatch& votes,
                             std::size_t object_count);

}  // namespace crowdrank
