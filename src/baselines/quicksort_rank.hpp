// QuickSort (QS) baseline — Condorcet-fusion crowdsourced ranking
// (paper §VI-A2, ref [18]: Montague & Aslam, "Condorcet fusion for improved
// retrieval").
//
// Models the crowd's preferences as a Condorcet graph scored by majority
// voting and sorts the objects with a randomized quicksort whose comparator
// is the majority direction of the pivot pair. Pairs the budget never
// crowdsourced have no majority signal; the comparator then falls back to a
// coin flip — the reason QS degrades sharply at small selection ratios in
// Table I and Fig. 6.
#pragma once

#include <cstddef>

#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Randomized Condorcet quicksort over the vote tally.
Ranking quicksort_ranking(const VoteBatch& votes, std::size_t object_count,
                          Rng& rng);

}  // namespace crowdrank
