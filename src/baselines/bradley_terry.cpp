#include "baselines/bradley_terry.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/majority_vote.hpp"
#include "util/error.hpp"

namespace crowdrank {

BradleyTerryResult fit_bradley_terry(const VoteBatch& votes,
                                     std::size_t object_count,
                                     const BradleyTerryConfig& config) {
  CR_EXPECTS(object_count >= 2, "need at least two objects");
  CR_EXPECTS(config.prior_pseudo_wins >= 0.0, "prior must be non-negative");

  // wins(i, j): votes saying i beats j, plus a symmetric smoothing prior on
  // every *voted* pair so one-sided pairs keep finite MLE skills.
  Matrix wins = vote_tally(votes, object_count);
  for (std::size_t i = 0; i < object_count; ++i) {
    for (std::size_t j = i + 1; j < object_count; ++j) {
      if (wins(i, j) > 0.0 || wins(j, i) > 0.0) {
        wins(i, j) += config.prior_pseudo_wins;
        wins(j, i) += config.prior_pseudo_wins;
      }
    }
  }

  std::vector<double> total_wins(object_count, 0.0);
  for (std::size_t i = 0; i < object_count; ++i) {
    for (std::size_t j = 0; j < object_count; ++j) {
      total_wins[i] += wins(i, j);
    }
  }

  BradleyTerryResult result;
  result.skills.assign(object_count, 1.0);
  auto& gamma = result.skills;

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    double max_change = 0.0;
    for (std::size_t i = 0; i < object_count; ++i) {
      // MM update: gamma_i = W_i / sum_j n_ij / (gamma_i + gamma_j).
      double denom = 0.0;
      for (std::size_t j = 0; j < object_count; ++j) {
        if (j == i) continue;
        const double n_ij = wins(i, j) + wins(j, i);
        if (n_ij == 0.0) continue;
        denom += n_ij / (gamma[i] + gamma[j]);
      }
      if (denom == 0.0) continue;  // object never compared: skill stays 1
      const double next = total_wins[i] / denom;
      max_change = std::max(max_change, std::abs(next - gamma[i]));
      gamma[i] = std::max(next, 1e-12);
    }
    // Renormalize to mean 1 (BT skills are scale-invariant).
    double sum = 0.0;
    for (const double g : gamma) sum += g;
    const double scale = static_cast<double>(object_count) / sum;
    for (double& g : gamma) g *= scale;

    if (max_change < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

Ranking bradley_terry_ranking(const VoteBatch& votes,
                              std::size_t object_count,
                              const BradleyTerryConfig& config) {
  const auto fit = fit_bradley_terry(votes, object_count, config);
  return Ranking::from_scores(fit.skills);
}

}  // namespace crowdrank
