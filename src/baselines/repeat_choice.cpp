#include "baselines/repeat_choice.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace crowdrank {

PartialRanking worker_partial_ranking(const VoteBatch& votes, WorkerId worker,
                                      std::size_t object_count) {
  // Local Copeland score over the worker's own votes.
  std::map<VertexId, double> score;
  for (const Vote& v : votes) {
    if (v.worker != worker) continue;
    CR_EXPECTS(v.i < object_count && v.j < object_count,
               "vote references an out-of-range object");
    const VertexId winner = v.prefers_i ? v.i : v.j;
    const VertexId loser = v.prefers_i ? v.j : v.i;
    score[winner] += 1.0;
    score[loser] -= 1.0;
  }
  // Bucket seen objects by score, descending.
  std::map<double, std::vector<VertexId>, std::greater<>> buckets;
  for (const auto& [v, s] : score) {
    buckets[s].push_back(v);
  }
  PartialRanking partial;
  for (auto& [_, group] : buckets) {
    std::sort(group.begin(), group.end());
    partial.tie_groups.push_back(std::move(group));
  }
  return partial;
}

Ranking repeat_choice(const std::vector<PartialRanking>& inputs,
                      std::size_t object_count, Rng& rng) {
  CR_EXPECTS(object_count >= 1, "need at least one object");

  // Current refinement: ordered list of tie classes.
  std::vector<std::vector<VertexId>> classes;
  {
    std::vector<VertexId> all(object_count);
    for (VertexId v = 0; v < object_count; ++v) all[v] = v;
    classes.push_back(std::move(all));
  }

  // Process the inputs in a uniformly random order, each refining every
  // class it can discriminate within.
  auto order = rng.permutation(inputs.size());
  for (const std::size_t idx : order) {
    const PartialRanking& input = inputs[idx];
    // Position of each object in this input: tie-group index; absent
    // objects share the sentinel group (after the last).
    std::vector<std::size_t> group_of(object_count, input.tie_groups.size());
    for (std::size_t g = 0; g < input.tie_groups.size(); ++g) {
      for (const VertexId v : input.tie_groups[g]) {
        CR_EXPECTS(v < object_count, "partial ranking references bad object");
        group_of[v] = g;
      }
    }

    std::vector<std::vector<VertexId>> refined;
    refined.reserve(classes.size());
    for (const auto& cls : classes) {
      if (cls.size() == 1) {
        refined.push_back(cls);
        continue;
      }
      // Split the class by this input's tie-group index (stable).
      std::map<std::size_t, std::vector<VertexId>> split;
      for (const VertexId v : cls) {
        split[group_of[v]].push_back(v);
      }
      for (auto& [_, part] : split) {
        refined.push_back(std::move(part));
      }
    }
    classes = std::move(refined);
  }

  // Random tie-breaking inside any class that is still plural.
  std::vector<VertexId> final_order;
  final_order.reserve(object_count);
  for (auto& cls : classes) {
    if (cls.size() > 1) {
      rng.shuffle(cls);
    }
    final_order.insert(final_order.end(), cls.begin(), cls.end());
  }
  return Ranking(std::move(final_order));
}

Ranking repeat_choice_from_votes(const VoteBatch& votes,
                                 std::size_t object_count,
                                 std::size_t worker_count, Rng& rng) {
  std::vector<bool> voted(worker_count, false);
  for (const Vote& v : votes) {
    CR_EXPECTS(v.worker < worker_count,
               "vote references an out-of-range worker");
    voted[v.worker] = true;
  }
  std::vector<PartialRanking> inputs;
  for (WorkerId k = 0; k < worker_count; ++k) {
    if (!voted[k]) continue;
    inputs.push_back(worker_partial_ranking(votes, k, object_count));
  }
  return repeat_choice(inputs, object_count, rng);
}

}  // namespace crowdrank
