// Plain Bradley-Terry baseline (refs [19], [32]).
//
// Maximum-likelihood Bradley-Terry skill estimation via Hunter's MM
// (minorization-maximization) algorithm over the aggregated win counts,
// quality-blind: every vote weighs the same. Included as the classical
// non-crowd-aware comparator between majority voting and CrowdBT, and used
// by the ablation benches.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/vote.hpp"
#include "metrics/ranking.hpp"

namespace crowdrank {

struct BradleyTerryConfig {
  std::size_t max_iterations = 500;
  double tolerance = 1e-9;      ///< max |skill change| per MM sweep to stop
  double prior_pseudo_wins = 0.1;  ///< smoothing so unseen objects stay finite
};

struct BradleyTerryResult {
  std::vector<double> skills;  ///< gamma_i > 0, normalized to mean 1
  std::size_t iterations = 0;
  bool converged = false;
};

/// Fits BT skills to the vote batch by MM iteration.
BradleyTerryResult fit_bradley_terry(const VoteBatch& votes,
                                     std::size_t object_count,
                                     const BradleyTerryConfig& config = {});

/// Ranking by descending fitted skill.
Ranking bradley_terry_ranking(const VoteBatch& votes,
                              std::size_t object_count,
                              const BradleyTerryConfig& config = {});

}  // namespace crowdrank
