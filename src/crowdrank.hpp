// crowdrank.hpp — the single public entry point of the crowdrank library.
//
// External consumers (examples, benches, downstream tools) include this
// umbrella header and nothing else; the lint gate (tools/crowdrank_lint.py)
// rejects direct sub-module includes outside src/ and tests/. The header
// re-exports every subsystem and adds the stable `crowdrank::api` facade:
// a Request/Response pair that wraps the configure-harden-infer sequence
// behind one call, so callers depend on a narrow surface that survives
// internal pipeline refactors.
//
//     crowdrank::api::Request request;
//     request.votes = ...;            // raw (possibly messy) vote batch
//     request.object_count = n;
//     crowdrank::api::Response response = crowdrank::api::rank(request);
//     if (response.ok()) use(response.ranking.order);
//
// `rank` never throws on malformed input: repairs and degradations are
// reported structurally (Response::outcome, Response::hardening), the same
// contract the batch service (service/service.hpp) gives each job.
#pragma once

// util: primitives every layer shares
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/matrix.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

// obs: the live telemetry plane (flight recorder, snapshot exporter,
// postmortems) consumed by `crowdrank serve --telemetry` / `crowdrank top`
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

// graph: preference graphs, closures, Hamiltonian search
#include "graph/hamiltonian.hpp"
#include "graph/preference_graph.hpp"
#include "graph/scc.hpp"
#include "graph/task_graph.hpp"
#include "graph/transitive_closure.hpp"
#include "graph/types.hpp"

// metrics: ranking representation and quality measures
#include "metrics/kendall.hpp"
#include "metrics/ranking.hpp"
#include "metrics/spearman.hpp"
#include "metrics/topk.hpp"

// crowd: votes, workers, HITs, budgets, simulators, AMT data
#include "crowd/amt_dataset.hpp"
#include "crowd/behaviors.hpp"
#include "crowd/budget.hpp"
#include "crowd/hit.hpp"
#include "crowd/interactive.hpp"
#include "crowd/simulator.hpp"
#include "crowd/vote.hpp"
#include "crowd/worker.hpp"

// analysis: invariant validators
#include "analysis/invariants.hpp"

// core: the four-step inference pipeline and planners
#include "core/checkpoint.hpp"
#include "core/confidence.hpp"
#include "core/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "core/planning.hpp"
#include "core/two_round.hpp"

// baselines: comparison aggregators
#include "baselines/bradley_terry.hpp"
#include "baselines/crowd_bt.hpp"
#include "baselines/local_kemeny.hpp"
#include "baselines/majority_vote.hpp"
#include "baselines/quicksort_rank.hpp"
#include "baselines/repeat_choice.hpp"

// service: the fault-tolerant batch ranking service
#include "service/hardening.hpp"
#include "service/job.hpp"
#include "service/service.hpp"

namespace crowdrank::api {

/// Structured validation/configuration error: the facade's error currency
/// is core's ConfigError (field + message), never an exception.
using Error = ConfigError;

/// One ranking request. Defaults give the paper's pipeline configuration;
/// `repair` controls whether the input-hardening pass may drop/restrict
/// votes (turn it off to demand the batch be used exactly as given, which
/// restores the engine's strict-contract behavior).
struct Request {
  VoteBatch votes;
  /// Number of objects (0 = derive from the highest vote id).
  std::size_t object_count = 0;
  /// Number of workers (0 = derive from the batch).
  std::size_t worker_count = 0;
  std::uint64_t seed = 1;
  InferenceConfig inference;
  /// Apply the input-hardening pass (validate/repair/restrict) first.
  bool repair = true;
  service::HardeningPolicy hardening;
  /// Optional per-task worker assignment for smoothing. When null, the
  /// workers consulted per task are exactly those who voted on it.
  const HitAssignment* assignment = nullptr;
};

/// The structured answer: a (possibly partial) ranking plus the full
/// degradation accounting. No exception escapes `rank`.
struct Response {
  service::JobOutcome outcome = service::JobOutcome::Failed;
  /// Stage the request ended in (Done on success).
  PipelineStage stage = PipelineStage::Validation;
  /// Detail for Rejected/Failed outcomes.
  std::string reason;
  /// Ranking over original object ids; `excluded` lists objects the
  /// evidence could not rank (empty on Completed).
  service::PartialRanking ranking;
  service::HardeningReport hardening;
  double log_probability = 0.0;
  /// Full engine output (step diagnostics, timings) for the compact
  /// repaired batch; engaged only when `ok()`.
  std::optional<InferenceResult> inference;
  /// Validation errors (outcome Rejected when non-empty).
  std::vector<Error> errors;

  bool ok() const {
    return outcome == service::JobOutcome::Completed ||
           outcome == service::JobOutcome::Degraded;
  }
};

/// Validates a request without running it: config range checks plus basic
/// batch shape checks. Empty result = admissible.
std::vector<Error> validate(const Request& request);

/// Runs the facade sequence (validate -> harden -> infer) with a fresh
/// Rng seeded from `request.seed`.
Response rank(const Request& request);

/// As above but threading the caller's Rng — for harnesses that share one
/// generator across many calls (benches, simulations).
Response rank(const Request& request, Rng& rng);

}  // namespace crowdrank::api
