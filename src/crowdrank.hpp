// crowdrank.hpp — the single public entry point of the crowdrank library.
//
// External consumers (examples, benches, downstream tools) include this
// umbrella header and nothing else; the lint gate (tools/crowdrank_lint.py)
// rejects direct sub-module includes outside src/ and tests/. The header
// re-exports every subsystem and adds the stable `crowdrank::api` facade:
// a Request/Response pair that wraps the configure-harden-infer sequence
// behind one call, so callers depend on a narrow surface that survives
// internal pipeline refactors.
//
//     crowdrank::api::Request request;
//     request.votes = ...;            // raw (possibly messy) vote batch
//     request.object_count = n;
//     crowdrank::api::Response response = crowdrank::api::rank(request);
//     if (response.ok()) use(response.ranking.order);
//
// `rank` never throws on malformed input: repairs and degradations are
// reported structurally (Response::outcome, Response::hardening), the same
// contract the batch service (service/service.hpp) gives each job.
#pragma once

// util: primitives every layer shares
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/math.hpp"
#include "util/matrix.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

// obs: the live telemetry plane (flight recorder, snapshot exporter,
// postmortems) consumed by `crowdrank serve --telemetry` / `crowdrank top`
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

// graph: preference graphs, closures, Hamiltonian search
#include "graph/hamiltonian.hpp"
#include "graph/preference_graph.hpp"
#include "graph/scc.hpp"
#include "graph/task_graph.hpp"
#include "graph/transitive_closure.hpp"
#include "graph/types.hpp"

// metrics: ranking representation and quality measures
#include "metrics/kendall.hpp"
#include "metrics/ranking.hpp"
#include "metrics/spearman.hpp"
#include "metrics/topk.hpp"

// crowd: votes, workers, HITs, budgets, simulators, AMT data
#include "crowd/amt_dataset.hpp"
#include "crowd/behaviors.hpp"
#include "crowd/budget.hpp"
#include "crowd/hit.hpp"
#include "crowd/interactive.hpp"
#include "crowd/simulator.hpp"
#include "crowd/vote.hpp"
#include "crowd/worker.hpp"

// analysis: invariant validators
#include "analysis/invariants.hpp"

// core: the four-step inference pipeline and planners
#include "core/checkpoint.hpp"
#include "core/confidence.hpp"
#include "core/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "core/planning.hpp"
#include "core/two_round.hpp"

// baselines: comparison aggregators
#include "baselines/bradley_terry.hpp"
#include "baselines/crowd_bt.hpp"
#include "baselines/local_kemeny.hpp"
#include "baselines/majority_vote.hpp"
#include "baselines/quicksort_rank.hpp"
#include "baselines/repeat_choice.hpp"

// service: the fault-tolerant batch ranking service, the persistent
// artifact format + content-addressed result cache, and the crowdrank::api
// facade (declared in service/api.hpp, implemented on the same shared
// entry point the service's executors run)
#include "service/api.hpp"
#include "service/artifact.hpp"
#include "service/hardening.hpp"
#include "service/job.hpp"
#include "service/rank_entry.hpp"
#include "service/result_cache.hpp"
#include "service/service.hpp"
