// Input hardening: validate and repair a raw vote batch before inference.
//
// Real crowdsourced exports are messy: votes referencing unknown object
// ids, workers answering the same task twice (or both ways), self-
// comparisons, and task graphs that fall apart into disconnected islands.
// The inference pipeline assumes none of that — malformed batches used to
// surface as contract-violation throws (or silent nonsense) deep inside a
// stage. `harden_votes` runs first instead: it drops what cannot be used,
// restricts the batch to the largest connected component of the
// comparison graph, compacts object/worker ids to the dense 0..k-1 range
// the engine expects, and reports every repair in a machine-readable
// `HardeningReport` so a degraded job can explain exactly what was lost.
//
// The pass is deterministic: drops depend only on batch order and ids,
// the component tie-break is the smallest member id, and compaction maps
// ids in ascending order.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/vote.hpp"
#include "graph/types.hpp"

namespace crowdrank::service {

/// Which repairs to apply. All on by default; switching one off lets the
/// corresponding defect flow through to the engine (which may throw —
/// callers opting out take back the crash risk hardening removes).
struct HardeningPolicy {
  bool drop_out_of_range = true;   ///< votes naming objects >= n
  bool drop_self_votes = true;     ///< votes with i == j
  bool drop_duplicates = true;     ///< repeated same-direction answers
  bool drop_conflicting = true;    ///< one worker voting both directions
  bool restrict_to_largest_component = true;
};

/// Machine-readable degradation report: what came in, what survived, and
/// why everything else was dropped.
struct HardeningReport {
  std::size_t input_votes = 0;
  std::size_t retained_votes = 0;
  std::size_t dropped_out_of_range = 0;
  std::size_t dropped_self = 0;
  std::size_t dropped_duplicate = 0;
  std::size_t dropped_conflicting = 0;
  std::size_t dropped_disconnected = 0;
  /// The requested object universe (the n hint, or max id + 1).
  std::size_t requested_objects = 0;
  /// Connected components of the usable comparison graph (isolated,
  /// never-compared objects are not counted as components).
  std::size_t component_count = 0;
  /// Objects of the requested universe that the retained batch cannot
  /// rank (never compared, or outside the largest component). Ascending.
  std::vector<VertexId> excluded_objects;

  friend bool operator==(const HardeningReport&,
                         const HardeningReport&) = default;

  bool repaired() const {
    return dropped_out_of_range + dropped_self + dropped_duplicate +
               dropped_conflicting + dropped_disconnected >
           0;
  }
  bool full_coverage() const { return excluded_objects.empty(); }
};

/// The repaired batch, rewritten onto dense ids. `objects[c]` /
/// `workers[c]` map each compact id back to the original; both ascend.
struct HardenedBatch {
  VoteBatch votes;                 ///< compact object and worker ids
  std::vector<VertexId> objects;   ///< compact -> original object id
  std::vector<WorkerId> workers;   ///< compact -> original worker id

  /// True when the batch can support any ranking at all.
  bool usable() const { return objects.size() >= 2 && !votes.empty(); }
};

/// Runs the hardening pass. `object_count` is the requested universe size
/// (0 = derive from the batch); `report` (optional) receives the full
/// degradation accounting. Never throws on malformed input — an
/// unusable batch simply comes back with `usable() == false`.
HardenedBatch harden_votes(const VoteBatch& votes, std::size_t object_count,
                           const HardeningPolicy& policy = {},
                           HardeningReport* report = nullptr);

}  // namespace crowdrank::service
