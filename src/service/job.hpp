// Job vocabulary for the batch ranking service.
//
// A `RankingJob` is one unit of work the service executes: a vote batch
// plus an inference config, a seed, and an optional deadline. Every job
// ends in exactly one structured `JobOutcome` — exceptions never escape
// to the caller — and carries a `JobResult` with the (possibly partial)
// ranking, the input-hardening report, and timing.
//
// `FaultPlan` is the deterministic fault-injection harness the robustness
// suite (tests/service) drives: it can drop or corrupt every Kth vote of
// a batch before hardening sees it, stall the pipeline at a chosen stage,
// or fail a job outright at a stage checkpoint. Plans are inert by
// default and cost nothing in production paths.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "crowd/vote.hpp"
#include "service/hardening.hpp"

namespace crowdrank::service {

/// How one job ended. Every submitted job terminates in exactly one of
/// these; there is no "exception escaped" state.
enum class JobOutcome {
  Completed,  ///< full ranking over every requested object
  Degraded,   ///< partial ranking of the largest reachable component
  TimedOut,   ///< deadline expired at a stage checkpoint
  Cancelled,  ///< cancelled while queued or at a stage checkpoint
  Rejected,   ///< never ran: invalid config, full queue, or shed
  Failed,     ///< a stage raised an error (stage + reason recorded)
};

/// Stable machine-readable outcome name ("completed", ...).
const char* outcome_name(JobOutcome outcome);

/// Per-request result-cache policy (service/result_cache.hpp owns the
/// cache itself; the enum lives here with the rest of the job vocabulary
/// so RankingJob and the artifact module need no cache dependency).
/// Default on a cacheless service/facade is exactly the cold path, so
/// the field is purely additive.
enum class CacheControl {
  Default,     ///< look up; on a miss compute and insert
  Bypass,      ///< ignore the cache entirely (no lookup, no insert)
  Refresh,     ///< skip the lookup; recompute and overwrite the entry
  RequireHit,  ///< serve only from cache; a miss is a Rejected outcome
};

/// Stable machine-readable policy name ("default", "require_hit", ...).
const char* cache_control_name(CacheControl control);

/// Deterministic fault-injection plan. All knobs compose; `only_job`
/// restricts a service-level plan to the Kth submission (0-based) so a
/// test can fail exactly one job of a stream.
struct FaultPlan {
  static constexpr std::size_t kEveryJob = static_cast<std::size_t>(-1);

  /// Drop every Kth vote (1-based stride; 0 = off) before hardening.
  std::size_t drop_every_kth_vote = 0;
  /// Corrupt every Kth vote (1-based stride; 0 = off): the vote's second
  /// object is pushed out of range, so hardening must repair it.
  std::size_t corrupt_every_kth_vote = 0;
  /// Stall for `stall_duration` when the named stage is about to start.
  std::optional<PipelineStage> stall_before;
  std::chrono::milliseconds stall_duration{0};
  /// Throw an injected failure when the named stage is about to start.
  std::optional<PipelineStage> fail_before;
  std::string fail_reason = "injected fault";
  /// Submission index this plan applies to (kEveryJob = all jobs).
  std::size_t only_job = kEveryJob;

  bool applies_to(std::size_t job_index) const {
    return only_job == kEveryJob || only_job == job_index;
  }
  bool inert() const {
    return drop_every_kth_vote == 0 && corrupt_every_kth_vote == 0 &&
           !stall_before.has_value() && !fail_before.has_value();
  }
};

/// One unit of work for the service.
struct RankingJob {
  VoteBatch votes;
  /// Number of objects (0 = derive from the highest vote id).
  std::size_t object_count = 0;
  /// Number of workers (0 = derive from the highest voter id).
  std::size_t worker_count = 0;
  InferenceConfig inference;
  std::uint64_t seed = 1;
  /// Per-job deadline measured from submission (0 = the service default;
  /// both 0 = no deadline). Checked cooperatively at stage checkpoints.
  std::chrono::milliseconds deadline{0};
  /// Result-cache policy for this job. Only meaningful on a service
  /// configured with a cache (ServiceConfig::cache); Default degrades to
  /// the cold path otherwise, and RequireHit without a cache is Rejected
  /// at submission.
  CacheControl cache_control = CacheControl::Default;
  /// Per-job injected faults (tests only; inert by default).
  FaultPlan fault;
};

/// A ranking that may cover only part of the requested objects: `order`
/// ranks the largest reachable component (original object ids, best
/// first); `excluded` lists the objects the evidence could not rank.
struct PartialRanking {
  std::vector<VertexId> order;
  std::vector<VertexId> excluded;

  friend bool operator==(const PartialRanking&,
                         const PartialRanking&) = default;

  bool complete() const { return excluded.empty(); }
};

/// Everything the service reports back for one job.
struct JobResult {
  std::uint64_t id = 0;
  JobOutcome outcome = JobOutcome::Failed;
  /// Stage the job ended in: Done for Completed/Degraded, otherwise the
  /// stage that timed out / was cancelled / failed.
  PipelineStage stage = PipelineStage::Validation;
  /// Human-readable detail for TimedOut/Cancelled/Rejected/Failed.
  std::string reason;
  PartialRanking ranking;
  HardeningReport hardening;
  double log_probability = 0.0;
  double queue_ms = 0.0;  ///< submission -> execution start
  double run_ms = 0.0;    ///< execution start -> outcome

  // Cache provenance (all-defaults on a cacheless service).
  /// True when the result was served from the result cache (the infer
  /// stage never ran for this job).
  bool served_from_cache = false;
  /// Hex content key of this job's work ("" when no key was derived).
  std::string artifact_key;
  /// Payload schema version of the cached-result artifact kind.
  std::uint32_t artifact_schema_version = 0;
};

}  // namespace crowdrank::service
