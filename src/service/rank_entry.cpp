#include "service/rank_entry.hpp"

#include <algorithm>
#include <utility>

#include "analysis/invariants.hpp"
#include "util/error.hpp"

namespace crowdrank::service {

namespace {

/// Records the last stage the engine entered (for Failed reporting) and
/// forwards checkpoints to any caller-supplied controller.
class StageTracker final : public StageControl {
 public:
  explicit StageTracker(StageControl* inner) : inner_(inner) {}

  void checkpoint(const StageSnapshot& snapshot) override {
    if (snapshot.next != PipelineStage::Done) {
      last_ = snapshot.next;
    }
    if (inner_ != nullptr) {
      inner_->checkpoint(snapshot);
    }
  }

  PipelineStage last() const { return last_; }

 private:
  StageControl* inner_;
  PipelineStage last_ = PipelineStage::TruthDiscovery;
};

void apply_cached(const CachedResult& cached, RankOutcome& out) {
  out.outcome = cached.outcome;
  out.stage = cached.stage;
  out.reason = cached.reason;
  out.ranking = cached.ranking;
  out.hardening = cached.hardening;
  out.log_probability = cached.log_probability;
}

CachedResult to_cached(const RankOutcome& out) {
  CachedResult cached;
  cached.outcome = out.outcome;
  cached.stage = out.stage;
  cached.reason = out.reason;
  cached.ranking = out.ranking;
  cached.hardening = out.hardening;
  cached.log_probability = out.log_probability;
  return cached;
}

}  // namespace

std::vector<ConfigError> validate_rank_params(const RankParams& params,
                                              bool require_votes) {
  std::vector<ConfigError> errors = params.inference->validate();
  if (require_votes && params.votes->empty()) {
    errors.push_back({"votes", "batch is empty"});
  }
  if (params.assignment != nullptr && params.repair) {
    // Hardening remaps object/worker ids, which would silently desync the
    // assignment's task keys; demand the strict path instead.
    errors.push_back(
        {"assignment", "requires repair = false (hardening remaps ids)"});
  }
  if (params.cache_control == CacheControl::RequireHit &&
      params.cache == nullptr) {
    errors.push_back(
        {"cache_control", "require_hit needs a cache to serve from"});
  }
  return errors;
}

RankOutcome run_ranking(const RankParams& params, Rng& rng) {
  RankOutcome out;

  // -- warm path: key derivation and lookup before any pipeline work ----
  const bool cacheable = params.cache != nullptr &&
                         params.assignment == nullptr &&
                         params.cache_control != CacheControl::Bypass;
  CacheKey key;
  if (cacheable) {
    key = compute_cache_key(*params.votes, params.object_count,
                            params.worker_count, params.seed,
                            *params.inference, params.repair,
                            params.hardening);
    out.cache.consulted = true;
    out.cache.key_hex = key.hex();
    if (params.cache_control != CacheControl::Refresh) {
      if (std::optional<CachedResult> hit = params.cache->lookup(key)) {
        apply_cached(*hit, out);
        out.cache.served_from_cache = true;
        return out;
      }
    }
    if (params.cache_control == CacheControl::RequireHit) {
      out.outcome = JobOutcome::Rejected;
      out.stage = PipelineStage::Validation;
      out.reason = "cache: no stored result for key " + out.cache.key_hex +
                   " (cache_control = require_hit)";
      return out;
    }
  }

  // -- cold path: the historical validate-already-done harden -> infer --
  StageTracker tracker(params.control);
  try {
    VoteBatch votes;
    std::vector<VertexId> object_map;  // compact -> original (empty = id)
    std::size_t object_count = params.object_count;
    std::size_t worker_count = params.worker_count;

    if (params.repair) {
      const HardenedBatch batch =
          harden_votes(*params.votes, params.object_count, *params.hardening,
                       &out.hardening);
      out.ranking.excluded = out.hardening.excluded_objects;
      if (params.on_hardened) {
        params.on_hardened(out.hardening);
      }
      if (!batch.usable()) {
        out.outcome = JobOutcome::Failed;
        out.stage = PipelineStage::Hardening;
        out.reason =
            "batch unusable after hardening: fewer than two connected "
            "objects remain";
        return out;
      }
      object_count = batch.objects.size();
      worker_count = std::max(worker_count, batch.workers.size());
      votes = batch.votes;
      object_map = batch.objects;
    } else {
      votes = *params.votes;
      for (const Vote& v : votes) {
        object_count = std::max({object_count, v.i + 1, v.j + 1});
        worker_count = std::max(worker_count, v.worker + 1);
      }
    }

    InferenceConfig inference = *params.inference;
    inference.control = &tracker;
    inference.check_invariants |= params.check_invariants;
    const InferenceEngine engine(inference);
    out.inference =
        params.assignment != nullptr
            ? engine.infer(votes, object_count, worker_count,
                           *params.assignment, rng)
            : engine.infer(votes, object_count, worker_count, rng);

    out.ranking.order.assign(out.inference->ranking.order().begin(),
                             out.inference->ranking.order().end());
    if (!object_map.empty()) {
      for (VertexId& v : out.ranking.order) {
        v = object_map[v];
      }
    }
    out.log_probability = out.inference->log_probability;
    out.stage = PipelineStage::Done;
    out.outcome = out.ranking.complete() ? JobOutcome::Completed
                                         : JobOutcome::Degraded;

    // The mapped partial ranking must be a permutation of the retained
    // objects (the engine has already validated the compact ranking when
    // invariant checks are on).
    if (!object_map.empty() && (inference.check_invariants ||
                                analysis::invariant_checks_enabled())) {
      std::vector<VertexId> sorted = out.ranking.order;
      std::sort(sorted.begin(), sorted.end());
      if (sorted != object_map) {
        throw Error("service invariant violated: partial ranking is "
                    "not a permutation of the retained objects");
      }
    }
  } catch (const std::exception& e) {
    // JobInterrupt is deliberately not a std::exception, so a service
    // abort passes straight through to the executor's handler.
    out.outcome = JobOutcome::Failed;
    out.stage = tracker.last();
    out.reason = e.what();
    out.inference.reset();
  }

  if (cacheable && out.ok()) {
    params.cache->insert(key, to_cached(out));
    out.cache.stored = true;
  }
  return out;
}

}  // namespace crowdrank::service
