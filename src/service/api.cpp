// Implementation of the crowdrank::api facade (src/crowdrank.hpp).
#include "crowdrank.hpp"

#include <algorithm>
#include <utility>

namespace crowdrank::api {

namespace {

/// Records the last stage the engine entered (for Failed reporting) and
/// forwards checkpoints to any caller-supplied controller.
class StageTracker final : public StageControl {
 public:
  explicit StageTracker(StageControl* inner) : inner_(inner) {}

  void checkpoint(const StageSnapshot& snapshot) override {
    if (snapshot.next != PipelineStage::Done) {
      last_ = snapshot.next;
    }
    if (inner_ != nullptr) {
      inner_->checkpoint(snapshot);
    }
  }

  PipelineStage last() const { return last_; }

 private:
  StageControl* inner_;
  PipelineStage last_ = PipelineStage::TruthDiscovery;
};

}  // namespace

std::vector<Error> validate(const Request& request) {
  std::vector<Error> errors = request.inference.validate();
  if (request.votes.empty()) {
    errors.push_back({"votes", "batch is empty"});
  }
  if (request.assignment != nullptr && request.repair) {
    // Hardening remaps object/worker ids, which would silently desync the
    // assignment's task keys; demand the strict path instead.
    errors.push_back(
        {"assignment", "requires repair = false (hardening remaps ids)"});
  }
  return errors;
}

Response rank(const Request& request) {
  Rng rng(request.seed);
  return rank(request, rng);
}

Response rank(const Request& request, Rng& rng) {
  Response response;
  response.errors = validate(request);
  if (!response.errors.empty()) {
    response.outcome = service::JobOutcome::Rejected;
    response.stage = PipelineStage::Validation;
    response.reason =
        "invalid request: " + format_config_errors(response.errors);
    return response;
  }

  StageTracker tracker(request.inference.control);
  try {
    VoteBatch votes;
    std::vector<VertexId> object_map;  // compact -> original (empty = id)
    std::size_t object_count = request.object_count;
    std::size_t worker_count = request.worker_count;

    if (request.repair) {
      service::HardenedBatch batch =
          service::harden_votes(request.votes, request.object_count,
                                request.hardening, &response.hardening);
      response.ranking.excluded = response.hardening.excluded_objects;
      if (!batch.usable()) {
        response.outcome = service::JobOutcome::Failed;
        response.stage = PipelineStage::Hardening;
        response.reason =
            "batch unusable after hardening: fewer than two connected "
            "objects remain";
        return response;
      }
      object_count = batch.objects.size();
      worker_count = std::max(worker_count, batch.workers.size());
      votes = std::move(batch.votes);
      object_map = std::move(batch.objects);
    } else {
      votes = request.votes;
      for (const Vote& v : votes) {
        object_count = std::max({object_count, v.i + 1, v.j + 1});
        worker_count = std::max(worker_count, v.worker + 1);
      }
    }

    InferenceConfig inference = request.inference;
    inference.control = &tracker;
    const InferenceEngine engine(inference);
    response.inference =
        request.assignment != nullptr
            ? engine.infer(votes, object_count, worker_count,
                           *request.assignment, rng)
            : engine.infer(votes, object_count, worker_count, rng);

    response.ranking.order.assign(
        response.inference->ranking.order().begin(),
        response.inference->ranking.order().end());
    if (!object_map.empty()) {
      for (VertexId& v : response.ranking.order) {
        v = object_map[v];
      }
    }
    response.log_probability = response.inference->log_probability;
    response.stage = PipelineStage::Done;
    response.outcome = response.ranking.complete()
                           ? service::JobOutcome::Completed
                           : service::JobOutcome::Degraded;
  } catch (const std::exception& e) {
    response.outcome = service::JobOutcome::Failed;
    response.stage = tracker.last();
    response.reason = e.what();
  }
  return response;
}

}  // namespace crowdrank::api
