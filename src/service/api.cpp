// Implementation of the crowdrank::api facade (service/api.hpp): request
// validation plus translation onto the shared rank entry the service's
// executors use too (service/rank_entry.hpp).
#include "service/api.hpp"

#include <utility>

#include "core/pipeline.hpp"
#include "service/rank_entry.hpp"

namespace crowdrank::api {

namespace {

service::RankParams params_from(const Request& request) {
  service::RankParams params;
  params.votes = &request.votes;
  params.object_count = request.object_count;
  params.worker_count = request.worker_count;
  params.seed = request.seed;
  params.inference = &request.inference;
  params.repair = request.repair;
  params.hardening = &request.hardening;
  params.assignment = request.assignment;
  // The facade forwards the caller's controller; the tracker inside the
  // entry records stages for Failed reporting either way.
  params.control = request.inference.control;
  params.cache = request.cache;
  params.cache_control = request.cache_control;
  return params;
}

}  // namespace

std::vector<Error> validate(const Request& request) {
  return service::validate_rank_params(params_from(request),
                                       /*require_votes=*/true);
}

Response rank(const Request& request) {
  Rng rng(request.seed);
  return rank(request, rng);
}

Response rank(const Request& request, Rng& rng) {
  Response response;
  response.errors = validate(request);
  if (!response.errors.empty()) {
    response.outcome = service::JobOutcome::Rejected;
    response.stage = PipelineStage::Validation;
    response.reason =
        "invalid request: " + format_config_errors(response.errors);
    return response;
  }

  service::RankOutcome out = service::run_ranking(params_from(request), rng);
  response.outcome = out.outcome;
  response.stage = out.stage;
  response.reason = std::move(out.reason);
  response.ranking = std::move(out.ranking);
  response.hardening = std::move(out.hardening);
  response.log_probability = out.log_probability;
  response.inference = std::move(out.inference);
  response.served_from_cache = out.cache.served_from_cache;
  response.artifact_key = std::move(out.cache.key_hex);
  response.artifact_schema_version =
      out.cache.consulted ? service::artifact::kRankedResultSchema : 0;
  return response;
}

}  // namespace crowdrank::api
