// Content-addressed result cache: warm serving for repeated ranking work.
//
// Every completed job is keyed by a stable 128-bit content hash of
// everything that can change its output — the vote batch (order included:
// the engine consumes votes in batch order), the object/worker universe,
// the seed, the hardening policy, and the output-affecting subset of the
// inference config (core/config_hash.hpp). A resubmission of the same
// work hits the cache and returns the stored `RankedResult` without
// touching validate→harden→infer; the determinism contract (results
// depend only on job + seed) is exactly what makes the stored answer
// bitwise-identical to a recomputation, and tests/core/test_determinism
// pins that.
//
// Two tiers:
//  * Memory: bounded LRU (capacity entries, strict), O(log n) lookup.
//  * Disk (optional): every insertion also lands as a framed artifact
//    `<dir>/<key-hex>.crart` through service/artifact.hpp, and a memory
//    miss falls through to the disk before counting as a miss — this is
//    what survives process restarts and what `crowdrank index` /
//    `crowdrank query` share. Corrupted or version-mismatched disk
//    entries are rejected by the artifact reader and simply miss.
//
// Eviction drops memory entries only; the disk tier is the persistent
// record and is never garbage-collected here. All operations are
// thread-safe (the service's executors share one cache) and all metrics
// land on the optional `metrics::Registry` as `service.cache.*` counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "crowd/vote.hpp"
#include "service/artifact.hpp"
#include "service/hardening.hpp"
#include "service/job.hpp"
#include "util/hash.hpp"
#include "util/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank::service {

/// The cache key is a StableHash digest; its hex() form is the artifact
/// key callers see in responses and on disk.
using CacheKey = HashDigest;

/// What a hit returns: the deterministic deliverable of a finished job.
using CachedResult = artifact::RankedResult;

/// Bump when the key derivation below changes shape (the config subset
/// has its own schema constant in core/config_hash.hpp).
/// v2: the hardening policy enters the hash only when `repair` is true —
/// the strict path never consults it, so it is not content there.
inline constexpr std::uint64_t kCacheKeySchema = 2;

/// Derives the content key. Votes are hashed in batch order — the engine
/// is order-sensitive, so reordered batches are different work, not the
/// same entry. `policy` is required when `repair` is true and ignored
/// (may be null) otherwise: hardening does not run on the strict path,
/// so it cannot affect the output there.
CacheKey compute_cache_key(const VoteBatch& votes, std::size_t object_count,
                           std::size_t worker_count, std::uint64_t seed,
                           const InferenceConfig& inference, bool repair,
                           const HardeningPolicy* policy);

struct ResultCacheConfig {
  /// Memory-tier bound (entries, >= 1). Exceeding it evicts strict LRU.
  std::size_t capacity = 64;
  /// Disk tier directory; empty = memory-only. Created if missing.
  std::string disk_dir;
  /// Optional metrics plane: `service.cache.{hit,miss,eviction,insert,
  /// disk_hit,disk_write,disk_error}` counters land here.
  metrics::Registry* metrics = nullptr;
};

/// Monotonic operation counters, readable at any time.
struct CacheStats {
  std::uint64_t hits = 0;        ///< memory-tier hits
  std::uint64_t misses = 0;      ///< both tiers missed
  std::uint64_t evictions = 0;   ///< memory entries dropped by the bound
  std::uint64_t insertions = 0;  ///< entries stored (insert + disk promote)
  std::uint64_t disk_hits = 0;   ///< memory missed, disk served
  std::uint64_t disk_writes = 0; ///< artifacts persisted
  std::uint64_t disk_errors = 0; ///< unreadable/corrupt/unwritable artifacts
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheConfig config = {});
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  const ResultCacheConfig& config() const { return config_; }

  /// Memory tier first (refreshing LRU order), then the disk tier (a disk
  /// hit is promoted into memory). Disengaged = miss on both. Disk reads
  /// happen outside the cache mutex, so one cold lookup never stalls
  /// concurrent executors.
  std::optional<CachedResult> lookup(const CacheKey& key);

  /// Stores (or overwrites) the entry, evicting LRU past capacity, and
  /// persists it to the disk tier when one is configured (the disk write
  /// also runs outside the mutex).
  void insert(const CacheKey& key, const CachedResult& result);

  /// Entries currently resident in the memory tier.
  std::size_t size() const;

  CacheStats stats() const;

  /// Where a key's artifact lives on the disk tier: `<dir>/<hex>.crart`.
  static std::string artifact_path(const std::string& dir,
                                   const CacheKey& key);

 private:
  void count(const char* event);
  void store_in_memory(const CacheKey& key, const CachedResult& result)
      CR_REQUIRES(mutex_);

  using LruList = std::list<std::pair<CacheKey, CachedResult>>;

  const ResultCacheConfig config_;
  mutable Mutex mutex_;
  LruList lru_ CR_GUARDED_BY(mutex_);  ///< front = most recent
  std::map<CacheKey, LruList::iterator> index_ CR_GUARDED_BY(mutex_);
  CacheStats stats_ CR_GUARDED_BY(mutex_);
};

}  // namespace crowdrank::service
