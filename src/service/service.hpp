// RankingService: a fault-tolerant batch-inference job engine.
//
// The service owns a set of job-executor threads, a bounded FIFO queue
// with configurable backpressure, and the lifecycle of every submitted
// `RankingJob`:
//
//     submit -> [Queued] -> [Running: hardening -> steps 1-4] -> Done
//                  |  \                |
//               cancel shed      deadline / cancel / stage error
//                  |    \               |
//              Cancelled Rejected   TimedOut / Cancelled / Failed
//
// Robustness contract:
//  * No exception escapes a job: every terminal state is a structured
//    `JobResult` (outcome, stage, reason, degradation report).
//  * Deadlines and cancellation are cooperative, enforced at the stage
//    checkpoints of core/checkpoint.hpp, so an aborted job unwinds
//    between stages and its executor immediately serves the next job —
//    a timed-out job never wedges the pool.
//  * Malformed batches are repaired by service/hardening.hpp; a job that
//    cannot produce a full ranking returns a partial ranking of the
//    largest reachable component with outcome Degraded.
//  * Results are deterministic per job (content depends only on the job
//    and its seed, never on worker count or interleaving), and `drain()`
//    reports them in submission order.
//
// Each executor thread holds a `InlineRegion`, so the engine's internal
// parallel kernels run inline on the job's own lane: throughput scales by
// running jobs concurrently instead of serializing kernel-level regions
// on the global pool. Each executor also owns a monotonic `Arena`
// (util/arena.hpp) bound around every job it runs and rewound afterwards,
// so a warm executor's per-job matrix/graph scratch is pointer bumps into
// retained blocks instead of steady-state malloc traffic.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "service/hardening.hpp"
#include "service/job.hpp"
#include "service/result_cache.hpp"
#include "util/arena.hpp"

namespace crowdrank::trace {
class TraceSink;
}  // namespace crowdrank::trace

namespace crowdrank::obs {
class Telemetry;
}  // namespace crowdrank::obs

namespace crowdrank::service {

/// What to do with a submission that finds the queue full.
enum class QueuePolicy {
  RejectNew,   ///< the new job is Rejected ("queue full")
  ShedOldest,  ///< the oldest queued job is Rejected ("shed"); new enters
};

struct ServiceConfig {
  std::size_t worker_count = 1;     ///< job-executor threads (>= 1)
  std::size_t queue_capacity = 64;  ///< max queued (not running) jobs
  QueuePolicy policy = QueuePolicy::RejectNew;
  /// Deadline for jobs that do not set their own (0 = none).
  std::chrono::milliseconds default_deadline{0};
  HardeningPolicy hardening;
  /// Runs the stage invariant validators for every job (ORed with each
  /// job's own `inference.check_invariants`).
  bool check_invariants = false;
  /// Service-level fault plan (tests): merged into any job whose
  /// submission index it applies to.
  FaultPlan fault;
  /// Optional service-lifetime sink: per-job spans, queue-depth gauge,
  /// outcome/shed counters, and latency histograms land here. The service
  /// never installs it as the process-global sink — callers wanting the
  /// engine's internal spans too wrap the run in a trace::ScopedSink.
  trace::TraceSink* trace = nullptr;
  /// Optional live telemetry plane (src/obs): flight-recorder events,
  /// stage/latency metrics, periodic snapshots, and per-job postmortems
  /// for every Failed / TimedOut / Degraded job. Purely observational —
  /// rankings are bitwise-identical with telemetry on or off. Must
  /// outlive the service; construct with `executor_count == worker_count`.
  obs::Telemetry* telemetry = nullptr;
  /// Optional shared result cache (must outlive the service). When set,
  /// each job's cache_control decides whether its content key is looked
  /// up before the pipeline runs — a hit settles the job without the
  /// infer stage and is bitwise-identical to recomputation. Null keeps
  /// every job on the historical cold path.
  ResultCache* cache = nullptr;
};

/// Aggregate counters, readable at any time.
struct ServiceStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t degraded = 0;
  std::size_t timed_out = 0;
  std::size_t cancelled = 0;
  std::size_t rejected = 0;  ///< invalid config, full queue, or shed
  std::size_t shed = 0;      ///< subset of rejected: evicted by ShedOldest
  std::size_t failed = 0;
  std::size_t queue_depth = 0;  ///< currently queued (not running)
};

class RankingService {
 public:
  explicit RankingService(ServiceConfig config = {});
  RankingService(const RankingService&) = delete;
  RankingService& operator=(const RankingService&) = delete;
  /// Cancels queued jobs, asks running jobs to stop at their next
  /// checkpoint, and joins the executors.
  ~RankingService();

  const ServiceConfig& config() const;

  /// Enqueues a job and returns its ticket id immediately. A job that
  /// cannot be accepted (invalid config per InferenceConfig::validate(),
  /// or a full queue under RejectNew) still gets a ticket whose result is
  /// already Rejected — `wait` explains why.
  std::uint64_t submit(RankingJob job);

  /// Requests cancellation. Queued jobs settle as Cancelled without
  /// running; a running job stops at its next stage checkpoint. Returns
  /// false when the job is unknown or already finished.
  bool cancel(std::uint64_t id);

  /// Blocks until the job finishes and returns its result.
  JobResult wait(std::uint64_t id);

  /// Waits for every job submitted so far; results in submission order.
  std::vector<JobResult> drain();

  ServiceStats stats() const;

  /// Allocator statistics summed over the executors' per-job arenas (see
  /// util/arena.hpp). Each executor binds its arena around every job it
  /// runs and rewinds it afterwards, so after the first few jobs warm the
  /// blocks, `system_allocs` stays flat while jobs keep completing —
  /// bench/service_throughput asserts exactly that steady state.
  ArenaStats arena_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdrank::service
