// The one internal entry point for executing ranking work.
//
// Before the artifact PR, api::rank and RankingService::run_job each
// built their own validate/harden/infer plumbing; adding the result
// cache to both would have meant two key derivations that could drift
// apart — precisely the bug class a content-addressed cache cannot
// tolerate. `run_ranking` is now the single implementation both paths
// call:
//
//     cache lookup (per CacheControl) ──hit──> stored RankedResult
//         │ miss / no cache
//     harden (policy) -> infer (engine) -> map ids -> invariants
//         │ ok()
//     cache insert
//
// The callers keep their own personalities around it: the facade
// validates the request shape first and forwards its caller-supplied
// StageControl; the service polls its JobControl for the Hardening
// checkpoint, applies fault-plan vote mutations, and nulls the per-job
// trace sink before delegating. Abort semantics are preserved exactly:
// `run_ranking` maps std::exception onto a structured Failed outcome but
// deliberately lets the service's JobInterrupt (not a std::exception)
// propagate to the executor that threw it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "crowd/hit.hpp"
#include "crowd/vote.hpp"
#include "service/hardening.hpp"
#include "service/job.hpp"
#include "service/result_cache.hpp"
#include "util/rng.hpp"

namespace crowdrank::service {

/// Everything one execution needs, borrowed from the caller (pointers
/// must outlive the call). Defaults reproduce the facade's defaults.
struct RankParams {
  const VoteBatch* votes = nullptr;           ///< required
  std::size_t object_count = 0;               ///< 0 = derive
  std::size_t worker_count = 0;               ///< 0 = derive
  std::uint64_t seed = 1;                     ///< cache-key component
  const InferenceConfig* inference = nullptr; ///< required
  bool repair = true;
  /// Required when `repair`; may stay null on the strict path (it never
  /// runs there and does not enter the cache key).
  const HardeningPolicy* hardening = nullptr;
  /// Strict-path (repair = false) per-task worker assignment. Requests
  /// carrying one are never cached.
  const HitAssignment* assignment = nullptr;
  /// Receives every engine stage checkpoint (the caller's controller may
  /// throw to abort between stages). Not consulted on a cache hit.
  StageControl* control = nullptr;
  /// ORed into the engine's invariant switch (service-level override).
  bool check_invariants = false;
  ResultCache* cache = nullptr;
  CacheControl cache_control = CacheControl::Default;
  /// Observe-only: fires right after the hardening pass with its report
  /// (the service wires telemetry here). Never fires on a cache hit.
  std::function<void(const HardeningReport&)> on_hardened;
};

/// What the cache layer did for one execution, for provenance fields.
struct CacheTrace {
  bool consulted = false;         ///< a content key was derived
  bool served_from_cache = false; ///< the answer is the stored artifact
  bool stored = false;            ///< this execution inserted its result
  std::string key_hex;            ///< hex content key ("" = no key)
};

/// The structured result both callers translate into their own currency
/// (api::Response / JobResult).
struct RankOutcome {
  JobOutcome outcome = JobOutcome::Failed;
  PipelineStage stage = PipelineStage::Validation;
  std::string reason;
  PartialRanking ranking;  ///< original object ids
  HardeningReport hardening;
  double log_probability = 0.0;
  /// Engine diagnostics; engaged only on successful cold runs.
  std::optional<InferenceResult> inference;
  CacheTrace cache;

  bool ok() const {
    return outcome == JobOutcome::Completed ||
           outcome == JobOutcome::Degraded;
  }
};

/// Admissibility checks shared by the facade and the service submit path.
/// `require_votes` adds the facade's empty-batch rejection (the service
/// historically lets an empty batch run and fail hardening, and keeps
/// that behavior).
std::vector<ConfigError> validate_rank_params(const RankParams& params,
                                              bool require_votes);

/// Executes the sequence above. Never throws except to propagate a
/// caller-controller abort (anything not derived from std::exception,
/// i.e. the service's JobInterrupt).
RankOutcome run_ranking(const RankParams& params, Rng& rng);

}  // namespace crowdrank::service
