#include "service/hardening.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace crowdrank::service {

namespace {

/// Union-find over object ids, used for the component restriction.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = i;
    }
  }

  std::size_t find(std::size_t v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    // Smaller root wins so the representative is the least member id —
    // this keeps the largest-component tie-break deterministic.
    if (b < a) {
      std::swap(a, b);
    }
    parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

HardenedBatch harden_votes(const VoteBatch& votes, std::size_t object_count,
                           const HardeningPolicy& policy,
                           HardeningReport* report) {
  HardeningReport local;
  HardeningReport& r = report != nullptr ? *report : local;
  r = HardeningReport{};
  r.input_votes = votes.size();

  // Resolve the object universe: the caller's hint, or the highest id
  // mentioned by any vote.
  std::size_t n = object_count;
  if (n == 0) {
    for (const Vote& v : votes) {
      n = std::max({n, v.i + 1, v.j + 1});
    }
  }
  r.requested_objects = n;

  // Pass 1 — per-vote filters: out-of-range and self votes.
  VoteBatch kept;
  kept.reserve(votes.size());
  for (const Vote& v : votes) {
    if (policy.drop_out_of_range && (v.i >= n || v.j >= n)) {
      ++r.dropped_out_of_range;
      continue;
    }
    if (policy.drop_self_votes && v.i == v.j) {
      ++r.dropped_self;
      continue;
    }
    kept.push_back(v);
  }

  // Pass 2 — per-(worker, task) repairs. A worker answering the same task
  // in both directions contradicts themselves: all their votes on that
  // task are dropped. Repeated same-direction answers keep only the
  // first occurrence. The direction mask is relative to the canonical
  // edge so (i,j,prefers_i) and (j,i,!prefers_i) count as one direction.
  if (policy.drop_duplicates || policy.drop_conflicting) {
    std::map<std::pair<WorkerId, Edge>, unsigned> direction_mask;
    for (const Vote& v : kept) {
      const Edge task = Edge::canonical(v.i, v.j);
      const bool first_preferred = v.prefers_i == (v.i == task.first);
      direction_mask[{v.worker, task}] |= first_preferred ? 1u : 2u;
    }
    std::map<std::pair<WorkerId, Edge>, bool> seen;
    VoteBatch deduped;
    deduped.reserve(kept.size());
    for (const Vote& v : kept) {
      const Edge task = Edge::canonical(v.i, v.j);
      const auto key = std::make_pair(v.worker, task);
      if (policy.drop_conflicting && direction_mask[key] == 3u) {
        ++r.dropped_conflicting;
        continue;
      }
      if (policy.drop_duplicates) {
        bool& already = seen[key];
        if (already) {
          ++r.dropped_duplicate;
          continue;
        }
        already = true;
      }
      deduped.push_back(v);
    }
    kept = std::move(deduped);
  }

  // Pass 3 — connectivity: a ranking can only relate objects connected by
  // evidence (smoothing makes every retained edge bidirectional, so
  // undirected connectivity is the right reachability notion). Restrict
  // to the largest component; ties break toward the component containing
  // the smallest object id.
  std::vector<bool> retained_object(n, false);
  if (n > 0 && !kept.empty()) {
    DisjointSets sets(n);
    std::vector<bool> touched(n, false);
    for (const Vote& v : kept) {
      sets.unite(v.i, v.j);
      touched[v.i] = true;
      touched[v.j] = true;
    }
    std::map<std::size_t, std::size_t> component_size;
    for (std::size_t v = 0; v < n; ++v) {
      if (touched[v]) {
        ++component_size[sets.find(v)];
      }
    }
    r.component_count = component_size.size();
    std::size_t best_root = n;
    std::size_t best_size = 0;
    for (const auto& [root, size] : component_size) {
      if (size > best_size) {  // first max in ascending root order wins
        best_root = root;
        best_size = size;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      retained_object[v] =
          touched[v] &&
          (!policy.restrict_to_largest_component ||
           sets.find(v) == best_root);
    }
    if (policy.restrict_to_largest_component) {
      VoteBatch connected;
      connected.reserve(kept.size());
      for (const Vote& v : kept) {
        if (retained_object[v.i] && retained_object[v.j]) {
          connected.push_back(v);
        } else {
          ++r.dropped_disconnected;
        }
      }
      kept = std::move(connected);
    }
  }

  // Compaction: rewrite object and worker ids onto dense ascending
  // ranges. Worker identity does not survive into the ranking, so the
  // remap is invisible to callers; the report keeps the original ids.
  HardenedBatch batch;
  std::vector<VertexId> object_map(n, n);
  for (std::size_t v = 0; v < n; ++v) {
    if (retained_object[v]) {
      object_map[v] = batch.objects.size();
      batch.objects.push_back(v);
    } else {
      r.excluded_objects.push_back(v);
    }
  }
  std::map<WorkerId, WorkerId> worker_map;
  for (const Vote& v : kept) {
    worker_map.emplace(v.worker, 0);
  }
  for (auto& [original, compact] : worker_map) {
    compact = batch.workers.size();
    batch.workers.push_back(original);
  }
  batch.votes.reserve(kept.size());
  for (const Vote& v : kept) {
    batch.votes.push_back(Vote{worker_map.at(v.worker), object_map[v.i],
                               object_map[v.j], v.prefers_i});
  }
  r.retained_votes = batch.votes.size();
  return batch;
}

}  // namespace crowdrank::service
