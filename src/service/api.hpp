// The stable crowdrank::api facade: one Request/Response pair wrapping
// the validate → harden → infer sequence (plus, since the artifact PR,
// the result cache's warm path). Declarations live here in src/service/
// — the facade is implemented on the service layer's shared rank entry
// (service/rank_entry.hpp), which RankingService executes too, so the
// two paths cannot drift — and the umbrella header (src/crowdrank.hpp)
// re-exports them for external consumers.
//
//     crowdrank::api::Request request;
//     request.votes = ...;            // raw (possibly messy) vote batch
//     request.object_count = n;
//     crowdrank::api::Response response = crowdrank::api::rank(request);
//     if (response.ok()) use(response.ranking.order);
//
// `rank` never throws on malformed input: repairs and degradations are
// reported structurally (Response::outcome, Response::hardening), the
// same contract the batch service (service/service.hpp) gives each job.
//
// Warm serving: point `request.cache` at a service::ResultCache and a
// repeat of the same work returns the stored answer without running the
// engine; `cache_control` picks the per-request policy and the response
// carries full provenance (`served_from_cache`, `artifact_key`). The
// defaults (no cache) reproduce the cacheless behavior bitwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "crowd/hit.hpp"
#include "crowd/vote.hpp"
#include "service/hardening.hpp"
#include "service/job.hpp"
#include "service/result_cache.hpp"
#include "util/rng.hpp"

namespace crowdrank::api {

/// Structured validation/configuration error: the facade's error currency
/// is core's ConfigError (field + message), never an exception.
using Error = ConfigError;

/// One ranking request. Defaults give the paper's pipeline configuration;
/// `repair` controls whether the input-hardening pass may drop/restrict
/// votes (turn it off to demand the batch be used exactly as given, which
/// restores the engine's strict-contract behavior).
struct Request {
  VoteBatch votes;
  /// Number of objects (0 = derive from the highest vote id).
  std::size_t object_count = 0;
  /// Number of workers (0 = derive from the batch).
  std::size_t worker_count = 0;
  std::uint64_t seed = 1;
  InferenceConfig inference;
  /// Apply the input-hardening pass (validate/repair/restrict) first.
  bool repair = true;
  service::HardeningPolicy hardening;
  /// Optional per-task worker assignment for smoothing. When null, the
  /// workers consulted per task are exactly those who voted on it.
  /// Assignment-carrying requests are never cached (the assignment is not
  /// part of the content key).
  const HitAssignment* assignment = nullptr;
  /// Optional result cache (caller-owned, must outlive the call). Null —
  /// the default — is exactly the historical cold path.
  service::ResultCache* cache = nullptr;
  service::CacheControl cache_control = service::CacheControl::Default;
};

/// The structured answer: a (possibly partial) ranking plus the full
/// degradation accounting. No exception escapes `rank`.
struct Response {
  service::JobOutcome outcome = service::JobOutcome::Failed;
  /// Stage the request ended in (Done on success).
  PipelineStage stage = PipelineStage::Validation;
  /// Detail for Rejected/Failed outcomes.
  std::string reason;
  /// Ranking over original object ids; `excluded` lists objects the
  /// evidence could not rank (empty on Completed).
  service::PartialRanking ranking;
  service::HardeningReport hardening;
  double log_probability = 0.0;
  /// Full engine output (step diagnostics, timings) for the compact
  /// repaired batch; engaged only when `ok()` — and only on cold runs:
  /// a cache hit carries the deliverable, not engine internals (use
  /// CacheControl::Bypass to force a diagnostic run).
  std::optional<InferenceResult> inference;
  /// Validation errors (outcome Rejected when non-empty).
  std::vector<Error> errors;

  // Cache provenance (all-defaults when no cache was consulted).
  /// True when the answer came from the cache instead of the engine.
  bool served_from_cache = false;
  /// Hex content key of this work (set whenever a key was derived, hit
  /// or miss) — the artifact's disk-tier filename stem.
  std::string artifact_key;
  /// Payload schema version of the cached-result artifact kind.
  std::uint32_t artifact_schema_version = 0;

  bool ok() const {
    return outcome == service::JobOutcome::Completed ||
           outcome == service::JobOutcome::Degraded;
  }
};

/// Validates a request without running it: config range checks plus basic
/// batch shape checks. Empty result = admissible.
std::vector<Error> validate(const Request& request);

/// Runs the facade sequence (validate -> cache lookup -> harden -> infer)
/// with a fresh Rng seeded from `request.seed`.
Response rank(const Request& request);

/// As above but threading the caller's Rng — for harnesses that share one
/// generator across many calls (benches, simulations). A cache hit does
/// not draw from the Rng (it runs no engine), so harnesses interleaving
/// cached and uncached calls on one generator should use Bypass.
Response rank(const Request& request, Rng& rng);

}  // namespace crowdrank::api
