// Versioned binary artifacts: the persistence format of the serving layer.
//
// Everything the pipeline computes from a vote batch — the batch itself,
// the comparison TaskGraph, the smoothed PreferenceGraph, propagation
// closures (dense or CSR), and finished ranking results — can be written
// as a self-describing framed artifact and read back in another process,
// which is what makes `crowdrank index` / `crowdrank query` and the
// result cache's disk tier possible.
//
// Frame layout (all integers little-endian, fixed width):
//
//     offset  size  field
//          0     4  magic "CRAF"
//          4     4  format version (kFormatVersion)
//          8     4  artifact kind (Kind)
//         12     4  per-kind payload schema version
//         16     8  payload size in bytes
//         24     N  payload (kind-specific, see artifact.cpp)
//       24+N     8  checksum: StableHash64 over bytes [4, 24 + N)
//
// Content is build-stamp independent: no timestamps, hostnames, versions
// of the writing binary, or pointers ever enter a frame, so the same
// logical value encodes to the same bytes forever (the golden files in
// tests/data/ pin this byte-exactly).
//
// Error contract: readers never throw. Every corruption — short reads,
// wrong magic, a future format or schema version, a flipped bit caught by
// the checksum, malformed payloads — comes back as a structured
// `ArtifactError` inside `Result<T>`. Writers never fail short of the
// filesystem; `write_file` reports IO problems the same structured way
// and writes atomically (temp file + rename), so a crashed writer can
// never leave a half-written artifact under the final name.
//
// This module is the single sanctioned filesystem-writing site inside
// src/service/ — the `fs-write-in-service` lint rule holds every other
// service source to that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crowd/vote.hpp"
#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "service/job.hpp"
#include "util/matrix.hpp"
#include "util/sparse_matrix.hpp"

namespace crowdrank::service::artifact {

inline constexpr std::uint32_t kFormatVersion = 1;

/// What a frame carries. Values are stable on-disk identifiers.
enum class Kind : std::uint32_t {
  VoteBatch = 1,
  TaskGraph = 2,
  PreferenceGraph = 3,
  SparseMatrix = 4,
  DenseMatrix = 5,
  RankedResult = 6,
};

const char* kind_name(Kind kind);

/// Per-kind payload schema versions: bump one when its payload layout
/// changes, and old frames of that kind are rejected (BadSchemaVersion)
/// instead of being misread.
inline constexpr std::uint32_t kVoteBatchSchema = 1;
inline constexpr std::uint32_t kTaskGraphSchema = 1;
inline constexpr std::uint32_t kPreferenceGraphSchema = 1;
inline constexpr std::uint32_t kSparseMatrixSchema = 1;
inline constexpr std::uint32_t kDenseMatrixSchema = 1;
inline constexpr std::uint32_t kRankedResultSchema = 1;

enum class ErrorCode : std::uint32_t {
  None = 0,
  TooSmall,          ///< shorter than the fixed frame overhead
  BadMagic,          ///< not an artifact file
  BadFormatVersion,  ///< written by an incompatible format revision
  Truncated,         ///< declared payload size disagrees with the bytes
  ChecksumMismatch,  ///< bytes corrupted after writing
  WrongKind,         ///< valid frame, but not the requested artifact kind
  BadSchemaVersion,  ///< payload layout revision this reader cannot parse
  BadPayload,        ///< checksum passed but the payload violates its spec
  IoError,           ///< filesystem-level read/write failure
};

const char* error_code_name(ErrorCode code);

/// One structured artifact failure. `code == None` means no error.
struct ArtifactError {
  ErrorCode code = ErrorCode::None;
  std::string detail;

  bool ok() const { return code == ErrorCode::None; }
  /// "checksum_mismatch: stored 0x... != computed 0x..." rendering.
  std::string to_string() const;
};

/// Decode outcome: exactly one of `value` / `error` is meaningful.
template <typename T>
struct Result {
  std::optional<T> value;
  ArtifactError error;

  bool ok() const { return value.has_value(); }
};

/// An `api::Response`-shaped finished result: the deterministic payload a
/// warm cache hit must reproduce bitwise. Volatile observations (timings,
/// queue latencies) are deliberately absent — they describe a run, not
/// the answer — as is the step-diagnostics InferenceResult, which callers
/// wanting engine internals recompute with CacheControl::Bypass.
struct RankedResult {
  JobOutcome outcome = JobOutcome::Failed;
  PipelineStage stage = PipelineStage::Validation;
  std::string reason;
  PartialRanking ranking;  ///< original object ids
  HardeningReport hardening;
  double log_probability = 0.0;

  friend bool operator==(const RankedResult&, const RankedResult&) = default;
};

// -- encoding (infallible: any in-memory value frames cleanly) ----------

std::string encode(const VoteBatch& votes);
std::string encode(const TaskGraph& graph);
std::string encode(const PreferenceGraph& graph);
std::string encode(const SparseMatrix& matrix);
std::string encode(const Matrix& matrix);
std::string encode(const RankedResult& result);

// -- decoding (never throws; structured rejection) ----------------------

Result<VoteBatch> decode_votes(std::string_view bytes);
Result<TaskGraph> decode_task_graph(std::string_view bytes);
Result<PreferenceGraph> decode_preference_graph(std::string_view bytes);
Result<SparseMatrix> decode_sparse_matrix(std::string_view bytes);
Result<Matrix> decode_matrix(std::string_view bytes);
Result<RankedResult> decode_result(std::string_view bytes);

/// Kind of a framed artifact without decoding its payload (frame checks
/// up to and including the checksum still apply).
Result<Kind> peek_kind(std::string_view bytes);

// -- file tier -----------------------------------------------------------

/// Atomic write: the bytes land under `path + ".tmp"` first and are
/// renamed into place, so readers never observe a partial artifact.
/// Engaged return = failure.
std::optional<ArtifactError> write_file(const std::string& path,
                                        std::string_view bytes);

/// Whole-file read. Missing or unreadable files are IoError (the caller
/// decides whether that is a cache miss or a hard failure).
Result<std::string> read_file(const std::string& path);

/// Creates `path` (and parents) if missing. Engaged return = failure.
/// Lives here so directory setup stays inside the sanctioned
/// filesystem-writing module.
std::optional<ArtifactError> ensure_directory(const std::string& path);

namespace detail {
/// Frames an arbitrary payload (tests use this to forge kind/schema
/// combinations with valid checksums; encoders use it internally).
std::string frame(Kind kind, std::uint32_t schema, std::string_view payload);
}  // namespace detail

}  // namespace crowdrank::service::artifact
