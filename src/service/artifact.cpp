#include "service/artifact.hpp"

#include <bit>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace crowdrank::service::artifact {

namespace {

constexpr std::size_t kHeaderSize = 24;  // magic + 3 * u32 + u64
constexpr std::size_t kChecksumSize = 8;
constexpr std::size_t kMinFrameSize = kHeaderSize + kChecksumSize;
/// Separates frame checksums from every other StableHash key space.
constexpr std::uint64_t kChecksumSeed = 0x43524146;  // "CRAF"
/// Graph decoders allocate per-vertex bookkeeping (dense n x n for
/// PreferenceGraph) from a single fixed-size header field, so the vertex
/// count is capped before any construction: a 32-byte forged frame with a
/// valid checksum must not be able to demand a multi-terabyte allocation,
/// and n * n must stay representable in std::size_t. 2^26 vertices is far
/// beyond any ranking universe the serving story targets.
constexpr std::uint64_t kMaxDecodedVertices = std::uint64_t{1} << 26;

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(value >> shift) & 0xf]);
  }
  return out;
}

// -- little-endian primitives -------------------------------------------

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>(value >> (8 * i)));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>(value >> (8 * i)));
  }
}

void put_f64(std::string& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

void put_string(std::string& out, std::string_view value) {
  put_u64(out, value.size());
  out.append(value);
}

/// Bounds-checked payload cursor. Any overrun latches `failed` and makes
/// every later read return zero, so decoders can parse straight through
/// and check once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool failed() const { return failed_; }
  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// True when `count` elements of `elem_size` bytes can still be read —
  /// the guard that keeps a forged length field from driving a huge
  /// reserve() before the truncation is noticed.
  bool can_take(std::uint64_t count, std::size_t elem_size) const {
    return !failed_ && count <= remaining() / elem_size;
  }

  std::uint8_t take_u8() {
    if (pos_ + 1 > data_.size()) {
      failed_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t take_u32() {
    std::uint32_t value = 0;
    if (pos_ + 4 > data_.size()) {
      failed_ = true;
      pos_ = data_.size();
      return 0;
    }
    for (int i = 3; i >= 0; --i) {
      value = (value << 8) |
              static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t take_u64() {
    std::uint64_t value = 0;
    if (pos_ + 8 > data_.size()) {
      failed_ = true;
      pos_ = data_.size();
      return 0;
    }
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) |
              static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]);
    }
    pos_ += 8;
    return value;
  }

  double take_f64() { return std::bit_cast<double>(take_u64()); }

  std::string take_string() {
    const std::uint64_t size = take_u64();
    if (!can_take(size, 1)) {
      failed_ = true;
      return {};
    }
    std::string out(data_.substr(pos_, size));
    pos_ += size;
    return out;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

std::uint64_t frame_checksum(std::string_view frame_bytes) {
  // Over everything after the magic and before the checksum itself, so
  // version/kind/schema tampering is caught as corruption too.
  StableHash hash(kChecksumSeed);
  hash.add_bytes(frame_bytes.data() + 4, frame_bytes.size() - 4 - kChecksumSize);
  return hash.digest64();
}

struct FrameView {
  Kind kind = Kind::VoteBatch;
  std::uint32_t schema = 0;
  std::string_view payload;
};

Result<FrameView> read_frame(std::string_view bytes) {
  Result<FrameView> out;
  if (bytes.size() < kMinFrameSize) {
    out.error = {ErrorCode::TooSmall,
                 "frame is " + std::to_string(bytes.size()) +
                     " bytes; minimum is " + std::to_string(kMinFrameSize)};
    return out;
  }
  if (bytes.substr(0, 4) != std::string_view("CRAF", 4)) {
    out.error = {ErrorCode::BadMagic, "magic bytes are not \"CRAF\""};
    return out;
  }
  Reader header(bytes.substr(4, kHeaderSize - 4));
  const std::uint32_t format_version = header.take_u32();
  const std::uint32_t kind_value = header.take_u32();
  const std::uint32_t schema = header.take_u32();
  const std::uint64_t payload_size = header.take_u64();
  if (format_version != kFormatVersion) {
    out.error = {ErrorCode::BadFormatVersion,
                 "format version " + std::to_string(format_version) +
                     "; this reader understands " +
                     std::to_string(kFormatVersion)};
    return out;
  }
  if (payload_size != bytes.size() - kMinFrameSize) {
    out.error = {ErrorCode::Truncated,
                 "declared payload of " + std::to_string(payload_size) +
                     " bytes, frame carries " +
                     std::to_string(bytes.size() - kMinFrameSize)};
    return out;
  }
  Reader trailer(bytes.substr(bytes.size() - kChecksumSize));
  const std::uint64_t stored = trailer.take_u64();
  const std::uint64_t computed = frame_checksum(bytes);
  if (stored != computed) {
    out.error = {ErrorCode::ChecksumMismatch,
                 "stored " + hex64(stored) + " != computed " +
                     hex64(computed)};
    return out;
  }
  if (kind_value < static_cast<std::uint32_t>(Kind::VoteBatch) ||
      kind_value > static_cast<std::uint32_t>(Kind::RankedResult)) {
    out.error = {ErrorCode::WrongKind,
                 "unknown artifact kind " + std::to_string(kind_value)};
    return out;
  }
  out.value = FrameView{static_cast<Kind>(kind_value), schema,
                        bytes.substr(kHeaderSize, payload_size)};
  return out;
}

/// Frame + kind + schema gate shared by every decoder; on success the
/// payload view is handed to the kind-specific parser.
template <typename T>
bool open_payload(std::string_view bytes, Kind kind, std::uint32_t schema,
                  Result<T>& out, std::string_view* payload) {
  Result<FrameView> frame = read_frame(bytes);
  if (!frame.ok()) {
    out.error = std::move(frame.error);
    return false;
  }
  if (frame.value->kind != kind) {
    out.error = {ErrorCode::WrongKind,
                 std::string("expected ") + kind_name(kind) + ", frame is " +
                     kind_name(frame.value->kind)};
    return false;
  }
  if (frame.value->schema != schema) {
    out.error = {ErrorCode::BadSchemaVersion,
                 std::string(kind_name(kind)) + " schema " +
                     std::to_string(frame.value->schema) +
                     "; this reader understands " + std::to_string(schema)};
    return false;
  }
  *payload = frame.value->payload;
  return true;
}

ArtifactError bad_payload(std::string detail) {
  return {ErrorCode::BadPayload, std::move(detail)};
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::VoteBatch:
      return "vote_batch";
    case Kind::TaskGraph:
      return "task_graph";
    case Kind::PreferenceGraph:
      return "preference_graph";
    case Kind::SparseMatrix:
      return "sparse_matrix";
    case Kind::DenseMatrix:
      return "dense_matrix";
    case Kind::RankedResult:
      return "ranked_result";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::None:
      return "none";
    case ErrorCode::TooSmall:
      return "too_small";
    case ErrorCode::BadMagic:
      return "bad_magic";
    case ErrorCode::BadFormatVersion:
      return "bad_format_version";
    case ErrorCode::Truncated:
      return "truncated";
    case ErrorCode::ChecksumMismatch:
      return "checksum_mismatch";
    case ErrorCode::WrongKind:
      return "wrong_kind";
    case ErrorCode::BadSchemaVersion:
      return "bad_schema_version";
    case ErrorCode::BadPayload:
      return "bad_payload";
    case ErrorCode::IoError:
      return "io_error";
  }
  return "unknown";
}

std::string ArtifactError::to_string() const {
  std::string out = error_code_name(code);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

namespace detail {

std::string frame(Kind kind, std::uint32_t schema, std::string_view payload) {
  std::string out;
  out.reserve(kMinFrameSize + payload.size());
  out.append("CRAF");
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(kind));
  put_u32(out, schema);
  put_u64(out, payload.size());
  out.append(payload);
  // Reserve the checksum slot so frame_checksum sees the final extents.
  put_u64(out, 0);
  const std::uint64_t checksum = frame_checksum(out);
  out.resize(out.size() - kChecksumSize);
  put_u64(out, checksum);
  return out;
}

}  // namespace detail

// -- VoteBatch -----------------------------------------------------------

std::string encode(const VoteBatch& votes) {
  std::string payload;
  payload.reserve(8 + votes.size() * 25);
  put_u64(payload, votes.size());
  for (const Vote& vote : votes) {
    put_u64(payload, vote.worker);
    put_u64(payload, vote.i);
    put_u64(payload, vote.j);
    payload.push_back(vote.prefers_i ? '\1' : '\0');
  }
  return detail::frame(Kind::VoteBatch, kVoteBatchSchema, payload);
}

Result<VoteBatch> decode_votes(std::string_view bytes) {
  Result<VoteBatch> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::VoteBatch, kVoteBatchSchema, out, &payload)) {
    return out;
  }
  Reader reader(payload);
  const std::uint64_t count = reader.take_u64();
  if (!reader.can_take(count, 25)) {
    out.error = bad_payload("vote count overruns the payload");
    return out;
  }
  VoteBatch votes;
  votes.reserve(count);
  for (std::uint64_t v = 0; v < count; ++v) {
    Vote vote;
    vote.worker = reader.take_u64();
    vote.i = reader.take_u64();
    vote.j = reader.take_u64();
    const std::uint8_t direction = reader.take_u8();
    if (direction > 1) {
      out.error = bad_payload("vote direction byte must be 0 or 1");
      return out;
    }
    vote.prefers_i = direction == 1;
    votes.push_back(vote);
  }
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("vote payload size disagrees with its count");
    return out;
  }
  out.value = std::move(votes);
  return out;
}

// -- TaskGraph -----------------------------------------------------------

std::string encode(const TaskGraph& graph) {
  std::string payload;
  payload.reserve(16 + graph.edge_count() * 16);
  put_u64(payload, graph.vertex_count());
  put_u64(payload, graph.edge_count());
  for (const Edge& edge : graph.edges()) {
    put_u64(payload, edge.first);
    put_u64(payload, edge.second);
  }
  return detail::frame(Kind::TaskGraph, kTaskGraphSchema, payload);
}

Result<TaskGraph> decode_task_graph(std::string_view bytes) {
  Result<TaskGraph> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::TaskGraph, kTaskGraphSchema, out, &payload)) {
    return out;
  }
  Reader reader(payload);
  const std::uint64_t n = reader.take_u64();
  const std::uint64_t edge_count = reader.take_u64();
  if (reader.failed() || n < 2) {
    out.error = bad_payload("task graph needs at least two vertices");
    return out;
  }
  if (n > kMaxDecodedVertices) {
    out.error = bad_payload("vertex count exceeds the decoder's limit");
    return out;
  }
  if (!reader.can_take(edge_count, 16)) {
    out.error = bad_payload("edge count overruns the payload");
    return out;
  }
  std::optional<TaskGraph> graph;
  try {
    graph.emplace(n);
  } catch (const std::exception& e) {
    out.error = bad_payload(e.what());
    return out;
  }
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const std::uint64_t a = reader.take_u64();
    const std::uint64_t b = reader.take_u64();
    if (!(a < b && b < n)) {
      out.error = bad_payload("edge is not canonical (first < second < n)");
      return out;
    }
    if (!graph->add_edge(a, b)) {
      out.error = bad_payload("duplicate edge");
      return out;
    }
  }
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("task graph payload size disagrees");
    return out;
  }
  out.value = std::move(graph);
  return out;
}

// -- PreferenceGraph (CSR over the positive-weight edges) ---------------

std::string encode(const PreferenceGraph& graph) {
  const CsrAdjacency& csr = graph.out_csr();
  std::string payload;
  payload.reserve(16 + csr.row_ptr.size() * 8 + csr.neighbors.size() * 16);
  put_u64(payload, graph.vertex_count());
  put_u64(payload, csr.neighbors.size());
  for (const std::size_t offset : csr.row_ptr) {
    put_u64(payload, offset);
  }
  for (const VertexId neighbor : csr.neighbors) {
    put_u64(payload, neighbor);
  }
  for (const double weight : csr.weights) {
    put_f64(payload, weight);
  }
  return detail::frame(Kind::PreferenceGraph, kPreferenceGraphSchema, payload);
}

Result<PreferenceGraph> decode_preference_graph(std::string_view bytes) {
  Result<PreferenceGraph> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::PreferenceGraph, kPreferenceGraphSchema, out,
                    &payload)) {
    return out;
  }
  Reader reader(payload);
  const std::uint64_t n = reader.take_u64();
  const std::uint64_t edge_count = reader.take_u64();
  if (reader.failed() || n < 2) {
    out.error = bad_payload("preference graph needs at least two vertices");
    return out;
  }
  if (n > kMaxDecodedVertices) {
    out.error = bad_payload("vertex count exceeds the decoder's limit");
    return out;
  }
  // row_ptr carries n + 1 u64 offsets. Bound n itself instead of testing
  // can_take(n + 1, 8): a forged n == UINT64_MAX wraps n + 1 around to 0,
  // which would pass that check, size row_ptr empty, and send the r <= n
  // fill loop below out of bounds forever. `n < remaining / 8` is exactly
  // `n + 1 <= remaining / 8` with no overflow.
  if (n >= reader.remaining() / 8 || edge_count > (payload.size() / 16)) {
    out.error = bad_payload("CSR extents overrun the payload");
    return out;
  }
  std::vector<std::uint64_t> row_ptr(n + 1);
  for (std::uint64_t r = 0; r <= n; ++r) {
    row_ptr[r] = reader.take_u64();
  }
  if (reader.failed() || row_ptr.front() != 0 || row_ptr.back() != edge_count) {
    out.error = bad_payload("row_ptr does not span [0, edge_count]");
    return out;
  }
  // Full monotonicity before any row_ptr value indexes the edge arrays: a
  // locally-descending row_ptr would otherwise send an earlier row's loop
  // past edge_count.
  for (std::uint64_t r = 0; r < n; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      out.error = bad_payload("row_ptr is not monotone");
      return out;
    }
  }
  if (!reader.can_take(edge_count, 16)) {
    out.error = bad_payload("CSR extents overrun the payload");
    return out;
  }
  std::vector<std::uint64_t> neighbors(edge_count);
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    neighbors[e] = reader.take_u64();
  }
  std::optional<PreferenceGraph> graph;
  try {
    // Dense n x n weight storage: even a payload-bounded n can exceed
    // memory, and that must surface as a structured rejection, not a
    // std::bad_alloc escaping the decoder.
    graph.emplace(n);
  } catch (const std::exception& e) {
    out.error = bad_payload(e.what());
    return out;
  }
  for (std::uint64_t row = 0; row < n; ++row) {
    for (std::uint64_t e = row_ptr[row]; e < row_ptr[row + 1]; ++e) {
      const std::uint64_t to = neighbors[e];
      const double weight = reader.take_f64();
      if (to >= n || to == row) {
        out.error = bad_payload("neighbor out of range or self-edge");
        return out;
      }
      if (e > row_ptr[row] && neighbors[e - 1] >= to) {
        out.error = bad_payload("neighbors not strictly ascending in row");
        return out;
      }
      if (!(weight > 0.0 && weight <= 1.0)) {
        out.error = bad_payload("stored weight outside (0, 1]");
        return out;
      }
      graph->set_weight(row, to, weight);
    }
  }
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("preference graph payload size disagrees");
    return out;
  }
  out.value = std::move(graph);
  return out;
}

// -- SparseMatrix (CSR) --------------------------------------------------

std::string encode(const SparseMatrix& matrix) {
  std::string payload;
  payload.reserve(24 + matrix.row_ptr().size() * 8 + matrix.nnz() * 12);
  put_u64(payload, matrix.rows());
  put_u64(payload, matrix.cols());
  put_u64(payload, matrix.nnz());
  for (const std::size_t offset : matrix.row_ptr()) {
    put_u64(payload, offset);
  }
  for (const std::uint32_t col : matrix.col_indices()) {
    put_u32(payload, col);
  }
  for (const double value : matrix.values()) {
    put_f64(payload, value);
  }
  return detail::frame(Kind::SparseMatrix, kSparseMatrixSchema, payload);
}

Result<SparseMatrix> decode_sparse_matrix(std::string_view bytes) {
  Result<SparseMatrix> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::SparseMatrix, kSparseMatrixSchema, out,
                    &payload)) {
    return out;
  }
  Reader reader(payload);
  const std::uint64_t rows = reader.take_u64();
  const std::uint64_t cols = reader.take_u64();
  const std::uint64_t nnz = reader.take_u64();
  // Same wraparound hazard as decode_preference_graph: rows == UINT64_MAX
  // would make can_take(rows + 1, 8) vacuously pass and the r <= rows fill
  // loop write past an empty row_ptr, so bound rows itself.
  if (reader.failed() || rows >= reader.remaining() / 8) {
    out.error = bad_payload("CSR extents overrun the payload");
    return out;
  }
  std::vector<std::size_t> row_ptr(rows + 1);
  for (std::uint64_t r = 0; r <= rows; ++r) {
    row_ptr[r] = reader.take_u64();
  }
  if (reader.failed() || row_ptr.front() != 0 || row_ptr.back() != nnz) {
    out.error = bad_payload("row_ptr does not span [0, nnz]");
    return out;
  }
  if (!reader.can_take(nnz, 12)) {
    out.error = bad_payload("CSR extents overrun the payload");
    return out;
  }
  std::vector<std::size_t> col_idx(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    col_idx[e] = reader.take_u32();
  }
  std::vector<double> values(nnz);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    values[e] = reader.take_f64();
  }
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("sparse matrix payload size disagrees");
    return out;
  }
  for (std::uint64_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      out.error = bad_payload("row_ptr is not monotone");
      return out;
    }
  }
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint64_t e = row_ptr[row]; e < row_ptr[row + 1]; ++e) {
      if (col_idx[e] >= cols ||
          (e > row_ptr[row] && col_idx[e - 1] >= col_idx[e])) {
        out.error = bad_payload("columns not strictly ascending in row");
        return out;
      }
      if (values[e] == 0.0) {
        out.error = bad_payload("stored entry is zero");
        return out;
      }
    }
  }
  try {
    out.value = SparseMatrix::from_csr(rows, cols, row_ptr, col_idx, values);
  } catch (const std::exception& e) {
    out.error = bad_payload(e.what());
  }
  return out;
}

// -- dense Matrix --------------------------------------------------------

std::string encode(const Matrix& matrix) {
  std::string payload;
  payload.reserve(16 + matrix.data().size() * 8);
  put_u64(payload, matrix.rows());
  put_u64(payload, matrix.cols());
  for (const double value : matrix.data()) {
    put_f64(payload, value);
  }
  return detail::frame(Kind::DenseMatrix, kDenseMatrixSchema, payload);
}

Result<Matrix> decode_matrix(std::string_view bytes) {
  Result<Matrix> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::DenseMatrix, kDenseMatrixSchema, out,
                    &payload)) {
    return out;
  }
  Reader reader(payload);
  const std::uint64_t rows = reader.take_u64();
  const std::uint64_t cols = reader.take_u64();
  if (reader.failed() || (rows != 0 && cols > reader.remaining() / 8 / rows)) {
    out.error = bad_payload("matrix extents overrun the payload");
    return out;
  }
  Matrix matrix(rows, cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      matrix(r, c) = reader.take_f64();
    }
  }
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("matrix payload size disagrees");
    return out;
  }
  out.value = std::move(matrix);
  return out;
}

// -- RankedResult --------------------------------------------------------

namespace {

void put_ids(std::string& payload, const std::vector<VertexId>& ids) {
  put_u64(payload, ids.size());
  for (const VertexId id : ids) {
    put_u64(payload, id);
  }
}

bool take_ids(Reader& reader, std::vector<VertexId>* ids) {
  const std::uint64_t count = reader.take_u64();
  if (!reader.can_take(count, 8)) {
    return false;
  }
  ids->resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    (*ids)[i] = reader.take_u64();
  }
  return !reader.failed();
}

}  // namespace

std::string encode(const RankedResult& result) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(result.outcome));
  put_u32(payload, static_cast<std::uint32_t>(result.stage));
  put_string(payload, result.reason);
  put_ids(payload, result.ranking.order);
  put_ids(payload, result.ranking.excluded);
  const HardeningReport& h = result.hardening;
  put_u64(payload, h.input_votes);
  put_u64(payload, h.retained_votes);
  put_u64(payload, h.dropped_out_of_range);
  put_u64(payload, h.dropped_self);
  put_u64(payload, h.dropped_duplicate);
  put_u64(payload, h.dropped_conflicting);
  put_u64(payload, h.dropped_disconnected);
  put_u64(payload, h.requested_objects);
  put_u64(payload, h.component_count);
  put_ids(payload, h.excluded_objects);
  put_f64(payload, result.log_probability);
  return detail::frame(Kind::RankedResult, kRankedResultSchema, payload);
}

Result<RankedResult> decode_result(std::string_view bytes) {
  Result<RankedResult> out;
  std::string_view payload;
  if (!open_payload(bytes, Kind::RankedResult, kRankedResultSchema, out,
                    &payload)) {
    return out;
  }
  Reader reader(payload);
  RankedResult result;
  const std::uint32_t outcome = reader.take_u32();
  const std::uint32_t stage = reader.take_u32();
  if (outcome > static_cast<std::uint32_t>(JobOutcome::Failed) ||
      stage > static_cast<std::uint32_t>(PipelineStage::Done)) {
    out.error = bad_payload("outcome or stage out of range");
    return out;
  }
  result.outcome = static_cast<JobOutcome>(outcome);
  result.stage = static_cast<PipelineStage>(stage);
  result.reason = reader.take_string();
  HardeningReport& h = result.hardening;
  if (!take_ids(reader, &result.ranking.order) ||
      !take_ids(reader, &result.ranking.excluded)) {
    out.error = bad_payload("ranking lists overrun the payload");
    return out;
  }
  h.input_votes = reader.take_u64();
  h.retained_votes = reader.take_u64();
  h.dropped_out_of_range = reader.take_u64();
  h.dropped_self = reader.take_u64();
  h.dropped_duplicate = reader.take_u64();
  h.dropped_conflicting = reader.take_u64();
  h.dropped_disconnected = reader.take_u64();
  h.requested_objects = reader.take_u64();
  h.component_count = reader.take_u64();
  if (!take_ids(reader, &h.excluded_objects)) {
    out.error = bad_payload("excluded-object list overruns the payload");
    return out;
  }
  result.log_probability = reader.take_f64();
  if (reader.failed() || !reader.exhausted()) {
    out.error = bad_payload("ranked result payload size disagrees");
    return out;
  }
  out.value = std::move(result);
  return out;
}

Result<Kind> peek_kind(std::string_view bytes) {
  Result<Kind> out;
  Result<FrameView> frame = read_frame(bytes);
  if (!frame.ok()) {
    out.error = std::move(frame.error);
    return out;
  }
  out.value = frame.value->kind;
  return out;
}

// -- file tier -----------------------------------------------------------

std::optional<ArtifactError> write_file(const std::string& path,
                                        std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return ArtifactError{ErrorCode::IoError, "cannot open " + tmp};
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      return ArtifactError{ErrorCode::IoError, "short write to " + tmp};
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return ArtifactError{ErrorCode::IoError,
                         "cannot rename into place: " + path};
  }
  return std::nullopt;
}

Result<std::string> read_file(const std::string& path) {
  Result<std::string> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = {ErrorCode::IoError, "cannot open " + path};
    return out;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    out.error = {ErrorCode::IoError, "read failed for " + path};
    return out;
  }
  out.value = std::move(bytes);
  return out;
}

std::optional<ArtifactError> ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec || !std::filesystem::is_directory(path)) {
    return ArtifactError{ErrorCode::IoError,
                         "cannot create directory " + path};
  }
  return std::nullopt;
}

}  // namespace crowdrank::service::artifact
