#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <thread>
#include <utility>

#include "core/pipeline.hpp"
#include "obs/telemetry.hpp"
#include "service/rank_entry.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace crowdrank::service {

const char* outcome_name(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::Completed:
      return "completed";
    case JobOutcome::Degraded:
      return "degraded";
    case JobOutcome::TimedOut:
      return "timed_out";
    case JobOutcome::Cancelled:
      return "cancelled";
    case JobOutcome::Rejected:
      return "rejected";
    case JobOutcome::Failed:
      return "failed";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

/// Thrown by JobControl at a stage checkpoint to abort a job; caught by
/// the executor and mapped onto the structured outcome. Deliberately not
/// a std::exception so no intermediate catch(std::exception) handler in
/// library code can swallow an abort.
struct JobInterrupt {
  JobOutcome outcome;
  PipelineStage stage;
  std::string reason;
};

/// Applies a fault plan's deterministic vote mutations.
void mutate_votes(VoteBatch& votes, const FaultPlan& plan,
                  std::size_t object_count) {
  if (plan.drop_every_kth_vote > 0) {
    VoteBatch kept;
    kept.reserve(votes.size());
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if ((i + 1) % plan.drop_every_kth_vote != 0) {
        kept.push_back(votes[i]);
      }
    }
    votes = std::move(kept);
  }
  if (plan.corrupt_every_kth_vote > 0) {
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if ((i + 1) % plan.corrupt_every_kth_vote == 0) {
        votes[i].j = object_count + votes[i].i;  // out of any valid range
      }
    }
  }
}

/// Cooperative per-job controller: records progress, stalls/fails on an
/// injected fault, and aborts on cancellation or an expired deadline.
/// Checkpoint order — stall, cancel, deadline, injected failure — makes
/// the stall+deadline combination a deterministic TimedOut.
class JobControl final : public StageControl {
 public:
  JobControl(const std::atomic<bool>& cancel_requested,
             Clock::time_point deadline,
             std::vector<const FaultPlan*> faults,
             obs::Telemetry* telemetry, std::size_t executor,
             std::uint64_t job_id)
      : cancel_requested_(cancel_requested),
        deadline_(deadline),
        faults_(std::move(faults)),
        telemetry_(telemetry),
        executor_(executor),
        job_id_(job_id) {}

  void checkpoint(const StageSnapshot& snapshot) override {
    poll(snapshot.next);
  }

  /// Service-level stages (Hardening) poll directly with the stage id.
  void poll(PipelineStage next) {
    // Each checkpoint fires when the previous stage has just completed,
    // so the watch spans exactly one stage. Telemetry is observe-only.
    if (telemetry_ != nullptr && next != timed_stage_) {
      telemetry_->on_stage_checkpoint(
          executor_, job_id_, stage_name(timed_stage_),
          static_cast<std::uint8_t>(timed_stage_),
          stage_watch_.elapsed_millis());
      stage_watch_.restart();
      timed_stage_ = next;
    }
    if (next != PipelineStage::Done) {
      last_stage_ = next;
    }
    for (const FaultPlan* plan : faults_) {
      if (plan->stall_before == next &&
          plan->stall_duration.count() > 0) {
        std::this_thread::sleep_for(plan->stall_duration);
      }
    }
    if (cancel_requested_.load(std::memory_order_relaxed)) {
      throw JobInterrupt{JobOutcome::Cancelled, next,
                         "cancelled at stage checkpoint"};
    }
    if (Clock::now() > deadline_) {
      throw JobInterrupt{JobOutcome::TimedOut, next, "deadline exceeded"};
    }
    for (const FaultPlan* plan : faults_) {
      if (plan->fail_before == next) {
        throw JobInterrupt{JobOutcome::Failed, next, plan->fail_reason};
      }
    }
  }

  PipelineStage last_stage() const { return last_stage_; }

 private:
  const std::atomic<bool>& cancel_requested_;
  Clock::time_point deadline_;
  std::vector<const FaultPlan*> faults_;
  obs::Telemetry* telemetry_;
  std::size_t executor_;
  std::uint64_t job_id_;
  PipelineStage last_stage_ = PipelineStage::Validation;
  /// Stage currently being timed; the first poll (Hardening) matches it,
  /// so the first emission covers Hardening, not construction overhead.
  PipelineStage timed_stage_ = PipelineStage::Hardening;
  Stopwatch stage_watch_;
};

/// Names for the config echo of a postmortem.
const char* search_method_name(RankSearchMethod method) {
  switch (method) {
    case RankSearchMethod::Saps:
      return "saps";
    case RankSearchMethod::Taps:
      return "taps";
    case RankSearchMethod::HeldKarp:
      return "held_karp";
  }
  return "unknown";
}

/// The spans recorded under `root` (inclusive), re-parented so `root`
/// becomes the subtree's own root. Works on a snapshot: a span belongs to
/// the subtree iff its parent does, and parents always precede children.
std::vector<trace::SpanRecord> span_subtree(
    std::vector<trace::SpanRecord> spans, std::size_t root) {
  std::vector<trace::SpanRecord> out;
  if (root >= spans.size()) {
    return out;
  }
  constexpr std::size_t kUnmapped = trace::SpanRecord::kNoParent;
  std::vector<std::size_t> remap(spans.size(), kUnmapped);
  remap[root] = 0;
  out.push_back(std::move(spans[root]));
  out.front().parent = trace::SpanRecord::kNoParent;
  for (std::size_t i = root + 1; i < spans.size(); ++i) {
    const std::size_t p = spans[i].parent;
    if (p == trace::SpanRecord::kNoParent || remap[p] == kUnmapped) {
      continue;
    }
    spans[i].parent = remap[p];
    remap[i] = out.size();
    out.push_back(std::move(spans[i]));
  }
  return out;
}

}  // namespace

struct RankingService::Impl {
  struct Ticket {
    // Ownership protocol (why these fields carry no CR_GUARDED_BY): a
    // ticket's mutable fields (job, result, submit_time, deadline_point)
    // are written by the submit path under Impl::mutex while Queued, then
    // owned exclusively by one executor while Running (the state
    // transitions themselves happen under the mutex, which publishes the
    // handoff), and read-only once Done. `state` is only ever touched
    // under the mutex; `cancel_requested` is the one field both sides
    // touch concurrently and is atomic for exactly that reason.
    std::uint64_t id = 0;
    std::size_t index = 0;  ///< submission index (FaultPlan::only_job)
    RankingJob job;
    std::atomic<bool> cancel_requested{false};
    enum class State { Queued, Running, Done } state = State::Queued;
    JobResult result;
    Clock::time_point submit_time;
    Clock::time_point deadline_point = Clock::time_point::max();
  };

  ServiceConfig config;

  mutable Mutex mutex;
  CondVar work_ready;
  CondVar job_done;
  std::deque<std::shared_ptr<Ticket>> queue CR_GUARDED_BY(mutex);
  std::map<std::uint64_t, std::shared_ptr<Ticket>> by_id CR_GUARDED_BY(mutex);
  std::vector<std::shared_ptr<Ticket>> all CR_GUARDED_BY(mutex);
  // Written only by the constructor (before any executor exists) and
  // joined by the destructor after the stop handshake; never touched in
  // between, so it needs no guard (TSA does not analyze ctors/dtors).
  std::vector<std::thread> executors;
  /// One per-job arena per executor, created before the threads spawn and
  /// read-only (as a vector) afterwards; executor i touches only slot i
  /// while running, and arena_stats() reads are internally synchronized by
  /// each Arena's own mutex.
  std::vector<std::unique_ptr<Arena>> arenas;
  ServiceStats counters CR_GUARDED_BY(mutex);
  std::uint64_t next_id CR_GUARDED_BY(mutex) = 1;
  bool stopping CR_GUARDED_BY(mutex) = false;

  // -- metrics plumbing (no-ops when config.trace is null) ------------

  void count_outcome(JobOutcome outcome) CR_REQUIRES(mutex) {
    switch (outcome) {
      case JobOutcome::Completed:
        ++counters.completed;
        break;
      case JobOutcome::Degraded:
        ++counters.degraded;
        break;
      case JobOutcome::TimedOut:
        ++counters.timed_out;
        break;
      case JobOutcome::Cancelled:
        ++counters.cancelled;
        break;
      case JobOutcome::Rejected:
        ++counters.rejected;
        break;
      case JobOutcome::Failed:
        ++counters.failed;
        break;
    }
    if (config.trace != nullptr) {
      config.trace->metrics()
          .counter(std::string("service.outcome.") + outcome_name(outcome))
          .add(1);
    }
    if (config.telemetry != nullptr) {
      config.telemetry->on_outcome(outcome_name(outcome));
    }
  }

  void gauge_queue_depth() CR_REQUIRES(mutex) {
    counters.queue_depth = queue.size();
    if (config.trace != nullptr) {
      config.trace->metrics().gauge("service.queue_depth").set(
          static_cast<double>(queue.size()));
    }
    if (config.telemetry != nullptr) {
      config.telemetry->on_queue_depth(queue.size());
    }
  }

  // -- lifecycle ------------------------------------------------------

  // Used for jobs that never run (rejected, shed, cancelled while queued).
  void settle(Ticket& ticket, JobOutcome outcome, PipelineStage stage,
              std::string reason) CR_REQUIRES(mutex) {
    ticket.result.id = ticket.id;
    ticket.result.outcome = outcome;
    ticket.result.stage = stage;
    ticket.result.reason = std::move(reason);
    ticket.state = Ticket::State::Done;
    count_outcome(outcome);
    if (config.telemetry != nullptr) {
      config.telemetry->on_job_settled(ticket.id, outcome_name(outcome),
                                       static_cast<std::uint8_t>(outcome));
    }
    job_done.notify_all();
  }

  void executor_loop(std::size_t executor) {
    // Kernel-level parallel regions of this job run inline on this
    // thread: jobs are the unit of parallelism, so N executors never
    // serialize on the global pool's region lock.
    InlineRegion inline_region;
    Arena& arena = *arenas[executor];
    MutexLock lock(mutex);
    while (true) {
      while (!stopping && queue.empty()) {
        work_ready.wait(mutex);
      }
      if (queue.empty()) {
        if (stopping) {
          return;
        }
        continue;
      }
      std::shared_ptr<Ticket> ticket = queue.front();
      queue.pop_front();
      gauge_queue_depth();
      if (ticket->state == Ticket::State::Done) {
        continue;  // cancelled or shed while queued
      }
      ticket->state = Ticket::State::Running;
      lock.unlock();
      {
        // All matrix/graph scratch the job allocates on this thread draws
        // from the executor's arena; the JobResult it leaves behind holds
        // only plain heap containers, so the rewind below frees every
        // job-lifetime byte while retaining the blocks for the next job.
        arena::Scope scope(arena);
        run_job(*ticket, executor);
      }
      arena.reset();
      if (config.trace != nullptr) {
        const ArenaStats as = arena.stats();
        metrics::Registry& m = config.trace->metrics();
        m.gauge("service.arena.bytes_peak")
            .set(static_cast<double>(as.bytes_peak));
        m.gauge("service.arena.system_allocs")
            .set(static_cast<double>(as.system_allocs));
        m.gauge("service.arena.skipped_resets")
            .set(static_cast<double>(as.skipped_resets));
      }
      lock.lock();
      ticket->state = Ticket::State::Done;
      count_outcome(ticket->result.outcome);
      job_done.notify_all();
    }
  }

  void run_job(Ticket& ticket, std::size_t executor) {
    JobResult& r = ticket.result;
    r.id = ticket.id;
    const Stopwatch run_watch;
    r.queue_ms = std::chrono::duration<double, std::milli>(
                     Clock::now() - ticket.submit_time)
                     .count();

    obs::Telemetry* telemetry = config.telemetry;
    if (telemetry != nullptr) {
      telemetry->on_job_started(executor, ticket.id, r.queue_ms);
    }

    trace::TraceSink* sink = config.trace;
    const std::size_t span =
        sink != nullptr ? sink->open_span("service.job") : 0;
    if (sink != nullptr) {
      sink->span_attr(span, "id",
                      static_cast<std::int64_t>(ticket.id));
      sink->span_attr(span, "votes",
                      static_cast<std::int64_t>(ticket.job.votes.size()));
    }

    // Which fault plans apply to this job: its own, plus the
    // service-level plan when the submission index matches.
    std::vector<const FaultPlan*> faults;
    if (!ticket.job.fault.inert() &&
        ticket.job.fault.applies_to(ticket.index)) {
      faults.push_back(&ticket.job.fault);
    }
    if (!config.fault.inert() && config.fault.applies_to(ticket.index)) {
      faults.push_back(&config.fault);
    }

    JobControl control(ticket.cancel_requested, ticket.deadline_point,
                       faults, telemetry, executor, ticket.id);
    try {
      // Service stage: input hardening (plus injected vote mutations).
      control.poll(PipelineStage::Hardening);
      VoteBatch votes = ticket.job.votes;
      for (const FaultPlan* plan : faults) {
        mutate_votes(votes, *plan, ticket.job.object_count);
      }

      // Per-job engine sinks would race on the process-global active-sink
      // pointer when jobs run concurrently; the service records per-job
      // spans on its own sink instead.
      InferenceConfig inference = ticket.job.inference;
      inference.trace = nullptr;

      // The shared entry (rank_entry.hpp) runs cache lookup -> harden ->
      // infer -> id remap exactly as the api facade does; JobInterrupt
      // thrown by `control` at a checkpoint passes through it untouched.
      RankParams params;
      params.votes = &votes;
      params.object_count = ticket.job.object_count;
      params.worker_count = ticket.job.worker_count;
      params.seed = ticket.job.seed;
      params.inference = &inference;
      params.repair = true;
      params.hardening = &config.hardening;
      params.control = &control;
      params.check_invariants = config.check_invariants;
      params.cache = config.cache;
      params.cache_control = ticket.job.cache_control;
      params.on_hardened = [&](const HardeningReport& report) {
        // Copy the accounting onto the result immediately: a fault or
        // deadline interrupt unwinds run_ranking's local outcome, and the
        // postmortem still needs the hardening numbers.
        r.hardening = report;
        if (telemetry != nullptr && report.repaired()) {
          telemetry->on_hardening(
              executor, ticket.id,
              static_cast<std::uint64_t>(report.input_votes -
                                         report.retained_votes));
        }
      };

      Rng rng(ticket.job.seed);
      RankOutcome out = run_ranking(params, rng);
      r.outcome = out.outcome;
      r.stage = out.stage;
      r.reason = std::move(out.reason);
      r.ranking = std::move(out.ranking);
      r.hardening = std::move(out.hardening);
      r.log_probability = out.log_probability;
      r.served_from_cache = out.cache.served_from_cache;
      r.artifact_key = std::move(out.cache.key_hex);
      r.artifact_schema_version =
          out.cache.consulted ? artifact::kRankedResultSchema : 0;
      if (out.cache.consulted) {
        if (config.trace != nullptr) {
          config.trace->metrics()
              .counter(out.cache.served_from_cache ? "service.cache.job_hit"
                                                   : "service.cache.job_miss")
              .add(1);
        }
        if (telemetry != nullptr) {
          telemetry->on_cache(out.cache.served_from_cache ? "hit" : "miss");
          if (out.cache.stored) {
            telemetry->on_cache("store");
          }
        }
      }
    } catch (const JobInterrupt& interrupt) {
      r.outcome = interrupt.outcome;
      r.stage = interrupt.stage;
      r.reason = interrupt.reason;
    } catch (const std::exception& e) {
      r.outcome = JobOutcome::Failed;
      r.stage = control.last_stage();
      r.reason = e.what();
    } catch (...) {
      r.outcome = JobOutcome::Failed;
      r.stage = control.last_stage();
      r.reason = "unknown exception";
    }
    r.run_ms = run_watch.elapsed_millis();

    if (sink != nullptr) {
      sink->span_attr(span, "outcome", std::string(outcome_name(r.outcome)));
      sink->span_attr(span, "stage", std::string(stage_name(r.stage)));
      // Stamp the whole subtree (engine spans included) with the job
      // identity so interleaved executor timelines stay attributable.
      sink->annotate_descendants(span, "job",
                                 static_cast<std::int64_t>(ticket.id));
      sink->annotate_descendants(span, "outcome",
                                 std::string(outcome_name(r.outcome)));
      sink->metrics().histogram("service.job_ms").observe(r.run_ms);
      sink->metrics().histogram("service.queue_ms").observe(r.queue_ms);
      sink->close_span(span);
    }
    if (telemetry != nullptr) {
      telemetry->on_job_finished(executor, ticket.id,
                                 outcome_name(r.outcome),
                                 static_cast<std::uint8_t>(r.outcome),
                                 r.queue_ms, r.run_ms);
      if (r.outcome == JobOutcome::Failed ||
          r.outcome == JobOutcome::TimedOut ||
          r.outcome == JobOutcome::Degraded) {
        telemetry->write_postmortem(
            build_postmortem(ticket, executor, sink, span));
      }
    }
  }

  /// Everything known about a just-finished bad job, gathered for the
  /// postmortem file: terminal state, config echo, hardening accounting,
  /// the job's span subtree, and the executor's flight-recorder window.
  obs::Postmortem build_postmortem(const Ticket& ticket,
                                   std::size_t executor,
                                   const trace::TraceSink* sink,
                                   std::size_t span) const {
    const JobResult& r = ticket.result;
    obs::Postmortem postmortem;
    postmortem.job_id = ticket.id;
    postmortem.executor = executor;
    postmortem.outcome = outcome_name(r.outcome);
    postmortem.stage = stage_name(r.stage);
    postmortem.reason = r.reason;
    postmortem.t_us = config.telemetry->now_us();

    const RankingJob& job = ticket.job;
    postmortem.config_echo = {
        {"seed", static_cast<std::int64_t>(job.seed)},
        {"object_count", static_cast<std::int64_t>(job.object_count)},
        {"worker_count", static_cast<std::int64_t>(job.worker_count)},
        {"votes", static_cast<std::int64_t>(job.votes.size())},
        {"search", std::string(search_method_name(job.inference.search))},
        {"check_invariants",
         job.inference.check_invariants || config.check_invariants},
        {"deadline_ms", static_cast<std::int64_t>(job.deadline.count())},
    };

    const HardeningReport& h = r.hardening;
    postmortem.hardening = {
        {"input_votes", static_cast<std::int64_t>(h.input_votes)},
        {"retained_votes", static_cast<std::int64_t>(h.retained_votes)},
        {"dropped_out_of_range",
         static_cast<std::int64_t>(h.dropped_out_of_range)},
        {"dropped_self", static_cast<std::int64_t>(h.dropped_self)},
        {"dropped_duplicate",
         static_cast<std::int64_t>(h.dropped_duplicate)},
        {"dropped_conflicting",
         static_cast<std::int64_t>(h.dropped_conflicting)},
        {"dropped_disconnected",
         static_cast<std::int64_t>(h.dropped_disconnected)},
        {"component_count", static_cast<std::int64_t>(h.component_count)},
        {"excluded_objects",
         static_cast<std::int64_t>(h.excluded_objects.size())},
    };

    if (sink != nullptr) {
      postmortem.spans = span_subtree(sink->spans(), span);
    }
    obs::RingSnapshot window =
        config.telemetry->recorder().snapshot(executor + 1);
    postmortem.events = std::move(window.events);
    return postmortem;
  }
};

RankingService::RankingService(ServiceConfig config)
    : impl_(std::make_unique<Impl>()) {
  CR_EXPECTS(config.worker_count >= 1,
             "RankingService needs at least one executor");
  CR_EXPECTS(config.queue_capacity >= 1,
             "RankingService queue capacity must be at least 1");
  impl_->config = std::move(config);
  impl_->executors.reserve(impl_->config.worker_count);
  impl_->arenas.reserve(impl_->config.worker_count);
  for (std::size_t i = 0; i < impl_->config.worker_count; ++i) {
    impl_->arenas.push_back(std::make_unique<Arena>());
  }
  for (std::size_t i = 0; i < impl_->config.worker_count; ++i) {
    impl_->executors.emplace_back([impl = impl_.get(), i] {
      impl->executor_loop(i);
    });
  }
}

RankingService::~RankingService() {
  {
    MutexLock lock(impl_->mutex);
    impl_->stopping = true;
    // Queued jobs settle as Cancelled; running jobs are asked to stop at
    // their next checkpoint.
    for (const auto& ticket : impl_->queue) {
      if (ticket->state == Impl::Ticket::State::Queued) {
        impl_->settle(*ticket, JobOutcome::Cancelled,
                      PipelineStage::Validation, "service shut down");
      }
    }
    impl_->queue.clear();
    impl_->gauge_queue_depth();
    for (const auto& ticket : impl_->all) {
      if (ticket->state == Impl::Ticket::State::Running) {
        ticket->cancel_requested.store(true, std::memory_order_relaxed);
      }
    }
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->executors) {
    t.join();
  }
}

const ServiceConfig& RankingService::config() const {
  return impl_->config;
}

std::uint64_t RankingService::submit(RankingJob job) {
  // Structured validation happens before the job is admitted, so a bad
  // config is a Rejected outcome, not a mid-pipeline throw. Shared with
  // api::validate (rank_entry.hpp) minus the facade's empty-batch check:
  // an empty batch historically runs and fails hardening instead.
  RankParams probe;
  probe.votes = &job.votes;
  probe.inference = &job.inference;
  probe.hardening = &impl_->config.hardening;
  probe.cache = impl_->config.cache;
  probe.cache_control = job.cache_control;
  const std::vector<ConfigError> errors =
      validate_rank_params(probe, /*require_votes=*/false);

  MutexLock lock(impl_->mutex);
  auto ticket = std::make_shared<Impl::Ticket>();
  ticket->id = impl_->next_id++;
  ticket->index = impl_->counters.submitted++;
  ticket->submit_time = Clock::now();
  const auto deadline = job.deadline.count() > 0
                            ? job.deadline
                            : impl_->config.default_deadline;
  if (deadline.count() > 0) {
    ticket->deadline_point = ticket->submit_time + deadline;
  }
  ticket->job = std::move(job);
  impl_->by_id.emplace(ticket->id, ticket);
  impl_->all.push_back(ticket);

  if (!errors.empty()) {
    impl_->settle(*ticket, JobOutcome::Rejected, PipelineStage::Validation,
                  "invalid config: " + format_config_errors(errors));
    return ticket->id;
  }
  if (impl_->stopping) {
    impl_->settle(*ticket, JobOutcome::Rejected, PipelineStage::Validation,
                  "service shutting down");
    return ticket->id;
  }
  if (impl_->queue.size() >= impl_->config.queue_capacity) {
    if (impl_->config.policy == QueuePolicy::RejectNew) {
      impl_->settle(*ticket, JobOutcome::Rejected,
                    PipelineStage::Validation, "queue full");
      return ticket->id;
    }
    // ShedOldest: evict the head of the queue to make room.
    std::shared_ptr<Impl::Ticket> oldest = impl_->queue.front();
    impl_->queue.pop_front();
    ++impl_->counters.shed;
    if (impl_->config.trace != nullptr) {
      impl_->config.trace->metrics().counter("service.shed").add(1);
    }
    if (impl_->config.telemetry != nullptr) {
      impl_->config.telemetry->on_job_shed(oldest->id,
                                           impl_->queue.size());
    }
    impl_->settle(*oldest, JobOutcome::Rejected, PipelineStage::Validation,
                  "shed: queue full and policy is ShedOldest");
  }
  impl_->queue.push_back(ticket);
  impl_->gauge_queue_depth();
  if (impl_->config.telemetry != nullptr) {
    impl_->config.telemetry->on_job_accepted(ticket->id,
                                             impl_->queue.size());
  }
  impl_->work_ready.notify_one();
  return ticket->id;
}

bool RankingService::cancel(std::uint64_t id) {
  MutexLock lock(impl_->mutex);
  const auto it = impl_->by_id.find(id);
  if (it == impl_->by_id.end()) {
    return false;
  }
  Impl::Ticket& ticket = *it->second;
  switch (ticket.state) {
    case Impl::Ticket::State::Queued:
      // Settles immediately; the executor skips Done tickets on pop.
      impl_->settle(ticket, JobOutcome::Cancelled,
                    PipelineStage::Validation, "cancelled while queued");
      return true;
    case Impl::Ticket::State::Running:
      ticket.cancel_requested.store(true, std::memory_order_relaxed);
      return true;
    case Impl::Ticket::State::Done:
      return false;
  }
  return false;
}

JobResult RankingService::wait(std::uint64_t id) {
  MutexLock lock(impl_->mutex);
  const auto it = impl_->by_id.find(id);
  CR_EXPECTS(it != impl_->by_id.end(), "unknown job id");
  const std::shared_ptr<Impl::Ticket> ticket = it->second;
  while (ticket->state != Impl::Ticket::State::Done) {
    impl_->job_done.wait(impl_->mutex);
  }
  return ticket->result;
}

std::vector<JobResult> RankingService::drain() {
  MutexLock lock(impl_->mutex);
  // Snapshot now: jobs submitted while draining are not waited on.
  const std::vector<std::shared_ptr<Impl::Ticket>> tickets = impl_->all;
  std::vector<JobResult> results;
  results.reserve(tickets.size());
  for (const auto& ticket : tickets) {
    while (ticket->state != Impl::Ticket::State::Done) {
      impl_->job_done.wait(impl_->mutex);
    }
    results.push_back(ticket->result);
  }
  return results;
}

ServiceStats RankingService::stats() const {
  MutexLock lock(impl_->mutex);
  return impl_->counters;
}

ArenaStats RankingService::arena_stats() const {
  ArenaStats total;
  for (const auto& arena : impl_->arenas) {
    const ArenaStats s = arena->stats();
    total.system_allocs += s.system_allocs;
    total.bytes_reserved += s.bytes_reserved;
    total.bytes_used += s.bytes_used;
    total.bytes_peak += s.bytes_peak;
    total.allocs += s.allocs;
    total.oversize_allocs += s.oversize_allocs;
    total.resets += s.resets;
    total.skipped_resets += s.skipped_resets;
    total.outstanding += s.outstanding;
  }
  return total;
}

}  // namespace crowdrank::service
