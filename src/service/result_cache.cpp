#include "service/result_cache.hpp"

#include "core/config_hash.hpp"
#include "util/error.hpp"

namespace crowdrank::service {

namespace {

/// Separates cache keys from frame checksums and any other StableHash use.
constexpr std::uint64_t kCacheKeySeed = 0x43414348;  // "CACH"

}  // namespace

const char* cache_control_name(CacheControl control) {
  switch (control) {
    case CacheControl::Default:
      return "default";
    case CacheControl::Bypass:
      return "bypass";
    case CacheControl::Refresh:
      return "refresh";
    case CacheControl::RequireHit:
      return "require_hit";
  }
  return "unknown";
}

CacheKey compute_cache_key(const VoteBatch& votes, std::size_t object_count,
                           std::size_t worker_count, std::uint64_t seed,
                           const InferenceConfig& inference, bool repair,
                           const HardeningPolicy* policy) {
  StableHash hash(kCacheKeySeed);
  hash.add_u64(kCacheKeySchema);
  hash.add_u64(votes.size());
  for (const Vote& vote : votes) {
    hash.add_u64(vote.worker);
    hash.add_u64(vote.i);
    hash.add_u64(vote.j);
    hash.add_bool(vote.prefers_i);
  }
  hash.add_u64(object_count);
  hash.add_u64(worker_count);
  hash.add_u64(seed);
  hash.add_bool(repair);
  // The policy only shapes the repair path; strict-path keys ignore it so
  // callers there need not supply one (RankParams documents hardening as
  // required only when repair).
  if (repair) {
    CR_EXPECTS(policy != nullptr,
               "compute_cache_key: repair = true requires a hardening policy");
    hash.add_bool(policy->drop_out_of_range);
    hash.add_bool(policy->drop_self_votes);
    hash.add_bool(policy->drop_duplicates);
    hash.add_bool(policy->drop_conflicting);
    hash.add_bool(policy->restrict_to_largest_component);
  }
  hash_append(hash, inference);
  return hash.digest();
}

ResultCache::ResultCache(ResultCacheConfig config)
    : config_(std::move(config)) {
  CR_EXPECTS(config_.capacity >= 1,
             "ResultCache capacity must be at least 1");
  if (!config_.disk_dir.empty()) {
    // Best-effort: an uncreatable directory degrades to memory-only
    // behavior, surfacing as disk_errors on every write attempt.
    artifact::ensure_directory(config_.disk_dir);
  }
}

std::string ResultCache::artifact_path(const std::string& dir,
                                       const CacheKey& key) {
  return dir + "/" + key.hex() + ".crart";
}

void ResultCache::count(const char* event) {
  if (config_.metrics != nullptr) {
    config_.metrics->counter(std::string("service.cache.") + event).add(1);
  }
}

void ResultCache::store_in_memory(const CacheKey& key,
                                  const CachedResult& result) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = result;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, result);
    index_.emplace(key, lru_.begin());
  }
  ++stats_.insertions;
  while (lru_.size() > config_.capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    count("eviction");
  }
}

std::optional<CachedResult> ResultCache::lookup(const CacheKey& key) {
  {
    MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      count("hit");
      return it->second->second;
    }
    if (config_.disk_dir.empty()) {
      ++stats_.misses;
      count("miss");
      return std::nullopt;
    }
  }
  // The disk read + decode run unlocked: a cold lookup must not serialize
  // every other executor behind one thread's IO. Keys are content hashes,
  // so a racing insert/promote of the same key stores the identical value
  // and the re-acquired store below harmlessly overwrites it.
  const artifact::Result<std::string> bytes =
      artifact::read_file(artifact_path(config_.disk_dir, key));
  artifact::Result<CachedResult> decoded;
  if (bytes.ok()) {
    decoded = artifact::decode_result(*bytes.value);
  }
  MutexLock lock(mutex_);
  if (decoded.ok()) {
    store_in_memory(key, *decoded.value);
    ++stats_.disk_hits;
    count("disk_hit");
    return std::move(decoded.value);
  }
  if (bytes.ok()) {
    // Unreadable artifact (corruption, schema drift): a miss, counted.
    ++stats_.disk_errors;
    count("disk_error");
  }
  ++stats_.misses;
  count("miss");
  return std::nullopt;
}

void ResultCache::insert(const CacheKey& key, const CachedResult& result) {
  {
    MutexLock lock(mutex_);
    store_in_memory(key, result);
    count("insert");
  }
  if (config_.disk_dir.empty()) {
    return;
  }
  // Encode + write outside the mutex (same reasoning as lookup); only the
  // stats update re-acquires it. write_file is tmp-then-rename, so two
  // racing writers of one key both leave a complete artifact behind.
  const std::optional<artifact::ArtifactError> error = artifact::write_file(
      artifact_path(config_.disk_dir, key), artifact::encode(result));
  MutexLock lock(mutex_);
  if (error.has_value()) {
    ++stats_.disk_errors;
    count("disk_error");
  } else {
    ++stats_.disk_writes;
    count("disk_write");
  }
}

std::size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

CacheStats ResultCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace crowdrank::service
