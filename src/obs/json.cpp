#include "obs/json.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace crowdrank::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::number_at(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::string_at(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue value;
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        value.kind = JsonValue::Kind::String;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        value.kind = JsonValue::Kind::Bool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        value.kind = JsonValue::Kind::Bool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        value.kind = JsonValue::Kind::Null;
        return value;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      c = peek();
      ++pos_;
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The exporters only \u-escape control bytes; decode the code
          // point as a single char for that range and fail beyond it.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
            fail("invalid \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          pos_ += 4;
          break;
        }
        default:
          fail(std::string("unsupported escape '\\") + c + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    JsonValue value;
    value.kind = JsonValue::Kind::Number;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_,
                        value.number);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace crowdrank::obs
