// Flight recorder: fixed-capacity per-executor rings of recent events.
//
// The serving layer needs an always-on record of "what just happened" —
// job lifecycle transitions, stage checkpoints, queue-depth samples —
// cheap enough to leave enabled under full traffic, and readable at any
// moment by the telemetry exporter without stopping the executors. Each
// ring belongs to exactly one writer thread (executor i writes ring i+1;
// ring 0 is the control ring for submit-side events, serialized by the
// service mutex), so a write is a handful of plain-codegen atomic stores
// plus a per-ring seqlock version bump — no locks, no allocation, O(1)
// always.
//
// Snapshots are lossless: the reader copies a ring under the seqlock
// protocol (Boehm, "Can seqlocks get along with programming language
// memory models?") and retries if a write landed mid-copy, so it never
// observes a torn event. Old events are overwritten in FIFO order once a
// ring is full; `Ring::head` counts every event ever recorded, so a
// snapshot also reports how many were dropped by wraparound.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace crowdrank::obs {

/// What one recorder entry describes.
enum class EventKind : std::uint8_t {
  JobAccepted,      ///< submit admitted a job (value = queue depth after)
  JobShed,          ///< backpressure evicted a job (value = queue depth)
  JobStarted,       ///< an executor picked the job up (value = queue ms)
  StageCheckpoint,  ///< a stage boundary passed (value = stage ms)
  JobFinished,      ///< terminal outcome reached (value = run ms)
  QueueDepth,       ///< depth sample outside job transitions
  Hardening,        ///< input hardening repaired the batch (value = drops)
};

/// Stable machine-readable kind name ("job_accepted", ...).
const char* event_kind_name(EventKind kind);

/// One recorded event. `code` is a kind-specific small enum: the stage id
/// for StageCheckpoint, the outcome id for JobFinished, 0 otherwise; the
/// recorder stores codes, not names, so it stays independent of the
/// service vocabulary above it.
struct Event {
  double t_us = 0.0;  ///< offset from the recorder's steady-clock epoch
  std::uint64_t job_id = 0;  ///< 0 when the event is not job-scoped
  EventKind kind = EventKind::QueueDepth;
  std::uint8_t code = 0;
  double value = 0.0;
};

/// What `snapshot` returns for one ring: the retained events oldest to
/// newest plus the total ever recorded (total - events.size() = number
/// lost to wraparound).
struct RingSnapshot {
  std::vector<Event> events;
  std::uint64_t total_recorded = 0;
};

class FlightRecorder {
 public:
  /// `ring_count` rings of `capacity` events each. One writer per ring.
  FlightRecorder(std::size_t ring_count, std::size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  std::size_t ring_count() const { return rings_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Microseconds since construction (the timestamp base for `Event`).
  double now_us() const;

  /// Records `e` on `ring` (clamped into range), stamping `e.t_us` with
  /// `now_us()` when it is zero. Caller contract: at most one thread
  /// writes a given ring at a time.
  void record(std::size_t ring, Event e);

  /// Lossless copy of one ring, oldest event first. Safe concurrently
  /// with the ring's writer (retries while a write is in flight).
  RingSnapshot snapshot(std::size_t ring) const;

  /// Every ring's retained events merged into one timeline (ascending
  /// t_us; ties keep ring order). `total_recorded` sums all rings.
  RingSnapshot snapshot_all() const;

 private:
  // Seqlock-protected ring. The payload slots are relaxed atomics rather
  // than plain fields so a concurrent snapshot is a data-race-free stale
  // read, never undefined behavior; `version` is odd while a write is in
  // flight and the reader retries until it brackets a quiet copy.
  //
  // TSA escape (sanctioned): this is the one lock-free protocol in src/
  // that the thread-safety preset cannot model — there is no capability to
  // acquire, so the slots carry no CR_GUARDED_BY / CR_PT_GUARDED_BY. The
  // correctness argument lives in the memory_order arguments in the .cpp,
  // using the fence-free form from Boehm's seqlock paper: the writer does
  // a relaxed version bump, then *release* payload stores, then a release
  // version close; the reader does an acquire version read, *acquire*
  // payload loads, then a relaxed version re-check. The acquire/release
  // pairs on the payload words stand in for the fences the classic form
  // uses (identical codegen on x86) — fences were rejected here because
  // GCC's -fsanitize=thread cannot instrument atomic_thread_fence
  // (-Werror=tsan) and would leave the protocol invisible to the race
  // detector. The runtime witness is the torn-read stress in
  // tests/obs/test_flight_recorder.cpp, which runs under the tsan preset.
  struct Slot {
    std::atomic<double> t_us{0.0};
    std::atomic<std::uint64_t> job_id{0};
    std::atomic<std::uint32_t> kind_code{0};  ///< kind << 8 | code
    std::atomic<double> value{0.0};
  };
  struct Ring {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> head{0};  ///< total events ever recorded
    std::unique_ptr<Slot[]> slots;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace crowdrank::obs
