// Minimal JSON value model + recursive-descent parser.
//
// The telemetry plane writes nested JSON (snapshot lines, postmortems)
// that `crowdrank top`, the exporter tests, and tools read back; the
// flat-object reader in io/job_record.cpp cannot represent it, and the
// project carries no external JSON dependency by design. This parser
// covers the full JSON grammar the exporters emit (objects, arrays,
// strings with the exporter's escape set, numbers, booleans, null) and
// fails loudly with a byte offset on anything malformed. Object members
// keep insertion order so round-trip tests can compare deterministically.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace crowdrank::obs {

/// One parsed JSON value. A tagged struct rather than a std::variant so
/// the recursive members need no indirection gymnastics.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  ///< Array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// First member with `key`, or nullptr (objects only).
  const JsonValue* find(const std::string& key) const;

  /// Member lookups with defaults for optional schema fields.
  double number_at(const std::string& key, double fallback = 0.0) const;
  std::string string_at(const std::string& key,
                        const std::string& fallback = "") const;
};

/// Parses exactly one JSON document (trailing whitespace allowed, nothing
/// else). Throws crowdrank::Error naming the byte offset on malformed
/// input.
JsonValue parse_json(const std::string& text);

}  // namespace crowdrank::obs
