// Serialization formats of the telemetry plane.
//
// Two machine-readable views of the same live state, written periodically
// by obs::Telemetry and consumed by different tooling:
//
//  * Prometheus text exposition (`write_prometheus`) — the de-facto
//    scrape format: counters and gauges as plain samples, histograms as
//    cumulative `_bucket{le="..."}` series with explicit upper bounds
//    plus `_sum`/`_count`. Metric names are sanitized (dots and other
//    non-identifier bytes become underscores) and prefixed `crowdrank_`.
//
//  * Snapshot JSON (`write_snapshot_json`) — one self-contained JSON
//    object per period, appended as a line of `telemetry.jsonl`. Carries
//    a schema version, a monotonic sequence number, the full metrics
//    registry (counters, gauges, histograms with sparse buckets and the
//    shared p50/p99 quantile estimates), windowed rates, and the flight-
//    recorder tail. tools/check_telemetry.py validates the schema;
//    `crowdrank top` renders the stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace crowdrank::obs {

/// Schema version stamped into every snapshot line ("v" key) and echoed
/// by the validators; bump on any breaking change to the JSONL layout.
inline constexpr int kSnapshotSchemaVersion = 1;

/// Rates derived over the window since the previous snapshot.
struct SnapshotWindow {
  double jobs_per_sec = 0.0;    ///< finished jobs over the window
  double window_ms = 0.0;       ///< wall length of the window
  std::uint64_t finished = 0;   ///< total finished jobs so far
};

/// Everything one snapshot serializes; built by obs::Telemetry.
struct TelemetrySnapshot {
  std::uint64_t seq = 0;
  double t_us = 0.0;  ///< offset from the telemetry plane's epoch
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, metrics::Histogram::Snapshot>>
      histograms;
  SnapshotWindow window;
  std::vector<Event> events;  ///< flight-recorder tail, oldest first
  std::uint64_t events_recorded = 0;  ///< total ever recorded
};

/// Prometheus text exposition of the counters/gauges/histograms. The
/// snapshot's window rates surface as synthetic gauges
/// (`crowdrank_jobs_per_sec`).
void write_prometheus(std::ostream& os, const TelemetrySnapshot& snapshot);

/// One JSON object (single line, no trailing newline) for telemetry.jsonl.
void write_snapshot_json(std::ostream& os,
                         const TelemetrySnapshot& snapshot);

/// `name` with every byte outside [a-zA-Z0-9_:] replaced by '_' and the
/// `crowdrank_` family prefix applied — the Prometheus identifier rule.
std::string prometheus_name(const std::string& name);

/// Everything a per-job postmortem dump carries. The service fills this
/// for every job ending Failed / TimedOut / Degraded: identity and
/// terminal state, a config echo (seed, search, shape), the hardening
/// accounting, the job's span subtree (parents remapped so the job span
/// is the root, -1), and the flight-recorder window around the job.
struct Postmortem {
  std::uint64_t job_id = 0;
  std::size_t executor = 0;  ///< executor index that ran the job
  std::string outcome;       ///< terminal outcome name
  std::string stage;         ///< stage the job ended in
  std::string reason;        ///< human-readable failure detail
  double t_us = 0.0;         ///< plane-epoch offset of the outcome
  std::vector<std::pair<std::string, trace::AttrValue>> config_echo;
  std::vector<std::pair<std::string, std::int64_t>> hardening;
  std::vector<trace::SpanRecord> spans;
  std::vector<Event> events;
};

/// Pretty-printed JSON postmortem document (multi-line; one per file).
void write_postmortem_json(std::ostream& os, const Postmortem& postmortem);

}  // namespace crowdrank::obs
