// The live telemetry plane: one object owning everything the service
// needs to be observable while it runs.
//
//  * A private metrics::Registry fed by the hook methods below — separate
//    from any TraceSink registry so telemetry can stay on for the life of
//    the service while per-run sinks come and go.
//  * A FlightRecorder with one ring per executor plus a control ring
//    (ring 0) for submit-side events; hooks translate service activity
//    into structured events.
//  * An exporter thread that wakes every `period` and serializes the
//    current state to `<dir>/telemetry.jsonl` (append, one snapshot per
//    line) and `<dir>/metrics.prom` (atomically replaced Prometheus text
//    exposition). A final snapshot is flushed on destruction so short
//    runs always leave at least one line behind.
//  * Bounded per-job postmortems under `<dir>/postmortems/`, written
//    synchronously by the executor that finished the job.
//
// Layering: obs sits on util only. The service passes stage / outcome
// *names* (static strings) and small numeric codes into the hooks; obs
// never includes service or core headers, so service can link obs.
//
// Determinism: every hook observes and never influences — no RNG, no
// shared state the pipeline reads — so rankings are bitwise-identical
// with telemetry on or off (pinned by tests/core/test_determinism.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>

#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "util/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank::obs {

/// Knobs for the telemetry plane. Defaults suit an interactive serve run;
/// tests shrink the period and capacities.
struct TelemetryConfig {
  /// Output directory; created (one level) if missing. telemetry.jsonl,
  /// metrics.prom, and postmortems/ live under it.
  std::string directory;
  /// Snapshot cadence of the exporter thread.
  std::chrono::milliseconds period{250};
  /// Flight-recorder slots per ring (per executor).
  std::size_t recorder_capacity = 256;
  /// Max events included in each periodic snapshot line (tail across all
  /// rings, oldest dropped first).
  std::size_t snapshot_tail = 32;
  /// Cap on postmortem files; once reached further failures only bump the
  /// `service.postmortem.skipped` counter (bounded disk, no surprises).
  std::size_t max_postmortems = 16;
};

/// See the file comment. Construct before the service, pass its address
/// via ServiceConfig::telemetry, destroy after the service drains.
class Telemetry {
 public:
  /// `executor_count` sizes the flight recorder: ring 0 is the control
  /// ring (submit path, serialized by the caller), executors use their
  /// index + 1.
  Telemetry(TelemetryConfig config, std::size_t executor_count);
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;
  /// Stops the exporter and flushes one final snapshot.
  ~Telemetry();

  const TelemetryConfig& config() const { return config_; }
  metrics::Registry& registry() { return registry_; }
  FlightRecorder& recorder() { return recorder_; }
  /// Microseconds since this plane was constructed (its epoch; all event
  /// and snapshot timestamps are offsets from it).
  double now_us() const { return recorder_.now_us(); }

  // -- service hooks ----------------------------------------------------
  // The submit-path hooks (accepted / shed / queue depth) write the
  // control ring and must be externally serialized — the service calls
  // them under its queue mutex. The executor hooks take the executor's
  // index and are single-writer per ring by construction.

  void on_job_accepted(std::uint64_t job_id, std::size_t queue_depth);
  void on_job_shed(std::uint64_t job_id, std::size_t queue_depth);
  void on_queue_depth(std::size_t queue_depth);

  void on_job_started(std::size_t executor, std::uint64_t job_id,
                      double queue_ms);
  /// One pipeline stage finished inside a job. `stage` is a static stage
  /// name; `stage_code` its numeric enum value (stored in the event).
  void on_stage_checkpoint(std::size_t executor, std::uint64_t job_id,
                           const char* stage, std::uint8_t stage_code,
                           double stage_ms);
  /// Hardening repaired the job's batch, dropping `dropped` votes.
  void on_hardening(std::size_t executor, std::uint64_t job_id,
                    std::uint64_t dropped);
  /// Executor-side terminal hook: JobFinished event plus the latency
  /// histograms. The outcome *counter* goes through `on_outcome`, which
  /// the service calls for every terminal job (including ones that never
  /// reached an executor), so the two never double-count.
  void on_job_finished(std::size_t executor, std::uint64_t job_id,
                       const char* outcome, std::uint8_t outcome_code,
                       double queue_ms, double run_ms);
  /// A job settled on the submit path (rejected, shed, cancelled while
  /// queued): control-ring JobFinished event. Caller-serialized.
  void on_job_settled(std::uint64_t job_id, const char* outcome,
                      std::uint8_t outcome_code);
  /// Bumps `service.outcome.<outcome>` — once per terminal job, any path.
  void on_outcome(const char* outcome);
  /// Bumps `service.cache.<event>` ("hit" / "miss" / "store"): the result
  /// cache's warm-path accounting as seen per job by the executors.
  /// Thread-safe (sharded counters).
  void on_cache(const char* event);

  /// Writes `<dir>/postmortems/job_<id>_<outcome>.json` unless the cap
  /// has been reached. Thread-safe; called by executors.
  void write_postmortem(const Postmortem& postmortem)
      CR_EXCLUDES(postmortem_mutex_);

  /// Builds and writes one snapshot immediately (same path the periodic
  /// exporter takes). Used by the destructor and by tests that cannot
  /// wait out a period.
  void flush_snapshot() CR_EXCLUDES(export_mutex_);

  std::uint64_t snapshots_written() const CR_EXCLUDES(export_mutex_);
  std::size_t postmortems_written() const CR_EXCLUDES(postmortem_mutex_);

 private:
  void exporter_loop() CR_EXCLUDES(stop_mutex_, export_mutex_);
  TelemetrySnapshot build_snapshot() CR_REQUIRES(export_mutex_);
  /// Appends the JSONL line and atomically replaces metrics.prom.
  void write_outputs(const TelemetrySnapshot& snapshot)
      CR_REQUIRES(export_mutex_);

  TelemetryConfig config_;
  metrics::Registry registry_;
  FlightRecorder recorder_;

  /// Snapshot building + file I/O: one exporter pass (build + write) is
  /// a single critical section so snapshots stay sequenced and the output
  /// streams are never interleaved.
  mutable Mutex export_mutex_;
  std::ofstream jsonl_ CR_GUARDED_BY(export_mutex_);
  std::uint64_t seq_ CR_GUARDED_BY(export_mutex_) = 0;
  double last_snapshot_us_ CR_GUARDED_BY(export_mutex_) = 0.0;
  std::uint64_t last_finished_ CR_GUARDED_BY(export_mutex_) = 0;

  mutable Mutex postmortem_mutex_;
  std::size_t postmortems_written_ CR_GUARDED_BY(postmortem_mutex_) = 0;

  Mutex stop_mutex_;
  CondVar stop_cv_;
  bool stopping_ CR_GUARDED_BY(stop_mutex_) = false;
  std::thread exporter_;
};

}  // namespace crowdrank::obs
