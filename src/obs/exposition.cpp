#include "obs/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <variant>

namespace crowdrank::obs {

namespace {

/// Shortest round-trippable decimal, JSON- and Prometheus-safe (matches
/// the RunReport exporter's rendering so numbers diff cleanly across
/// formats). Non-finite values serialize as null / NaN respectively at
/// the call sites that can see them; samples here are always finite.
void number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void attr_value(std::ostream& os, const trace::AttrValue& value);

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void attr_value(std::ostream& os, const trace::AttrValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&value)) {
    number(os, *d);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? "true" : "false");
  } else {
    json_string(os, std::get<std::string>(value));
  }
}

void event_json(std::ostream& os, const Event& e) {
  os << "{\"t_us\": ";
  number(os, e.t_us);
  os << ", \"kind\": ";
  json_string(os, event_kind_name(e.kind));
  os << ", \"job\": " << e.job_id << ", \"code\": "
     << static_cast<unsigned>(e.code) << ", \"value\": ";
  number(os, e.value);
  os << '}';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "crowdrank_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const TelemetrySnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " counter\n" << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n" << prom << ' ';
    number(os, value);
    os << '\n';
  }
  {
    const std::string prom = prometheus_name("jobs_per_sec");
    os << "# TYPE " << prom << " gauge\n" << prom << ' ';
    number(os, snapshot.window.jobs_per_sec);
    os << '\n';
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " histogram\n";
    // Cumulative counts at each non-empty explicit bound; exposition
    // permits sparse `le` ladders as long as counts never decrease.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) {
        continue;
      }
      cumulative += snap.buckets[b];
      os << prom << "_bucket{le=\"";
      number(os, metrics::Histogram::bucket_upper_bound(b));
      os << "\"} " << cumulative << '\n';
    }
    os << prom << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
    os << prom << "_sum ";
    number(os, snap.sum);
    os << '\n' << prom << "_count " << snap.count << '\n';
  }
}

void write_snapshot_json(std::ostream& os,
                         const TelemetrySnapshot& snapshot) {
  os << "{\"v\": " << kSnapshotSchemaVersion
     << ", \"seq\": " << snapshot.seq << ", \"t_us\": ";
  number(os, snapshot.t_us);

  os << ", \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, snapshot.counters[i].first);
    os << ": " << snapshot.counters[i].second;
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, snapshot.gauges[i].first);
    os << ": ";
    number(os, snapshot.gauges[i].second);
  }

  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, snap] = snapshot.histograms[i];
    if (i > 0) os << ", ";
    json_string(os, name);
    os << ": {\"count\": " << snap.count << ", \"sum\": ";
    number(os, snap.sum);
    os << ", \"min\": ";
    number(os, snap.count > 0 ? snap.min : 0.0);
    os << ", \"max\": ";
    number(os, snap.count > 0 ? snap.max : 0.0);
    os << ", \"p50\": ";
    number(os, snap.quantile(0.50));
    os << ", \"p99\": ";
    number(os, snap.quantile(0.99));
    os << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << '[';
      number(os, metrics::Histogram::bucket_upper_bound(b));
      os << ", " << snap.buckets[b] << ']';
    }
    os << "]}";
  }

  os << "}, \"window\": {\"jobs_per_sec\": ";
  number(os, snapshot.window.jobs_per_sec);
  os << ", \"window_ms\": ";
  number(os, snapshot.window.window_ms);
  os << ", \"finished\": " << snapshot.window.finished;

  os << "}, \"events_recorded\": " << snapshot.events_recorded
     << ", \"events\": [";
  for (std::size_t i = 0; i < snapshot.events.size(); ++i) {
    if (i > 0) os << ", ";
    event_json(os, snapshot.events[i]);
  }
  os << "]}";
}

void write_postmortem_json(std::ostream& os, const Postmortem& postmortem) {
  os << "{\n  \"v\": " << kSnapshotSchemaVersion
     << ",\n  \"job\": " << postmortem.job_id
     << ",\n  \"executor\": " << postmortem.executor << ",\n  \"outcome\": ";
  json_string(os, postmortem.outcome);
  os << ",\n  \"stage\": ";
  json_string(os, postmortem.stage);
  os << ",\n  \"reason\": ";
  json_string(os, postmortem.reason);
  os << ",\n  \"t_us\": ";
  number(os, postmortem.t_us);

  os << ",\n  \"config\": {";
  for (std::size_t i = 0; i < postmortem.config_echo.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, postmortem.config_echo[i].first);
    os << ": ";
    attr_value(os, postmortem.config_echo[i].second);
  }

  os << "},\n  \"hardening\": {";
  for (std::size_t i = 0; i < postmortem.hardening.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, postmortem.hardening[i].first);
    os << ": " << postmortem.hardening[i].second;
  }

  os << "},\n  \"spans\": [";
  for (std::size_t i = 0; i < postmortem.spans.size(); ++i) {
    const trace::SpanRecord& span = postmortem.spans[i];
    if (i > 0) os << ',';
    os << "\n    {\"name\": ";
    json_string(os, span.name);
    os << ", \"start_us\": ";
    number(os, span.start_us);
    os << ", \"dur_us\": ";
    number(os, span.dur_us);
    os << ", \"tid\": " << span.tid << ", \"parent\": ";
    if (span.parent == trace::SpanRecord::kNoParent) {
      os << -1;
    } else {
      os << span.parent;
    }
    os << ", \"attrs\": {";
    for (std::size_t a = 0; a < span.attrs.size(); ++a) {
      if (a > 0) os << ", ";
      json_string(os, span.attrs[a].first);
      os << ": ";
      attr_value(os, span.attrs[a].second);
    }
    os << "}}";
  }
  os << (postmortem.spans.empty() ? "]" : "\n  ]");

  os << ",\n  \"events\": [";
  for (std::size_t i = 0; i < postmortem.events.size(); ++i) {
    if (i > 0) os << ',';
    os << "\n    ";
    event_json(os, postmortem.events[i]);
  }
  os << (postmortem.events.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace crowdrank::obs
