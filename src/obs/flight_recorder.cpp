#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"

namespace crowdrank::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::JobAccepted:
      return "job_accepted";
    case EventKind::JobShed:
      return "job_shed";
    case EventKind::JobStarted:
      return "job_started";
    case EventKind::StageCheckpoint:
      return "stage_checkpoint";
    case EventKind::JobFinished:
      return "job_finished";
    case EventKind::QueueDepth:
      return "queue_depth";
    case EventKind::Hardening:
      return "hardening";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t ring_count, std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(capacity) {
  CR_EXPECTS(ring_count >= 1, "FlightRecorder needs at least one ring");
  CR_EXPECTS(capacity >= 1, "FlightRecorder ring capacity must be >= 1");
  rings_.reserve(ring_count);
  for (std::size_t r = 0; r < ring_count; ++r) {
    auto ring = std::make_unique<Ring>();
    ring->slots = std::make_unique<Slot[]>(capacity);
    rings_.push_back(std::move(ring));
  }
}

double FlightRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::record(std::size_t ring_index, Event e) {
  Ring& ring = *rings_[std::min(ring_index, rings_.size() - 1)];
  if (e.t_us == 0.0) {
    e.t_us = now_us();
  }
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head % capacity_];

  // Seqlock writer: odd version marks the write window. Fence-free
  // variant (Boehm §4): each payload store is a release, which orders the
  // version bump before it for any reader that acquires that slot word —
  // same x86 codegen as the relaxed-stores-behind-a-fence form, but TSan
  // can model it (GCC rejects atomic_thread_fence outright under
  // -fsanitize=thread, -Werror=tsan). The closing release store publishes
  // the whole window.
  const std::uint64_t v = ring.version.load(std::memory_order_relaxed);
  ring.version.store(v + 1, std::memory_order_relaxed);
  slot.t_us.store(e.t_us, std::memory_order_release);
  slot.job_id.store(e.job_id, std::memory_order_release);
  slot.kind_code.store(
      (static_cast<std::uint32_t>(e.kind) << 8) | e.code,
      std::memory_order_release);
  slot.value.store(e.value, std::memory_order_release);
  ring.head.store(head + 1, std::memory_order_relaxed);
  ring.version.store(v + 2, std::memory_order_release);
}

RingSnapshot FlightRecorder::snapshot(std::size_t ring_index) const {
  const Ring& ring = *rings_[std::min(ring_index, rings_.size() - 1)];
  std::uint64_t head = 0;
  std::vector<Event> raw(capacity_);
  // Seqlock reader: retry until the copy is bracketed by one even version.
  // Writes are rare relative to the copy (one event per job transition),
  // so the loop settles almost immediately; yield keeps a pathological
  // writer storm from spinning the exporter hot.
  while (true) {
    const std::uint64_t v1 = ring.version.load(std::memory_order_acquire);
    if ((v1 & 1) == 0) {
      head = ring.head.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < capacity_; ++i) {
        const Slot& slot = ring.slots[i];
        // Acquire loads mirror the writer's release stores: they keep the
        // version re-check below ordered after every payload read (the
        // fence-free dual of the acquire fence the fence form would use).
        const std::uint32_t kc =
            slot.kind_code.load(std::memory_order_acquire);
        raw[i].t_us = slot.t_us.load(std::memory_order_acquire);
        raw[i].job_id = slot.job_id.load(std::memory_order_acquire);
        raw[i].kind = static_cast<EventKind>(kc >> 8);
        raw[i].code = static_cast<std::uint8_t>(kc & 0xff);
        raw[i].value = slot.value.load(std::memory_order_acquire);
      }
      if (ring.version.load(std::memory_order_relaxed) == v1) {
        break;
      }
    }
    std::this_thread::yield();
  }

  RingSnapshot out;
  out.total_recorded = head;
  const std::uint64_t retained =
      std::min<std::uint64_t>(head, capacity_);
  out.events.reserve(retained);
  for (std::uint64_t k = head - retained; k < head; ++k) {
    out.events.push_back(raw[k % capacity_]);
  }
  return out;
}

RingSnapshot FlightRecorder::snapshot_all() const {
  RingSnapshot out;
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    RingSnapshot ring = snapshot(r);
    out.total_recorded += ring.total_recorded;
    out.events.insert(out.events.end(), ring.events.begin(),
                      ring.events.end());
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const Event& a, const Event& b) {
                     return a.t_us < b.t_us;
                   });
  return out;
}

}  // namespace crowdrank::obs
