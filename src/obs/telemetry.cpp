#include "obs/telemetry.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "util/logging.hpp"

namespace crowdrank::obs {

namespace fs = std::filesystem;

namespace {

fs::path dir_of(const TelemetryConfig& config) {
  return fs::path(config.directory);
}

}  // namespace

Telemetry::Telemetry(TelemetryConfig config, std::size_t executor_count)
    : config_(std::move(config)),
      recorder_(executor_count + 1, config_.recorder_capacity) {
  std::error_code ec;
  fs::create_directories(dir_of(config_) / "postmortems", ec);
  if (ec) {
    log_warn() << "telemetry: cannot create " << config_.directory << ": "
               << ec.message();
  }
  jsonl_.open(dir_of(config_) / "telemetry.jsonl",
              std::ios::out | std::ios::trunc);
  if (!jsonl_) {
    log_warn() << "telemetry: cannot open telemetry.jsonl under "
               << config_.directory;
  }
  if (config_.period.count() > 0) {
    exporter_ = std::thread([this] { exporter_loop(); });
  }
}

Telemetry::~Telemetry() {
  {
    MutexLock lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (exporter_.joinable()) {
    exporter_.join();
  }
  // Final snapshot so even a run shorter than one period leaves a
  // complete record behind.
  flush_snapshot();
}

void Telemetry::exporter_loop() {
  MutexLock lock(stop_mutex_);
  while (!stopping_) {
    // One deadline per snapshot period; the explicit re-check loop keeps
    // the guarded stopping_ read inside the analyzed locked region (a wait
    // predicate lambda would hide it from TSA) while still absorbing
    // spurious wakeups without shortening the period.
    const auto deadline = std::chrono::steady_clock::now() + config_.period;
    while (!stopping_) {
      if (stop_cv_.wait_until(stop_mutex_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (stopping_) {
      return;  // destructor flushes the final snapshot
    }
    lock.unlock();
    flush_snapshot();
    lock.lock();
  }
}

void Telemetry::on_job_accepted(std::uint64_t job_id,
                                std::size_t queue_depth) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::JobAccepted;
  e.value = static_cast<double>(queue_depth);
  recorder_.record(0, e);
  registry_.gauge("service.queue_depth").set(static_cast<double>(queue_depth));
}

void Telemetry::on_job_shed(std::uint64_t job_id, std::size_t queue_depth) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::JobShed;
  e.value = static_cast<double>(queue_depth);
  recorder_.record(0, e);
  registry_.counter("service.shed").increment();
}

void Telemetry::on_queue_depth(std::size_t queue_depth) {
  Event e;
  e.kind = EventKind::QueueDepth;
  e.value = static_cast<double>(queue_depth);
  recorder_.record(0, e);
  registry_.gauge("service.queue_depth").set(static_cast<double>(queue_depth));
}

void Telemetry::on_job_started(std::size_t executor, std::uint64_t job_id,
                               double queue_ms) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::JobStarted;
  e.value = queue_ms;
  recorder_.record(executor + 1, e);
}

void Telemetry::on_stage_checkpoint(std::size_t executor,
                                    std::uint64_t job_id, const char* stage,
                                    std::uint8_t stage_code,
                                    double stage_ms) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::StageCheckpoint;
  e.code = stage_code;
  e.value = stage_ms;
  recorder_.record(executor + 1, e);
  registry_.histogram(std::string("service.stage_ms.") + stage)
      .observe(stage_ms);
}

void Telemetry::on_hardening(std::size_t executor, std::uint64_t job_id,
                             std::uint64_t dropped) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::Hardening;
  e.value = static_cast<double>(dropped);
  recorder_.record(executor + 1, e);
  registry_.counter("service.hardening.jobs_repaired").increment();
  registry_.counter("service.hardening.votes_dropped").add(dropped);
}

void Telemetry::on_job_finished(std::size_t executor, std::uint64_t job_id,
                                const char* /*outcome*/,
                                std::uint8_t outcome_code, double queue_ms,
                                double run_ms) {
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::JobFinished;
  e.code = outcome_code;
  e.value = run_ms;
  recorder_.record(executor + 1, e);
  registry_.histogram("service.job_ms").observe(run_ms);
  registry_.histogram("service.queue_ms").observe(queue_ms);
}

void Telemetry::on_job_settled(std::uint64_t job_id, const char* outcome,
                               std::uint8_t outcome_code) {
  (void)outcome;
  Event e;
  e.job_id = job_id;
  e.kind = EventKind::JobFinished;
  e.code = outcome_code;
  recorder_.record(0, e);
}

void Telemetry::on_outcome(const char* outcome) {
  registry_.counter(std::string("service.outcome.") + outcome).increment();
}

void Telemetry::on_cache(const char* event) {
  registry_.counter(std::string("service.cache.") + event).increment();
}

void Telemetry::write_postmortem(const Postmortem& postmortem) {
  MutexLock lock(postmortem_mutex_);
  if (postmortems_written_ >= config_.max_postmortems) {
    registry_.counter("service.postmortem.skipped").increment();
    return;
  }
  const fs::path path =
      dir_of(config_) / "postmortems" /
      ("job_" + std::to_string(postmortem.job_id) + "_" + postmortem.outcome +
       ".json");
  std::ofstream os(path);
  if (!os) {
    registry_.counter("service.postmortem.skipped").increment();
    log_warn() << "telemetry: cannot write postmortem " << path.string();
    return;
  }
  write_postmortem_json(os, postmortem);
  ++postmortems_written_;
  registry_.counter("service.postmortem.written").increment();
}

TelemetrySnapshot Telemetry::build_snapshot() {
  TelemetrySnapshot snapshot;
  snapshot.seq = seq_++;
  snapshot.t_us = now_us();
  snapshot.counters = registry_.counters();
  snapshot.gauges = registry_.gauges();
  snapshot.histograms = registry_.histograms();

  std::uint64_t finished = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("service.outcome.", 0) == 0) {
      finished += value;
    }
  }
  snapshot.window.finished = finished;
  snapshot.window.window_ms = (snapshot.t_us - last_snapshot_us_) / 1000.0;
  if (snapshot.window.window_ms > 0.0) {
    snapshot.window.jobs_per_sec =
        static_cast<double>(finished - last_finished_) /
        (snapshot.window.window_ms / 1000.0);
  }
  last_snapshot_us_ = snapshot.t_us;
  last_finished_ = finished;

  RingSnapshot merged = recorder_.snapshot_all();
  snapshot.events_recorded = merged.total_recorded;
  if (merged.events.size() > config_.snapshot_tail) {
    merged.events.erase(
        merged.events.begin(),
        merged.events.end() -
            static_cast<std::ptrdiff_t>(config_.snapshot_tail));
  }
  snapshot.events = std::move(merged.events);
  return snapshot;
}

void Telemetry::write_outputs(const TelemetrySnapshot& snapshot) {
  if (jsonl_) {
    write_snapshot_json(jsonl_, snapshot);
    jsonl_ << '\n';
    jsonl_.flush();
  }
  // Replace metrics.prom atomically so a concurrent scrape never reads a
  // half-written exposition.
  const fs::path prom = dir_of(config_) / "metrics.prom";
  const fs::path tmp = dir_of(config_) / "metrics.prom.tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      return;
    }
    write_prometheus(os, snapshot);
  }
  std::error_code ec;
  fs::rename(tmp, prom, ec);
  if (ec) {
    log_warn() << "telemetry: cannot publish metrics.prom: "
               << ec.message();
  }
}

void Telemetry::flush_snapshot() {
  MutexLock lock(export_mutex_);
  write_outputs(build_snapshot());
}

std::uint64_t Telemetry::snapshots_written() const {
  MutexLock lock(export_mutex_);
  return seq_;
}

std::size_t Telemetry::postmortems_written() const {
  MutexLock lock(postmortem_mutex_);
  return postmortems_written_;
}

}  // namespace crowdrank::obs
