// Top-k ranking metrics — the paper's closing future-work direction
// ("consider the same setting for top-k ranking", §VIII).
//
// crowdrank's pipeline always produces a full ranking; these metrics score
// only its head, which is what a top-k requester cares about.
#pragma once

#include <cstddef>

#include "metrics/ranking.hpp"

namespace crowdrank {

/// |top-k(truth) ∩ top-k(estimate)| / k: set recall of the head,
/// order-insensitive. Requires 1 <= k <= n.
double top_k_precision(const Ranking& truth, const Ranking& estimate,
                       std::size_t k);

/// Kendall-style accuracy restricted to the *true* top-k objects: the
/// fraction of the C(k,2) pairs of true-top-k objects that the estimate
/// orders the same way as the truth. Requires 2 <= k <= n.
double top_k_pair_accuracy(const Ranking& truth, const Ranking& estimate,
                           std::size_t k);

/// Mean displacement of the true top-k objects in the estimate:
/// (1/k) * sum over the true top-k v of |pos_est(v) - pos_truth(v)|,
/// normalized by (n - 1) into [0, 1]. 0 = the head is perfectly placed.
double top_k_displacement(const Ranking& truth, const Ranking& estimate,
                          std::size_t k);

}  // namespace crowdrank
