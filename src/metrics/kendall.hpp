// Kendall-tau distance (paper §VI-A5, refs [22][28]).
//
// The paper's accuracy metric is 1 - d where d is the *normalized* Kendall
// tau distance (fraction of discordant pairs) between the aggregated ranking
// and the ground truth. Counting discordant pairs is an inversion count,
// done here with Knight's O(n log n) merge-sort method.
#pragma once

#include <cstddef>

#include "metrics/ranking.hpp"

namespace crowdrank {

/// Number of discordant object pairs between two rankings of the same n.
/// 0 when identical; C(n,2) when exactly reversed.
std::size_t kendall_tau_distance(const Ranking& a, const Ranking& b);

/// Discordant pairs / C(n, 2), in [0, 1]. Requires n >= 2.
double normalized_kendall_tau_distance(const Ranking& a, const Ranking& b);

/// The paper's accuracy: 1 - normalized Kendall tau distance.
double ranking_accuracy(const Ranking& truth, const Ranking& estimate);

/// Kendall's tau-a correlation coefficient in [-1, 1]:
/// (concordant - discordant) / C(n, 2).
double kendall_tau_coefficient(const Ranking& a, const Ranking& b);

}  // namespace crowdrank
