// Spearman rank statistics (paper §VII cites Spearman's rho [26] as the
// other standard rank-aggregation disagreement measure; we provide it for
// cross-checking results and for the ablation benches).
#pragma once

#include <cstddef>

#include "metrics/ranking.hpp"

namespace crowdrank {

/// Spearman footrule: sum over objects of |pos_a(v) - pos_b(v)|.
std::size_t spearman_footrule(const Ranking& a, const Ranking& b);

/// Footrule normalized by its maximum (floor(n^2 / 2)), in [0, 1].
double normalized_spearman_footrule(const Ranking& a, const Ranking& b);

/// Spearman's rho correlation in [-1, 1]:
/// 1 - 6 * sum d_v^2 / (n (n^2 - 1)), d_v = position difference of object v.
double spearman_rho(const Ranking& a, const Ranking& b);

}  // namespace crowdrank
