#include "metrics/topk.hpp"

#include <cstdlib>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {

double top_k_precision(const Ranking& truth, const Ranking& estimate,
                       std::size_t k) {
  CR_EXPECTS(truth.size() == estimate.size(),
             "rankings must cover the same number of objects");
  CR_EXPECTS(k >= 1 && k <= truth.size(), "k must be in [1, n]");
  std::size_t hits = 0;
  for (std::size_t p = 0; p < k; ++p) {
    if (estimate.position_of(truth.object_at(p)) < k) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double top_k_pair_accuracy(const Ranking& truth, const Ranking& estimate,
                           std::size_t k) {
  CR_EXPECTS(truth.size() == estimate.size(),
             "rankings must cover the same number of objects");
  CR_EXPECTS(k >= 2 && k <= truth.size(), "k must be in [2, n]");
  std::size_t concordant = 0;
  std::size_t total = 0;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) {
      const VertexId u = truth.object_at(a);  // truth says u before v
      const VertexId v = truth.object_at(b);
      ++total;
      if (estimate.position_of(u) < estimate.position_of(v)) {
        ++concordant;
      }
    }
  }
  return static_cast<double>(concordant) / static_cast<double>(total);
}

double top_k_displacement(const Ranking& truth, const Ranking& estimate,
                          std::size_t k) {
  CR_EXPECTS(truth.size() == estimate.size(),
             "rankings must cover the same number of objects");
  CR_EXPECTS(k >= 1 && k <= truth.size(), "k must be in [1, n]");
  CR_EXPECTS(truth.size() >= 2, "need at least two objects");
  double total = 0.0;
  for (std::size_t p = 0; p < k; ++p) {
    const VertexId v = truth.object_at(p);
    const auto pe = static_cast<double>(estimate.position_of(v));
    const auto pt = static_cast<double>(p);
    total += std::abs(pe - pt);
  }
  const double max_disp = static_cast<double>(truth.size() - 1);
  return total / (static_cast<double>(k) * max_disp);
}

}  // namespace crowdrank
