#include "metrics/ranking.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace crowdrank {

Ranking::Ranking(std::vector<VertexId> order) : order_(std::move(order)) {
  CR_EXPECTS(!order_.empty(), "a ranking must contain at least one object");
  const std::size_t n = order_.size();
  positions_.assign(n, n);  // sentinel n = unseen
  for (std::size_t p = 0; p < n; ++p) {
    const VertexId v = order_[p];
    CR_EXPECTS(v < n, "ranking contains an out-of-range object id");
    CR_EXPECTS(positions_[v] == n, "ranking contains a duplicate object");
    positions_[v] = p;
  }
}

Ranking Ranking::identity(std::size_t n) {
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  return Ranking(std::move(order));
}

Ranking Ranking::from_scores(std::span<const double> scores) {
  std::vector<VertexId> order(scores.size());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](VertexId a, VertexId b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  return Ranking(std::move(order));
}

VertexId Ranking::object_at(std::size_t position) const {
  CR_EXPECTS(position < order_.size(), "position out of range");
  return order_[position];
}

std::size_t Ranking::position_of(VertexId v) const {
  CR_EXPECTS(v < positions_.size(), "object id out of range");
  return positions_[v];
}

Ranking Ranking::reversed() const {
  std::vector<VertexId> rev(order_.rbegin(), order_.rend());
  return Ranking(std::move(rev));
}

}  // namespace crowdrank
