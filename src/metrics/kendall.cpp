#include "metrics/kendall.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

namespace {

/// Counts inversions in `values` by bottom-up merge sort. O(n log n).
std::size_t count_inversions(std::vector<std::size_t>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> buffer(n);
  std::size_t inversions = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo;
      std::size_t j = mid;
      std::size_t k = lo;
      while (i < mid && j < hi) {
        if (values[i] <= values[j]) {
          buffer[k++] = values[i++];
        } else {
          inversions += mid - i;  // values[i..mid) all exceed values[j]
          buffer[k++] = values[j++];
        }
      }
      while (i < mid) buffer[k++] = values[i++];
      while (j < hi) buffer[k++] = values[j++];
      for (std::size_t p = lo; p < hi; ++p) values[p] = buffer[p];
    }
  }
  return inversions;
}

}  // namespace

std::size_t kendall_tau_distance(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() == b.size(),
             "rankings must cover the same number of objects");
  const std::size_t n = a.size();
  // Walk objects in a's order and record their positions in b; discordant
  // pairs are exactly the inversions of that sequence.
  std::vector<std::size_t> b_positions(n);
  for (std::size_t p = 0; p < n; ++p) {
    b_positions[p] = b.position_of(a.object_at(p));
  }
  return count_inversions(b_positions);
}

double normalized_kendall_tau_distance(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() >= 2, "normalized distance needs n >= 2");
  const auto pairs = math::pair_count(a.size());
  return static_cast<double>(kendall_tau_distance(a, b)) /
         static_cast<double>(pairs);
}

double ranking_accuracy(const Ranking& truth, const Ranking& estimate) {
  return 1.0 - normalized_kendall_tau_distance(truth, estimate);
}

double kendall_tau_coefficient(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() >= 2, "tau coefficient needs n >= 2");
  const auto pairs = static_cast<double>(math::pair_count(a.size()));
  const auto discordant = static_cast<double>(kendall_tau_distance(a, b));
  return (pairs - 2.0 * discordant) / pairs;
}

}  // namespace crowdrank
