#include "metrics/spearman.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace crowdrank {

std::size_t spearman_footrule(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() == b.size(),
             "rankings must cover the same number of objects");
  std::size_t total = 0;
  for (VertexId v = 0; v < a.size(); ++v) {
    const auto pa = a.position_of(v);
    const auto pb = b.position_of(v);
    total += pa > pb ? pa - pb : pb - pa;
  }
  return total;
}

double normalized_spearman_footrule(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() >= 2, "normalized footrule needs n >= 2");
  const std::size_t n = a.size();
  const std::size_t max_footrule = (n * n) / 2;
  return static_cast<double>(spearman_footrule(a, b)) /
         static_cast<double>(max_footrule);
}

double spearman_rho(const Ranking& a, const Ranking& b) {
  CR_EXPECTS(a.size() == b.size(),
             "rankings must cover the same number of objects");
  CR_EXPECTS(a.size() >= 2, "spearman rho needs n >= 2");
  const auto n = static_cast<double>(a.size());
  double sum_sq = 0.0;
  for (VertexId v = 0; v < a.size(); ++v) {
    const double d = static_cast<double>(a.position_of(v)) -
                     static_cast<double>(b.position_of(v));
    sum_sq += d * d;
  }
  return 1.0 - 6.0 * sum_sq / (n * (n * n - 1.0));
}

}  // namespace crowdrank
