// Ranking value type.
//
// A Ranking is a full ranking (total order, no ties) of n objects — the
// output the paper's requester wants. Internally it is the "order"
// representation: order()[p] is the object at position p (position 0 is the
// most preferred, matching an out-node / the head of the Hamiltonian path).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace crowdrank {

/// Immutable full ranking of n objects.
class Ranking {
 public:
  /// Builds from an order vector (object at each position). Throws unless
  /// `order` is a permutation of 0..n-1 with n >= 1.
  explicit Ranking(std::vector<VertexId> order);

  /// The identity ranking 0, 1, ..., n-1.
  static Ranking identity(std::size_t n);

  /// Ranks objects by descending score; ties broken by lower object id so
  /// the result is deterministic. (Score-based baselines use this.)
  static Ranking from_scores(std::span<const double> scores);

  std::size_t size() const { return order_.size(); }

  /// Object at position p (0 = most preferred).
  VertexId object_at(std::size_t position) const;

  /// Position of object v (0 = most preferred).
  std::size_t position_of(VertexId v) const;

  /// order()[p] = object at position p.
  std::span<const VertexId> order() const { return order_; }

  /// positions()[v] = position of object v (the inverse permutation).
  std::span<const std::size_t> positions() const { return positions_; }

  /// The reverse ranking.
  Ranking reversed() const;

  bool operator==(const Ranking& other) const = default;

 private:
  std::vector<VertexId> order_;
  std::vector<std::size_t> positions_;
};

}  // namespace crowdrank
