// Runtime invariant checker for the inference pipeline.
//
// The paper's correctness argument rests on structural properties the code
// computes but never re-verifies at runtime: fair (near-regular, connected)
// task graphs (§IV, Thm 4.1), truth and quality estimates in [0, 1] (§V-A),
// smoothing that softens exactly the 1-edges while keeping the unanimous
// direction preferred (§V-B), a pair-normalized complete closure
// (§V-C / Thm 5.1), and final rankings that are true permutations. This
// module turns each of those stage postconditions into a validator that
// throws `InvariantError` — naming the stage and the first offending
// element — when the property fails.
//
// Activation
//  * `InferenceConfig::check_invariants` / CLI `--check-invariants` turn
//    the stage-boundary checks on for one engine.
//  * The `CROWDRANK_CHECK_INVARIANTS` environment variable (1/true/on,
//    0/false/off) turns them on or off process-wide; the asan/ubsan test
//    presets set it so every sanitizer run also validates stage output.
//  * Default: ON in debug-check builds (CROWDRANK_DEBUG_CHECKS, i.e.
//    !NDEBUG), OFF — zero work beyond one boolean test per stage — in
//    Release. The validators themselves are always compiled and callable.
//
// Every validator bumps the active trace sink's "invariants.checks"
// counter on entry and "invariants.violations" before throwing, so run
// reports show whether a run was validated and what tripped.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/smoothing.hpp"
#include "core/truth_discovery.hpp"
#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "metrics/ranking.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/sparse_matrix.hpp"

namespace crowdrank::analysis {

/// Thrown by the validators below; `stage()` names the pipeline boundary
/// that failed (e.g. "step3_propagation").
class InvariantError : public Error {
 public:
  InvariantError(std::string stage, const std::string& detail);

  const std::string& stage() const noexcept { return stage_; }

 private:
  std::string stage_;
};

/// Whether stage-boundary checks are currently on: a set_invariant_checks()
/// override wins, then CROWDRANK_CHECK_INVARIANTS (parsed once per
/// process), then the build default (on iff CROWDRANK_DEBUG_CHECKS).
bool invariant_checks_enabled() noexcept;

/// Programmatic override; std::nullopt returns to the env/build default.
void set_invariant_checks(std::optional<bool> enabled) noexcept;

// ---------------------------------------------------------------------
// Stage validators. Each throws InvariantError on the first violation and
// returns normally otherwise. All are O(n^2) or cheaper — strictly lighter
// than the stages they guard.
// ---------------------------------------------------------------------

/// Task assignment (§IV): exactly `expected_edges` edges, connected, and
/// fair — degrees within 1 of each other, exactly 2l/n everywhere when n
/// divides 2l (Thm 4.1's regularity).
void check_task_graph(const TaskGraph& graph, std::size_t expected_edges);

/// Step 1 (§V-A): every task canonical (i < j < n), no duplicate tasks,
/// every x_ij and every worker quality/weight in [0, 1], vectors sized to
/// `worker_count`, each discovered task backed by at least one vote.
void check_truth_discovery(const TruthDiscoveryResult& step1,
                           std::size_t object_count,
                           std::size_t worker_count);

/// Preference-graph representation: weights in [0, 1] with a zero
/// diagonal, and the lazily-built CSR view row-consistent with the dense
/// matrix (monotone row_ptr, strictly ascending neighbors, matching
/// weights and per-row degree).
void check_preference_graph(const PreferenceGraph& graph);

/// The CSR-vs-dense cross-check of check_preference_graph on its own, for
/// any (weights, csr) pair claiming to describe the same digraph. Exposed
/// separately so tests can corrupt a detached CsrAdjacency.
void check_csr_consistency(const Matrix& weights, const CsrAdjacency& csr);

/// SparseMatrix structural invariants (the sparse-first propagation state,
/// checked at the densify boundary): row_ptr spans [0, nnz] monotonically
/// with rows + 1 slots, per-row column indices strictly ascending and in
/// range, every stored value finite and nonzero.
void check_sparse_matrix(const SparseMatrix& matrix);

/// Cross-representation check: `dense` holds exactly the sparse matrix's
/// stored entries (bit-equal values) and 0.0 everywhere else.
void check_sparse_dense_consistency(const SparseMatrix& sparse,
                                    const Matrix& dense);

/// Step 2 (§V-B): smoothing touched exactly the 1-edges. For every
/// 1-edge of `direct` the smoothed pair carries total mass 1 with the
/// reverse mass inside [min_mass, max_mass] (so the unanimous direction
/// stays preferred); every other weight is bit-identical to `direct`.
void check_smoothing(const PreferenceGraph& direct,
                     const PreferenceGraph& smoothed,
                     const SmoothingConfig& config);

/// Step 3 (§V-C): the closure is a complete pair-stochastic digraph —
/// square, zero diagonal, every off-diagonal weight in (0, 1), and
/// w_ij + w_ji = 1 for every pair (Thm 5.1's precondition).
void check_closure(const Matrix& closure);

/// A row-stochastic matrix check (each row sums to 1 within `tolerance`),
/// for propagation-internal transition matrices.
void check_stochastic_rows(const Matrix& matrix, double tolerance = 1e-9);

/// Step 4: the ranking is a total order — a permutation of 0..n-1 whose
/// positions() array is its exact inverse.
void check_ranking(const Ranking& ranking, std::size_t object_count);

}  // namespace crowdrank::analysis
