#include "analysis/invariants.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/trace.hpp"

namespace crowdrank::analysis {

namespace {

/// Pair-sum and row-sum tolerance: the stages build these sums from exact
/// complements (smoothing) or explicit normalization (propagation), so the
/// slack only needs to absorb one division's rounding.
constexpr double kSumTolerance = 1e-9;

/// set_invariant_checks() override: 0 = unset, 1 = forced off, 2 = forced
/// on. A single relaxed atomic keeps enabled() callable from pool workers.
std::atomic<int> g_override{0};

bool env_default() {
  const char* env = std::getenv("CROWDRANK_CHECK_INVARIANTS");
  if (env == nullptr || *env == '\0') {
    return CROWDRANK_DEBUG_CHECKS != 0;
  }
  const std::string v(env);
  return !(v == "0" || v == "false" || v == "off" || v == "no" ||
           v == "FALSE" || v == "OFF" || v == "NO");
}

void note_check(const char* /*stage*/) {
  if (metrics::Counter* c = trace::counter("invariants.checks")) {
    c->add(1);
  }
}

[[noreturn]] void fail(const char* stage, const std::string& detail) {
  if (metrics::Counter* c = trace::counter("invariants.violations")) {
    c->add(1);
  }
  throw InvariantError(stage, detail);
}

std::string pair_str(std::size_t i, std::size_t j) {
  std::ostringstream os;
  os << "(" << i << ", " << j << ")";
  return os.str();
}

}  // namespace

InvariantError::InvariantError(std::string stage, const std::string& detail)
    : Error("invariant violated at " + stage + ": " + detail),
      stage_(std::move(stage)) {}

bool invariant_checks_enabled() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced != 0) {
    return forced == 2;
  }
  // The env lookup result never changes mid-process; cache it.
  static const bool enabled = env_default();
  return enabled;
}

void set_invariant_checks(std::optional<bool> enabled) noexcept {
  g_override.store(enabled.has_value() ? (*enabled ? 2 : 1) : 0,
                   std::memory_order_relaxed);
}

void check_task_graph(const TaskGraph& graph, std::size_t expected_edges) {
  constexpr const char* kStage = "task_assignment";
  note_check(kStage);
  const std::size_t n = graph.vertex_count();
  if (graph.edge_count() != expected_edges) {
    std::ostringstream os;
    os << "expected " << expected_edges << " comparison tasks, graph has "
       << graph.edge_count();
    fail(kStage, os.str());
  }
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree_sum += graph.degree(v);
  }
  if (degree_sum != 2 * expected_edges) {
    std::ostringstream os;
    os << "degree sum " << degree_sum << " != 2l = " << 2 * expected_edges;
    fail(kStage, os.str());
  }
  const std::size_t d_min = graph.min_degree();
  const std::size_t d_max = graph.max_degree();
  if (d_max - d_min > 1) {
    std::ostringstream os;
    os << "unfair degrees: min " << d_min << ", max " << d_max
       << " (fairness requires a spread of at most 1)";
    fail(kStage, os.str());
  }
  if (n != 0 && (2 * expected_edges) % n == 0 && !graph.is_regular()) {
    std::ostringstream os;
    os << "2l/n = " << (2 * expected_edges) / n
       << " is integral but the graph is not " << (2 * expected_edges) / n
       << "-regular (Thm 4.1)";
    fail(kStage, os.str());
  }
  if (!graph.is_connected()) {
    fail(kStage,
         "task graph is disconnected; smoothing cannot produce a strongly "
         "connected preference graph from it");
  }
}

void check_truth_discovery(const TruthDiscoveryResult& step1,
                           std::size_t object_count,
                           std::size_t worker_count) {
  constexpr const char* kStage = "step1_truth_discovery";
  note_check(kStage);
  if (step1.worker_quality.size() != worker_count ||
      step1.worker_weight.size() != worker_count) {
    std::ostringstream os;
    os << "quality/weight vectors sized " << step1.worker_quality.size()
       << "/" << step1.worker_weight.size() << ", expected " << worker_count;
    fail(kStage, os.str());
  }
  std::set<Edge> seen;
  for (const TaskTruth& t : step1.truths) {
    if (t.task.first >= t.task.second || t.task.second >= object_count) {
      fail(kStage, "task " + pair_str(t.task.first, t.task.second) +
                       " is not a canonical pair of valid objects");
    }
    if (!seen.insert(t.task).second) {
      fail(kStage,
           "task " + pair_str(t.task.first, t.task.second) + " is duplicated");
    }
    if (!(t.x >= 0.0 && t.x <= 1.0)) {  // negated to also catch NaN
      std::ostringstream os;
      os << "estimated truth x = " << t.x << " of task "
         << pair_str(t.task.first, t.task.second) << " is outside [0, 1]";
      fail(kStage, os.str());
    }
    if (t.vote_count == 0) {
      fail(kStage, "task " + pair_str(t.task.first, t.task.second) +
                       " was discovered from zero votes");
    }
  }
  for (std::size_t k = 0; k < worker_count; ++k) {
    const double q = step1.worker_quality[k];
    const double w = step1.worker_weight[k];
    if (!(q >= 0.0 && q <= 1.0) || !(w >= 0.0 && w <= 1.0)) {
      std::ostringstream os;
      os << "worker " << k << " has quality " << q << ", weight " << w
         << " (both must lie in [0, 1])";
      fail(kStage, os.str());
    }
  }
}

void check_preference_graph(const PreferenceGraph& graph) {
  constexpr const char* kStage = "preference_graph";
  note_check(kStage);
  const std::size_t n = graph.vertex_count();
  const Matrix& w = graph.weights();
  if (w.rows() != n || w.cols() != n) {
    fail(kStage, "dense weight matrix shape does not match vertex count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (w(i, i) != 0.0) {
      std::ostringstream os;
      os << "self-preference " << w(i, i) << " at vertex " << i;
      fail(kStage, os.str());
    }
    for (std::size_t j = 0; j < n; ++j) {
      const double v = w(i, j);
      if (!(v >= 0.0 && v <= 1.0)) {
        std::ostringstream os;
        os << "weight " << v << " at " << pair_str(i, j)
           << " is outside [0, 1]";
        fail(kStage, os.str());
      }
    }
  }
  // CSR cross-consistency with the dense view it mirrors.
  check_csr_consistency(w, graph.out_csr());
}

void check_csr_consistency(const Matrix& weights, const CsrAdjacency& csr) {
  constexpr const char* kStage = "preference_graph_csr";
  note_check(kStage);
  const std::size_t n = weights.rows();
  if (csr.row_ptr.size() != n + 1 || csr.row_ptr.front() != 0 ||
      csr.row_ptr.back() != csr.neighbors.size() ||
      csr.neighbors.size() != csr.weights.size()) {
    fail(kStage, "CSR shape disagrees with the dense matrix");
  }
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t begin = csr.row_ptr[v];
    const std::size_t end = csr.row_ptr[v + 1];
    if (end < begin) {
      std::ostringstream os;
      os << "row_ptr not monotone at vertex " << v;
      fail(kStage, os.str());
    }
    std::size_t dense_out = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (weights(v, j) > 0.0) ++dense_out;
    }
    if (end - begin != dense_out) {
      std::ostringstream os;
      os << "CSR row " << v << " lists " << end - begin
         << " out-edges, dense matrix has " << dense_out;
      fail(kStage, os.str());
    }
    for (std::size_t e = begin; e < end; ++e) {
      const VertexId to = csr.neighbors[e];
      if (to >= n || (e > begin && csr.neighbors[e - 1] >= to)) {
        std::ostringstream os;
        os << "CSR row " << v << " neighbors not strictly ascending valid "
           << "ids at entry " << e - begin;
        fail(kStage, os.str());
      }
      if (csr.weights[e] != weights(v, to)) {
        std::ostringstream os;
        os << "CSR weight " << csr.weights[e] << " of edge "
           << pair_str(v, to) << " disagrees with dense weight "
           << weights(v, to);
        fail(kStage, os.str());
      }
    }
  }
}

void check_sparse_matrix(const SparseMatrix& matrix) {
  constexpr const char* kStage = "sparse_matrix";
  note_check(kStage);
  const std::span<const std::size_t> row_ptr = matrix.row_ptr();
  const std::span<const std::uint32_t> cols = matrix.col_indices();
  const std::span<const double> values = matrix.values();
  if (row_ptr.size() != matrix.rows() + 1 || row_ptr.front() != 0 ||
      row_ptr.back() != values.size() || cols.size() != values.size()) {
    fail(kStage, "CSR arrays disagree with the declared shape");
  }
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::size_t begin = row_ptr[i];
    const std::size_t end = row_ptr[i + 1];
    if (end < begin) {
      std::ostringstream os;
      os << "row_ptr not monotone at row " << i;
      fail(kStage, os.str());
    }
    for (std::size_t e = begin; e < end; ++e) {
      if (cols[e] >= matrix.cols() ||
          (e > begin && cols[e - 1] >= cols[e])) {
        std::ostringstream os;
        os << "row " << i << " columns not strictly ascending valid "
           << "indices at entry " << e - begin;
        fail(kStage, os.str());
      }
      if (!std::isfinite(values[e]) || values[e] == 0.0) {
        std::ostringstream os;
        os << "stored value " << values[e] << " at "
           << pair_str(i, cols[e]) << " is zero or non-finite";
        fail(kStage, os.str());
      }
    }
  }
}

void check_sparse_dense_consistency(const SparseMatrix& sparse,
                                    const Matrix& dense) {
  constexpr const char* kStage = "sparse_dense_consistency";
  note_check(kStage);
  if (dense.rows() != sparse.rows() || dense.cols() != sparse.cols()) {
    fail(kStage, "dense shape disagrees with the sparse matrix");
  }
  const std::span<const std::size_t> row_ptr = sparse.row_ptr();
  const std::span<const std::uint32_t> cols = sparse.col_indices();
  const std::span<const double> values = sparse.values();
  for (std::size_t i = 0; i < sparse.rows(); ++i) {
    std::size_t e = row_ptr[i];
    const std::size_t end = row_ptr[i + 1];
    for (std::size_t j = 0; j < sparse.cols(); ++j) {
      const bool stored = e < end && cols[e] == j;
      const double expected = stored ? values[e] : 0.0;
      if (dense(i, j) != expected) {
        std::ostringstream os;
        os << "dense entry " << dense(i, j) << " at " << pair_str(i, j)
           << (stored ? " disagrees with stored value "
                      : " should be absent, expected ")
           << expected;
        fail(kStage, os.str());
      }
      if (stored) ++e;
    }
    if (e != end) {
      std::ostringstream os;
      os << "row " << i << " has stored entries the dense scan never "
         << "visited";
      fail(kStage, os.str());
    }
  }
}

void check_smoothing(const PreferenceGraph& direct,
                     const PreferenceGraph& smoothed,
                     const SmoothingConfig& config) {
  constexpr const char* kStage = "step2_smoothing";
  note_check(kStage);
  const std::size_t n = direct.vertex_count();
  if (smoothed.vertex_count() != n) {
    fail(kStage, "smoothing changed the vertex count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dij = direct.weight(i, j);
      const double dji = direct.weight(j, i);
      const double sij = smoothed.weight(i, j);
      const double sji = smoothed.weight(j, i);
      const bool one_edge = dij == 1.0 || dji == 1.0;
      if (!one_edge) {
        if (sij != dij || sji != dji) {
          std::ostringstream os;
          os << "non-1-edge pair " << pair_str(i, j) << " changed: ("
             << dij << ", " << dji << ") -> (" << sij << ", " << sji << ")";
          fail(kStage, os.str());
        }
        continue;
      }
      // A unanimous pair: the forward direction must stay preferred, the
      // estimated reverse mass must stay inside the configured clamp, and
      // the pair must now carry total mass exactly 1 (bidirectional, so
      // the smoothed graph can be strongly connected — Thm 5.1).
      const double forward = dij == 1.0 ? sij : sji;
      const double reverse = dij == 1.0 ? sji : sij;
      if (std::abs(forward + reverse - 1.0) > kSumTolerance) {
        std::ostringstream os;
        os << "smoothed 1-edge " << pair_str(i, j) << " mass " << forward
           << " + " << reverse << " != 1";
        fail(kStage, os.str());
      }
      if (!(reverse >= config.min_mass && reverse <= config.max_mass)) {
        std::ostringstream os;
        os << "smoothed 1-edge " << pair_str(i, j) << " reverse mass "
           << reverse << " is outside [" << config.min_mass << ", "
           << config.max_mass << "]";
        fail(kStage, os.str());
      }
      if (forward <= reverse) {
        std::ostringstream os;
        os << "smoothing no longer prefers the unanimous direction of "
           << pair_str(i, j) << " (" << forward << " <= " << reverse << ")";
        fail(kStage, os.str());
      }
    }
  }
}

void check_closure(const Matrix& closure) {
  constexpr const char* kStage = "step3_propagation";
  note_check(kStage);
  if (!closure.is_square()) {
    fail(kStage, "closure matrix is not square");
  }
  const std::size_t n = closure.rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (closure(i, i) != 0.0) {
      std::ostringstream os;
      os << "closure diagonal entry " << closure(i, i) << " at vertex " << i;
      fail(kStage, os.str());
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const double wij = closure(i, j);
      const double wji = closure(j, i);
      if (!(wij > 0.0 && wij < 1.0) || !(wji > 0.0 && wji < 1.0)) {
        std::ostringstream os;
        os << "closure pair " << pair_str(i, j) << " = (" << wij << ", "
           << wji << ") is not complete in (0, 1) — Thm 5.1's "
           << "always-a-Hamiltonian-path guarantee fails";
        fail(kStage, os.str());
      }
      if (std::abs(wij + wji - 1.0) > kSumTolerance) {
        std::ostringstream os;
        os << "closure pair " << pair_str(i, j) << " sums to " << wij + wji
           << " instead of 1 (pair normalization broken)";
        fail(kStage, os.str());
      }
    }
  }
}

void check_stochastic_rows(const Matrix& matrix, double tolerance) {
  constexpr const char* kStage = "propagation_matrix";
  note_check(kStage);
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < matrix.cols(); ++j) {
      const double v = matrix(i, j);
      if (!(v >= 0.0)) {
        std::ostringstream os;
        os << "negative (or NaN) entry " << v << " at " << pair_str(i, j);
        fail(kStage, os.str());
      }
      sum += v;
    }
    if (std::abs(sum - 1.0) > tolerance) {
      std::ostringstream os;
      os << "row " << i << " sums to " << sum << ", not 1 (+/- " << tolerance
         << ")";
      fail(kStage, os.str());
    }
  }
}

void check_ranking(const Ranking& ranking, std::size_t object_count) {
  constexpr const char* kStage = "step4_find_best_ranking";
  note_check(kStage);
  if (ranking.size() != object_count) {
    std::ostringstream os;
    os << "ranking covers " << ranking.size() << " objects, expected "
       << object_count;
    fail(kStage, os.str());
  }
  std::vector<bool> placed(object_count, false);
  for (std::size_t p = 0; p < object_count; ++p) {
    const VertexId v = ranking.order()[p];
    if (v >= object_count) {
      std::ostringstream os;
      os << "position " << p << " holds invalid object id " << v;
      fail(kStage, os.str());
    }
    if (placed[v]) {
      std::ostringstream os;
      os << "object " << v << " appears more than once (not a total order)";
      fail(kStage, os.str());
    }
    placed[v] = true;
    if (ranking.positions()[v] != p) {
      std::ostringstream os;
      os << "positions() is not the inverse of order() at object " << v;
      fail(kStage, os.str());
    }
  }
}

}  // namespace crowdrank::analysis
