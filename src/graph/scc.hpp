// Strongly-connected-component decomposition of preference graphs.
//
// The SCC condensation of a preference graph is its "rankability
// skeleton": objects inside one component are tied up in conflicting
// evidence (cycles), while the condensation DAG is the partial order the
// votes do determine. The diagnostics report (core/diagnostics.hpp) uses
// this to explain *why* a batch will or won't aggregate cleanly, and
// Thm 5.1's machinery can be cross-checked: after smoothing the whole
// graph must be one single SCC.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/preference_graph.hpp"
#include "graph/types.hpp"

namespace crowdrank {

/// Result of an SCC decomposition.
struct SccDecomposition {
  /// component_of[v] = id of v's component, in reverse topological order
  /// of the condensation (component 0 has no incoming condensation edges
  /// ... actually: ids are assigned so that every condensation edge goes
  /// from a higher id to a lower id — Tarjan's natural order).
  std::vector<std::size_t> component_of;
  /// members[c] = vertices of component c.
  std::vector<std::vector<VertexId>> members;

  std::size_t count() const { return members.size(); }

  /// Size of the largest component.
  std::size_t largest() const;

  /// True when the whole graph is one component (Thm 5.1 precondition).
  bool single_component() const { return count() == 1; }
};

/// Tarjan's algorithm, iterative (no recursion — safe for n in the
/// thousands). O(V + E) on the dense adjacency.
SccDecomposition strongly_connected_components(const PreferenceGraph& g);

/// Condensation edges: distinct pairs (from_component, to_component) with
/// at least one crossing edge. Deduplicated, unordered.
std::vector<std::pair<std::size_t, std::size_t>> condensation_edges(
    const PreferenceGraph& g, const SccDecomposition& scc);

}  // namespace crowdrank
