#include "graph/preference_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace crowdrank {

PreferenceGraph::PreferenceGraph(std::size_t n)
    : n_(n), weights_(n, n, 0.0) {
  CR_EXPECTS(n >= 2, "a preference graph needs at least two objects");
}

void PreferenceGraph::check_vertex(VertexId v) const {
  CR_EXPECTS(v < n_, "vertex id out of range");
}

std::size_t PreferenceGraph::edge_count() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (weights_(i, j) > 0.0) ++count;
    }
  }
  return count;
}

void PreferenceGraph::set_weight(VertexId from, VertexId to, double weight) {
  check_vertex(from);
  check_vertex(to);
  CR_EXPECTS(from != to, "self-preference is not allowed");
  CR_EXPECTS(weight >= 0.0 && weight <= 1.0,
             "preference weight must lie in [0, 1]");
  weights_(from, to) = weight;
  if (csr_built_) {
    // Only row `from` of the CSR mirror went stale; remember exactly that
    // so the next out_csr() re-scans one row, not the whole matrix.
    if (dirty_rows_.empty()) {
      dirty_rows_.assign(n_, 0);
    }
    if (dirty_rows_[from] == 0) {
      dirty_rows_[from] = 1;
      ++dirty_count_;
    }
  }
}

const CsrAdjacency& PreferenceGraph::out_csr() const {
  if (csr_built_ && dirty_count_ == 0) {
    return csr_;
  }
  if (!csr_built_) {
    // First build: one row-major scan. The scan emits each row's neighbors
    // in ascending id order, which the single-pass build preserves.
    csr_.row_ptr.assign(n_ + 1, 0);
    csr_.neighbors.clear();
    csr_.weights.clear();
    for (std::size_t i = 0; i < n_; ++i) {
      csr_.row_ptr[i] = csr_.neighbors.size();
      for (std::size_t j = 0; j < n_; ++j) {
        const double w = weights_(i, j);
        if (w > 0.0) {
          csr_.neighbors.push_back(static_cast<VertexId>(j));
          csr_.weights.push_back(w);
        }
      }
    }
    csr_.row_ptr[n_] = csr_.neighbors.size();
    csr_built_ = true;
    return csr_;
  }
  // Amortized refresh: splice the clean rows' segments out of the stale
  // view verbatim and re-scan the dense matrix only for the d dirty rows —
  // O(n + m + d * n) against the full rebuild's O(n^2).
  CsrAdjacency fresh;
  fresh.row_ptr.assign(n_ + 1, 0);
  fresh.neighbors.reserve(csr_.neighbors.size());
  fresh.weights.reserve(csr_.weights.size());
  for (std::size_t i = 0; i < n_; ++i) {
    fresh.row_ptr[i] = fresh.neighbors.size();
    if (dirty_rows_[i] != 0) {
      for (std::size_t j = 0; j < n_; ++j) {
        const double w = weights_(i, j);
        if (w > 0.0) {
          fresh.neighbors.push_back(static_cast<VertexId>(j));
          fresh.weights.push_back(w);
        }
      }
    } else {
      const std::size_t begin = csr_.row_ptr[i];
      const std::size_t end = csr_.row_ptr[i + 1];
      fresh.neighbors.insert(fresh.neighbors.end(),
                             csr_.neighbors.begin() + begin,
                             csr_.neighbors.begin() + end);
      fresh.weights.insert(fresh.weights.end(),
                           csr_.weights.begin() + begin,
                           csr_.weights.begin() + end);
    }
  }
  fresh.row_ptr[n_] = fresh.neighbors.size();
  csr_ = std::move(fresh);
  std::fill(dirty_rows_.begin(), dirty_rows_.end(), 0);
  dirty_count_ = 0;
  return csr_;
}

std::size_t PreferenceGraph::in_degree(VertexId v) const {
  check_vertex(v);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    if (weights_(i, v) > 0.0) ++count;
  }
  return count;
}

std::size_t PreferenceGraph::out_degree(VertexId v) const {
  check_vertex(v);
  std::size_t count = 0;
  for (std::size_t j = 0; j < n_; ++j) {
    if (weights_(v, j) > 0.0) ++count;
  }
  return count;
}

bool PreferenceGraph::is_in_node(VertexId v) const {
  return in_degree(v) > 0 && out_degree(v) == 0;
}

bool PreferenceGraph::is_out_node(VertexId v) const {
  return out_degree(v) > 0 && in_degree(v) == 0;
}

std::vector<VertexId> PreferenceGraph::in_nodes() const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < n_; ++v) {
    if (is_in_node(v)) result.push_back(v);
  }
  return result;
}

std::vector<VertexId> PreferenceGraph::out_nodes() const {
  std::vector<VertexId> result;
  for (VertexId v = 0; v < n_; ++v) {
    if (is_out_node(v)) result.push_back(v);
  }
  return result;
}

std::vector<std::pair<VertexId, VertexId>> PreferenceGraph::one_edges()
    const {
  std::vector<std::pair<VertexId, VertexId>> result;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (weights_(i, j) == 1.0) {
        result.emplace_back(i, j);
      }
    }
  }
  return result;
}

bool PreferenceGraph::is_complete() const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j && weights_(i, j) <= 0.0) return false;
    }
  }
  return true;
}

bool PreferenceGraph::is_strongly_connected() const {
  // Kosaraju without recursion: forward DFS reachability from vertex 0,
  // then backward DFS reachability; strongly connected iff both cover V.
  const auto reaches_all = [&](bool forward) {
    std::vector<bool> seen(n_, false);
    std::vector<VertexId> stack{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u = 0; u < n_; ++u) {
        const double w = forward ? weights_(v, u) : weights_(u, v);
        if (w > 0.0 && !seen[u]) {
          seen[u] = true;
          ++visited;
          stack.push_back(u);
        }
      }
    }
    return visited == n_;
  };
  return reaches_all(true) && reaches_all(false);
}

PreferenceGraph PreferenceGraph::from_matrix(const Matrix& weights) {
  CR_EXPECTS(weights.is_square(), "weight matrix must be square");
  PreferenceGraph g(weights.rows());
  for (std::size_t i = 0; i < weights.rows(); ++i) {
    for (std::size_t j = 0; j < weights.cols(); ++j) {
      if (i == j) {
        CR_EXPECTS(weights(i, j) == 0.0,
                   "weight matrix diagonal must be zero");
        continue;
      }
      g.set_weight(i, j, weights(i, j));
    }
  }
  return g;
}

}  // namespace crowdrank
