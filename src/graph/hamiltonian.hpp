// Hamiltonian-path utilities (paper §III, §V-D).
//
// A full ranking of n objects is exactly a Hamiltonian path of the
// (transitively closed) preference graph; its preference probability is the
// product of the edge weights along the path, maximized in log-space to
// avoid underflow at large n.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/preference_graph.hpp"
#include "graph/task_graph.hpp"
#include "graph/types.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// True if `path` visits every vertex of an n-vertex graph exactly once.
bool is_permutation_path(const Path& path, std::size_t n);

/// Preference probability Pr[P] = prod of w(path[i] -> path[i+1]).
/// Zero if any edge is missing.
double path_probability(const Matrix& weights, const Path& path);

/// Sum of log(1/w) along the path (the SAPS objective; lower is better).
/// Missing edges contribute the -safe_log floor, i.e. a huge penalty.
double path_log_cost(const Matrix& weights, const Path& path);

/// Exact Hamiltonian-path existence in a *directed* weighted graph via
/// bitmask DP. O(2^n * n^2); requires n <= 24.
bool has_hamiltonian_path(const PreferenceGraph& g);

/// Exact Hamiltonian-path existence in an undirected task graph via bitmask
/// DP. O(2^n * n^2); requires n <= 24. (Thm 4.2: a task graph without an HP
/// can never yield a preference closure with one.)
bool has_hamiltonian_path(const TaskGraph& g);

/// Enumerates every Hamiltonian path of the directed graph (edges = weight
/// > 0). Exponential; requires n <= 10. Used as a brute-force oracle in
/// tests for TAPS/SAPS.
std::vector<Path> enumerate_hamiltonian_paths(const PreferenceGraph& g);

/// Maximum-probability Hamiltonian path by Held-Karp bitmask DP over
/// log-weights. Exact; O(2^n * n^2) time, O(2^n * n) space; requires
/// n <= 20. Returns nullopt when the graph has no HP at all.
std::optional<Path> max_probability_hamiltonian_path(const Matrix& weights);

}  // namespace crowdrank
