#include "graph/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace crowdrank {

TaskGraph::TaskGraph(std::size_t n) : adjacency_(n) {
  CR_EXPECTS(n >= 2, "a task graph needs at least two objects");
}

void TaskGraph::check_vertex(VertexId v) const {
  CR_EXPECTS(v < adjacency_.size(), "vertex id out of range");
}

bool TaskGraph::add_edge(VertexId a, VertexId b) {
  check_vertex(a);
  check_vertex(b);
  CR_EXPECTS(a != b, "self-comparisons are not valid tasks");
  const Edge e = Edge::canonical(a, b);
  if (!edge_set_.insert(e).second) {
    return false;
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  edges_.push_back(e);
  return true;
}

bool TaskGraph::has_edge(VertexId a, VertexId b) const {
  check_vertex(a);
  check_vertex(b);
  if (a == b) return false;
  return edge_set_.contains(Edge::canonical(a, b));
}

std::size_t TaskGraph::degree(VertexId v) const {
  check_vertex(v);
  return adjacency_[v].size();
}

std::span<const VertexId> TaskGraph::neighbors(VertexId v) const {
  check_vertex(v);
  return adjacency_[v];
}

std::size_t TaskGraph::min_degree() const {
  std::size_t best = adjacency_[0].size();
  for (const auto& nbrs : adjacency_) {
    best = std::min(best, nbrs.size());
  }
  return best;
}

std::size_t TaskGraph::max_degree() const {
  std::size_t best = adjacency_[0].size();
  for (const auto& nbrs : adjacency_) {
    best = std::max(best, nbrs.size());
  }
  return best;
}

bool TaskGraph::is_regular() const { return min_degree() == max_degree(); }

bool TaskGraph::is_connected() const {
  const std::size_t n = vertex_count();
  std::vector<bool> seen(n, false);
  std::queue<VertexId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const VertexId u : adjacency_[v]) {
      if (!seen[u]) {
        seen[u] = true;
        ++visited;
        frontier.push(u);
      }
    }
  }
  return visited == n;
}

bool TaskGraph::is_hamiltonian_path(const Path& path) const {
  const std::size_t n = vertex_count();
  if (path.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const VertexId v : path) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!has_edge(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace crowdrank
