#include "graph/scc.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace crowdrank {

std::size_t SccDecomposition::largest() const {
  std::size_t best = 0;
  for (const auto& m : members) {
    best = std::max(best, m.size());
  }
  return best;
}

SccDecomposition strongly_connected_components(const PreferenceGraph& g) {
  const std::size_t n = g.vertex_count();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;
  std::size_t next_index = 0;

  SccDecomposition result;
  result.component_of.assign(n, kUnvisited);

  // Iterative Tarjan: frame = (vertex, next neighbor to try).
  struct Frame {
    VertexId v;
    VertexId next;
  };
  std::vector<Frame> frames;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      const VertexId v = frame.v;
      bool descended = false;
      while (frame.next < n) {
        const VertexId u = frame.next++;
        if (u == v || g.weight(v, u) <= 0.0) continue;
        if (index[u] == kUnvisited) {
          index[u] = lowlink[u] = next_index++;
          stack.push_back(u);
          on_stack[u] = true;
          frames.push_back(Frame{u, 0});
          descended = true;
          break;
        }
        if (on_stack[u]) {
          lowlink[v] = std::min(lowlink[v], index[u]);
        }
      }
      if (descended) continue;

      // v is finished: pop a component if v is a root.
      if (lowlink[v] == index[v]) {
        std::vector<VertexId> component;
        while (true) {
          const VertexId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component.push_back(w);
          result.component_of[w] = result.members.size();
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        result.members.push_back(std::move(component));
      }
      frames.pop_back();
      if (!frames.empty()) {
        const VertexId parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  CR_ENSURES(std::all_of(result.component_of.begin(),
                         result.component_of.end(),
                         [](std::size_t c) { return c != kUnvisited; }),
             "SCC decomposition left a vertex unassigned");
  return result;
}

std::vector<std::pair<std::size_t, std::size_t>> condensation_edges(
    const PreferenceGraph& g, const SccDecomposition& scc) {
  CR_EXPECTS(scc.component_of.size() == g.vertex_count(),
             "decomposition does not match the graph");
  std::set<std::pair<std::size_t, std::size_t>> edges;
  const std::size_t n = g.vertex_count();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u = 0; u < n; ++u) {
      if (v == u || g.weight(v, u) <= 0.0) continue;
      const std::size_t cv = scc.component_of[v];
      const std::size_t cu = scc.component_of[u];
      if (cv != cu) {
        edges.emplace(cv, cu);
      }
    }
  }
  return {edges.begin(), edges.end()};
}

}  // namespace crowdrank
