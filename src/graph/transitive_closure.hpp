// Transitive-closure machinery (paper §III and §V-C).
//
// Two flavors live here:
//  * boolean reachability closure (used by diagnostics and tests of
//    Thm 4.2/4.3), and
//  * the exact simple-path weight accumulator, which implements the paper's
//    literal definition of indirect preference — the sum over all simple
//    paths from i to j (2 <= length <= max_len) of the product of edge
//    weights. Exhaustive path enumeration is exponential, so this is only
//    used for small n (tests, the 10/20-object AMT settings); production
//    propagation uses the bounded-walk matrix-power approximation in
//    core/propagation (see DESIGN.md substitution #3).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/preference_graph.hpp"
#include "graph/types.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Boolean reachability closure: result(i, j) == true iff j is reachable
/// from i by a non-empty directed path. Runs one BFS per source over the
/// graph's CSR adjacency — O(n + m) per source instead of the dense scan's
/// O(n^2) — with sources fanned out across the util/parallel pool (each
/// source owns its output row, so the result is thread-count independent).
std::vector<std::vector<bool>> reachability_closure(const PreferenceGraph& g);

/// Reference implementation of `reachability_closure` over the dense weight
/// matrix, single-threaded. Kept as the equivalence oracle for the CSR
/// version (tests) and for graphs mutated concurrently with traversal.
std::vector<std::vector<bool>> reachability_closure_dense(
    const PreferenceGraph& g);

/// Exact indirect preference per the paper's definition: for every ordered
/// pair (i, j), the sum over all *simple* directed paths i -> ... -> j with
/// length in [2, max_len] of the product of edge weights along the path.
/// Exponential in the worst case; intended for n <= ~12.
Matrix exact_indirect_preferences(const PreferenceGraph& g,
                                  std::size_t max_len);

/// Bounded-length walk propagation: sum_{k=2..max_len} W^k, the production
/// approximation of `exact_indirect_preferences` (walks revisit vertices but
/// every revisit multiplies in more sub-1 weights, so the error decays
/// geometrically). O(max_len * n^3).
Matrix walk_indirect_preferences(const Matrix& weights, std::size_t max_len);

}  // namespace crowdrank
