#include "graph/transitive_closure.hpp"

#include <queue>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace crowdrank {

std::vector<std::vector<bool>> reachability_closure(
    const PreferenceGraph& g) {
  const std::size_t n = g.vertex_count();
  // Materialize the CSR view on the calling thread before fanning out:
  // the lazy build is not safe to race, the finished view is.
  const CsrAdjacency& csr = g.out_csr();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  parallel_for(0, n, /*grain=*/8, [&](std::size_t s0, std::size_t s1) {
    // Per-chunk scratch; each source writes only closure[src].
    std::vector<VertexId> stack;
    for (std::size_t src = s0; src < s1; ++src) {
      std::vector<bool>& row = closure[src];
      stack.clear();
      stack.push_back(static_cast<VertexId>(src));
      while (!stack.empty()) {
        const VertexId v = stack.back();
        stack.pop_back();
        for (std::size_t e = csr.row_ptr[v]; e < csr.row_ptr[v + 1]; ++e) {
          const VertexId u = csr.neighbors[e];
          if (!row[u]) {
            row[u] = true;  // u reachable by a non-empty path; src -> src
                            // only becomes true via a directed cycle
            stack.push_back(u);
          }
        }
      }
    }
  });
  return closure;
}

std::vector<std::vector<bool>> reachability_closure_dense(
    const PreferenceGraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (VertexId src = 0; src < n; ++src) {
    std::queue<VertexId> frontier;
    frontier.push(src);
    std::vector<bool> seen(n, false);
    seen[src] = true;  // marks "expanded", not "reachable": closure excludes
                       // the trivial empty path src -> src
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (VertexId u = 0; u < n; ++u) {
        if (g.weight(v, u) > 0.0 && !closure[src][u]) {
          closure[src][u] = true;
          if (!seen[u]) {
            seen[u] = true;
            frontier.push(u);
          }
        }
      }
    }
  }
  return closure;
}

namespace {

/// DFS over simple paths from src accumulating products into out(src, *).
void enumerate_paths(const PreferenceGraph& g, VertexId src, VertexId current,
                     double product, std::size_t depth, std::size_t max_len,
                     std::vector<bool>& on_path, Matrix& out) {
  if (depth >= max_len) return;
  const std::size_t n = g.vertex_count();
  for (VertexId next = 0; next < n; ++next) {
    const double w = g.weight(current, next);
    if (w <= 0.0 || on_path[next]) continue;
    const double extended = product * w;
    if (depth + 1 >= 2) {
      // Paths of length >= 2 contribute to the indirect preference.
      out(src, next) += extended;
    }
    on_path[next] = true;
    enumerate_paths(g, src, next, extended, depth + 1, max_len, on_path, out);
    on_path[next] = false;
  }
}

}  // namespace

Matrix exact_indirect_preferences(const PreferenceGraph& g,
                                  std::size_t max_len) {
  const std::size_t n = g.vertex_count();
  CR_EXPECTS(max_len >= 2, "indirect paths have length >= 2");
  Matrix out(n, n, 0.0);
  std::vector<bool> on_path(n, false);
  for (VertexId src = 0; src < n; ++src) {
    on_path[src] = true;
    enumerate_paths(g, src, src, 1.0, 0, max_len, on_path, out);
    on_path[src] = false;
  }
  return out;
}

Matrix walk_indirect_preferences(const Matrix& weights, std::size_t max_len) {
  CR_EXPECTS(weights.is_square(), "weight matrix must be square");
  CR_EXPECTS(max_len >= 2, "indirect walks have length >= 2");
  return Matrix::power_sum(weights, 2, max_len);
}

}  // namespace crowdrank
