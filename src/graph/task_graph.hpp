// Task graph (paper §III): an unweighted, undirected simple graph whose
// vertices are the objects to rank and whose edges are the pairwise
// comparison tasks sent to the crowd. Fairness (Def. 4.1 / Thm 4.1) and
// HP-likelihood (Thm 4.4) are both functions of this graph's degree
// sequence, so the class exposes degree statistics alongside standard
// adjacency queries.
#pragma once

#include <cstddef>
#include <set>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace crowdrank {

/// Undirected simple graph over n vertices.
class TaskGraph {
 public:
  /// Graph with n isolated vertices; n >= 2.
  explicit TaskGraph(std::size_t n);

  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Adds the undirected edge {a, b}. Returns false (and does nothing) if
  /// the edge already exists. Throws on a == b or out-of-range vertices.
  bool add_edge(VertexId a, VertexId b);

  bool has_edge(VertexId a, VertexId b) const;

  /// Degree of v (number of incident edges).
  std::size_t degree(VertexId v) const;

  /// Neighbors of v in insertion order.
  std::span<const VertexId> neighbors(VertexId v) const;

  /// All edges in canonical (first < second) form, insertion order.
  std::span<const Edge> edges() const { return edges_; }

  std::size_t min_degree() const;
  std::size_t max_degree() const;

  /// True when every vertex has the same degree (fair tasks, Thm 4.1).
  bool is_regular() const;

  /// True when the graph is connected (single BFS component).
  bool is_connected() const;

  /// True if `path` is a Hamiltonian path of this graph: visits every vertex
  /// exactly once via existing edges.
  bool is_hamiltonian_path(const Path& path) const;

 private:
  void check_vertex(VertexId v) const;

  std::vector<std::vector<VertexId>> adjacency_;
  std::set<Edge> edge_set_;
  std::vector<Edge> edges_;
};

}  // namespace crowdrank
