// Shared vocabulary types for the graph layer.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace crowdrank {

/// Vertex identifier: vertices of an n-vertex graph are 0..n-1 and map 1:1
/// onto the objects being ranked (paper §III).
using VertexId = std::size_t;

/// Unordered pair of distinct vertices; canonical form has first < second.
struct Edge {
  VertexId first;
  VertexId second;

  /// Canonicalizes so that first < second (an edge is unordered).
  static Edge canonical(VertexId a, VertexId b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  }

  bool operator==(const Edge&) const = default;
  auto operator<=>(const Edge&) const = default;
};

/// A path through distinct vertices; a Hamiltonian path visits all n.
using Path = std::vector<VertexId>;

}  // namespace crowdrank
