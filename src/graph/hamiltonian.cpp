#include "graph/hamiltonian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

bool is_permutation_path(const Path& path, std::size_t n) {
  if (path.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const VertexId v : path) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

double path_probability(const Matrix& weights, const Path& path) {
  double prob = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const double w = weights(path[i], path[i + 1]);
    if (w <= 0.0) return 0.0;
    prob *= w;
  }
  return prob;
}

double path_log_cost(const Matrix& weights, const Path& path) {
  double cost = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    cost -= math::safe_log(weights(path[i], path[i + 1]));
  }
  return cost;
}

namespace {

/// Bitmask DP over "can a path covering `mask` end at v?". Generic over an
/// edge predicate so the directed and undirected variants share code.
template <typename EdgeFn>
bool hp_exists_dp(std::size_t n, EdgeFn has_dir_edge) {
  CR_EXPECTS(n <= 24, "Hamiltonian existence DP limited to n <= 24");
  const std::size_t full = (std::size_t{1} << n) - 1;
  // reachable[mask] = bitset of possible end vertices for paths over mask.
  std::vector<std::uint32_t> reachable(full + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    reachable[std::size_t{1} << v] =
        static_cast<std::uint32_t>(std::size_t{1} << v);
  }
  for (std::size_t mask = 1; mask <= full; ++mask) {
    const std::uint32_t ends = reachable[mask];
    if (ends == 0) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (!(ends & (std::uint32_t{1} << v))) continue;
      for (std::size_t u = 0; u < n; ++u) {
        if (mask & (std::size_t{1} << u)) continue;
        if (has_dir_edge(v, u)) {
          reachable[mask | (std::size_t{1} << u)] |= std::uint32_t{1} << u;
        }
      }
    }
  }
  return reachable[full] != 0;
}

}  // namespace

bool has_hamiltonian_path(const PreferenceGraph& g) {
  return hp_exists_dp(g.vertex_count(), [&](std::size_t v, std::size_t u) {
    return g.weight(v, u) > 0.0;
  });
}

bool has_hamiltonian_path(const TaskGraph& g) {
  return hp_exists_dp(g.vertex_count(), [&](std::size_t v, std::size_t u) {
    return g.has_edge(v, u);
  });
}

namespace {

void enumerate_rec(const PreferenceGraph& g, Path& prefix,
                   std::vector<bool>& used, std::vector<Path>& out) {
  const std::size_t n = g.vertex_count();
  if (prefix.size() == n) {
    out.push_back(prefix);
    return;
  }
  for (VertexId next = 0; next < n; ++next) {
    if (used[next]) continue;
    if (!prefix.empty() && g.weight(prefix.back(), next) <= 0.0) continue;
    used[next] = true;
    prefix.push_back(next);
    enumerate_rec(g, prefix, used, out);
    prefix.pop_back();
    used[next] = false;
  }
}

}  // namespace

std::vector<Path> enumerate_hamiltonian_paths(const PreferenceGraph& g) {
  CR_EXPECTS(g.vertex_count() <= 10,
             "exhaustive HP enumeration limited to n <= 10");
  std::vector<Path> out;
  Path prefix;
  std::vector<bool> used(g.vertex_count(), false);
  enumerate_rec(g, prefix, used, out);
  return out;
}

std::optional<Path> max_probability_hamiltonian_path(const Matrix& weights) {
  CR_EXPECTS(weights.is_square(), "weight matrix must be square");
  const std::size_t n = weights.rows();
  CR_EXPECTS(n >= 2 && n <= 20, "Held-Karp limited to 2 <= n <= 20");
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const std::size_t full = (std::size_t{1} << n) - 1;

  // best[mask * n + v]: max sum of log-weights over paths covering mask and
  // ending at v. parent reconstructs the argmax path.
  std::vector<double> best((full + 1) * n, kNegInf);
  std::vector<std::int32_t> parent((full + 1) * n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    best[(std::size_t{1} << v) * n + v] = 0.0;
  }
  for (std::size_t mask = 1; mask <= full; ++mask) {
    for (std::size_t v = 0; v < n; ++v) {
      const double score = best[mask * n + v];
      if (score == kNegInf) continue;
      if (!(mask & (std::size_t{1} << v))) continue;
      for (std::size_t u = 0; u < n; ++u) {
        if (mask & (std::size_t{1} << u)) continue;
        const double w = weights(v, u);
        if (w <= 0.0) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << u);
        const double cand = score + std::log(w);
        if (cand > best[next_mask * n + u]) {
          best[next_mask * n + u] = cand;
          parent[next_mask * n + u] = static_cast<std::int32_t>(v);
        }
      }
    }
  }

  std::size_t best_end = n;
  double best_score = kNegInf;
  for (std::size_t v = 0; v < n; ++v) {
    if (best[full * n + v] > best_score) {
      best_score = best[full * n + v];
      best_end = v;
    }
  }
  if (best_end == n) {
    return std::nullopt;
  }

  Path path;
  path.reserve(n);
  std::size_t mask = full;
  std::size_t v = best_end;
  while (true) {
    path.push_back(v);
    const std::int32_t p = parent[mask * n + v];
    if (p < 0) break;
    mask &= ~(std::size_t{1} << v);
    v = static_cast<std::size_t>(p);
  }
  std::reverse(path.begin(), path.end());
  CR_ENSURES(is_permutation_path(path, n), "Held-Karp produced a non-HP");
  return path;
}

}  // namespace crowdrank
