// Preference graph (paper §III): a weighted, directed graph over the same
// vertices as the task graph. The weight w_ij in (0, 1] of edge v_i -> v_j
// is the truth confidence of "O_i is preferred to O_j"; w_ij == 0 means the
// edge is absent. The graph is stored densely (n x n weight matrix) because
// inference Step 3 turns it into a complete digraph anyway; graph traversals
// (reachability, diagnostics) go through the CSR view instead, because the
// budget constraint makes the pre-closure graph 2l/n-regular with
// l << C(n,2), i.e. very sparse.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Compressed-sparse-row adjacency over the positive-weight edges: the
/// out-neighbors of vertex v are `neighbors[row_ptr[v] .. row_ptr[v + 1])`
/// (ascending vertex id) with parallel `weights`. Traversing it costs
/// O(n + m) instead of the dense matrix scan's O(n^2).
struct CsrAdjacency {
  std::vector<std::size_t> row_ptr;  ///< size n + 1
  std::vector<VertexId> neighbors;   ///< size m, row-sorted
  std::vector<double> weights;       ///< size m, parallel to neighbors

  std::size_t vertex_count() const {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  std::size_t edge_count() const { return neighbors.size(); }
};

/// Weighted digraph with dense weight storage. Invariants enforced:
/// weights lie in [0, 1]; the diagonal is always 0 (no self-preference).
class PreferenceGraph {
 public:
  /// n isolated vertices; n >= 2.
  explicit PreferenceGraph(std::size_t n);

  std::size_t vertex_count() const { return n_; }

  /// Number of directed edges (entries with weight > 0).
  std::size_t edge_count() const;

  /// Sets w(from -> to). Requires weight in [0, 1] and from != to.
  /// weight == 0 removes the edge.
  void set_weight(VertexId from, VertexId to, double weight);

  /// w(from -> to); 0 when the edge is absent. This is the innermost read
  /// of every graph traversal, so its bounds check is debug-only.
  double weight(VertexId from, VertexId to) const {
    CR_DEBUG_EXPECTS(from < n_ && to < n_, "vertex id out of range");
    return weights_(from, to);
  }

  bool has_edge(VertexId from, VertexId to) const {
    return weight(from, to) > 0.0;
  }

  /// Number of incoming / outgoing edges of v.
  std::size_t in_degree(VertexId v) const;
  std::size_t out_degree(VertexId v) const;

  /// An *in-node* has only incoming edges (and at least one); an *out-node*
  /// has only outgoing edges (paper §III). In-nodes must rank last,
  /// out-nodes first; two of either kind rule out any Hamiltonian path
  /// (Thm 4.3).
  bool is_in_node(VertexId v) const;
  bool is_out_node(VertexId v) const;
  std::vector<VertexId> in_nodes() const;
  std::vector<VertexId> out_nodes() const;

  /// Directed edges carrying weight exactly 1 ("1-edges", §V-B): unanimous
  /// votes. These are what preference smoothing adjusts.
  std::vector<std::pair<VertexId, VertexId>> one_edges() const;

  /// True when every ordered pair (i, j), i != j, has weight > 0.
  bool is_complete() const;

  /// Strong connectivity via Kosaraju's two-pass DFS (iterative).
  /// The smoothed graph must be strongly connected for Thm 5.1 to hold.
  bool is_strongly_connected() const;

  /// The underlying weight matrix (dense, row = from, col = to).
  const Matrix& weights() const { return weights_; }

  /// CSR view of the out-edges, built lazily and kept fresh by amortized
  /// dirty-row rebuilds: set_weight(from, to, w) marks only row `from`
  /// dirty, and the next out_csr() re-scans the d dirty rows while
  /// splicing the other rows' segments straight out of the previous view —
  /// O(n + m + d * n) instead of the full O(n^2) dense scan. Smoothing,
  /// which touches a handful of 1-edge rows between propagation reads, is
  /// the workload this amortizes. Not thread-safe against mutation or a
  /// concurrent rebuild: obtain the reference once, before fanning out
  /// parallel readers (reachability_closure does exactly that).
  const CsrAdjacency& out_csr() const;

  /// Builds a graph directly from a weight matrix (validating invariants).
  static PreferenceGraph from_matrix(const Matrix& weights);

 private:
  void check_vertex(VertexId v) const;

  std::size_t n_;
  Matrix weights_;
  // Lazily-built CSR mirror of weights_. After the first build, set_weight
  // marks only the written row in dirty_rows_ so out_csr() can splice the
  // untouched rows from the cached view instead of re-scanning the whole
  // dense matrix; dirty_count_ lets the fresh-view fast path skip the flag
  // array entirely.
  mutable CsrAdjacency csr_;
  mutable bool csr_built_ = false;
  mutable std::vector<unsigned char> dirty_rows_;
  mutable std::size_t dirty_count_ = 0;
};

}  // namespace crowdrank
