// Streaming and resampling statistics for the bench harnesses.
//
// Benches report means over a handful of seeds; without a dispersion
// estimate "0.94 vs 0.95" is unreadable. RunningStats is Welford's
// numerically stable one-pass mean/variance; bootstrap_ci resamples a
// small sample into a percentile confidence interval so tables can print
// mean ± half-width honestly.
#pragma once

#include <cstddef>
#include <span>

#include "util/rng.hpp"

namespace crowdrank {

/// Welford one-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double value);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile bootstrap confidence interval for the mean.
struct BootstrapInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

/// Resamples `values` (with replacement) `resamples` times and returns the
/// [alpha/2, 1-alpha/2] percentile interval of the resampled means.
/// Requires a non-empty sample, resamples >= 10, alpha in (0, 1).
BootstrapInterval bootstrap_ci(std::span<const double> values,
                               std::size_t resamples, double alpha,
                               Rng& rng);

}  // namespace crowdrank
