// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry Clang Thread Safety Analysis
// capabilities (util/thread_annotations.hpp).
//
// Every lock in src/ goes through these types — tools/crowdrank_lint.py's
// `raw-mutex` rule bans the std types everywhere else — so the locking
// discipline is provable by the `thread-safety` preset:
//
//   Mutex mu;
//   int value CR_GUARDED_BY(mu);
//
//   void bump() {
//     MutexLock lock(mu);   // scoped acquire, released on scope exit
//     ++value;              // OK: capability statically held
//   }
//   // `value` without the lock, or forgetting MutexLock entirely, is a
//   // compile error under -Werror=thread-safety-analysis.
//
// Waiting uses CondVar against the Mutex directly (not against the scoped
// lock), so the wait can be annotated with the capability it requires:
//
//   while (!ready) cv.wait(mu);            // CR_REQUIRES(mu)
//
// The wrappers add no state and no indirection beyond the std types: lock
// and unlock are inline forwards, and CondVar::wait adopts the already-held
// std::mutex for the duration of the std wait (zero extra synchronization).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace crowdrank {

class CondVar;

/// std::mutex carrying the TSA "mutex" capability.
class CR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CR_ACQUIRE() { m_.lock(); }
  void unlock() CR_RELEASE() { m_.unlock(); }
  bool try_lock() CR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  // adopts m_ for the duration of a wait
  std::mutex m_;  // lint:allow(raw-mutex) — the one sanctioned wrap site
};

/// Scoped lock over Mutex (the std::lock_guard replacement). Relockable:
/// `unlock()` / `lock()` open a gap in the critical section — the pattern
/// the pool workers and service executors use to run a task without
/// holding the queue lock — and the destructor releases only if currently
/// held.
class CR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() CR_RELEASE() {
    if (held_) {
      mu_.unlock();
    }
  }

  /// Temporarily leaves the critical section.
  void unlock() CR_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-enters the critical section after unlock().
  void lock() CR_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable waiting on a Mutex. The wait methods require the
/// capability, so a caller that forgot to lock — or that waits on the
/// wrong mutex — fails to compile under the thread-safety preset.
///
/// Waiters re-check their condition in an explicit loop rather than
/// passing a predicate: TSA analyzes lambda bodies as separate functions,
/// so a predicate reading guarded state could not be proven safe, while
/// the loop body sits inside the locked region the analysis already sees.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mu` and blocks; `mu` is held again on return.
  /// Spurious wakeups happen — always re-check the condition in a loop.
  // Body escape: the adopt/release dance hands the already-held std::mutex
  // to the std wait and takes it back, which TSA cannot follow; the
  // REQUIRES contract at the call site is the real check.
  void wait(Mutex& mu) CR_REQUIRES(mu) CR_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(  // lint:allow(raw-mutex)
        mu.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// wait() with a deadline; std::cv_status::timeout when it passed.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      CR_REQUIRES(mu) CR_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(  // lint:allow(raw-mutex)
        mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  /// wait() with a timeout relative to now.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      CR_REQUIRES(mu) CR_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> adopted(  // lint:allow(raw-mutex)
        mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status;
  }

 private:
  std::condition_variable cv_;  // lint:allow(raw-mutex)
};

}  // namespace crowdrank
