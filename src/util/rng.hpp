// Deterministic random number generation for all stochastic components.
//
// Every simulation, sampler, and heuristic in crowdrank takes an explicit
// `Rng&` (or a seed) so that experiments are reproducible bit-for-bit across
// runs and platforms. The engine is xoshiro256++ (Blackman & Vigna), seeded
// through SplitMix64 so that small or correlated user seeds still yield
// well-mixed state. We deliberately avoid std::mt19937 + std::*_distribution
// because libstdc++/libc++ produce different streams for the same seed; our
// distributions are implemented here and therefore portable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {

/// xoshiro256++ engine with SplitMix64 seeding. Satisfies
/// std::uniform_random_bit_generator so it also works with <random> if a
/// caller insists, but prefer the member samplers for portability.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection for
  /// unbiased bounded generation.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller with caching of the second deviate.
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Samples `k` distinct indices from [0, n) without replacement.
  /// Requires k <= n. Uses Floyd's algorithm: O(k) expected time.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Forks a statistically independent child stream (for per-worker or
  /// per-trial streams that must not perturb the parent sequence).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace crowdrank
