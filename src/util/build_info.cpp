#include "util/build_info.hpp"

#include <cstdlib>
#include <sstream>

#include "crowdrank/version.hpp"
#include "util/parallel.hpp"

namespace crowdrank {

BuildInfo build_info() {
  BuildInfo info;
  info.version = CROWDRANK_VERSION;
  info.git_revision = CROWDRANK_GIT_DESCRIBE;
  info.compiler =
      std::string(CROWDRANK_COMPILER_ID) + " " + CROWDRANK_COMPILER_VERSION;
  info.build_type = CROWDRANK_BUILD_TYPE;
  info.threads = configured_thread_count();
  // Mirror configured_thread_count()'s parse: the env var is the source
  // only when it actually decided the count.
  bool from_env = false;
  if (const char* env = std::getenv("CROWDRANK_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    from_env = end != env && *end == '\0' && parsed > 0;
  }
  info.thread_source = from_env ? "CROWDRANK_THREADS" : "hardware";
  return info;
}

std::string build_info_string() {
  const BuildInfo info = build_info();
  std::ostringstream os;
  os << "crowdrank " << info.version << " (" << info.git_revision << ")\n"
     << "compiler : " << info.compiler << "\n"
     << "build    : " << info.build_type << "\n"
     << "threads  : " << info.threads << " (" << info.thread_source << ")\n";
  return os.str();
}

}  // namespace crowdrank
