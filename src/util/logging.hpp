// Minimal leveled logger.
//
// The library itself is silent by default (Core Guidelines: libraries should
// not write to stdout); benches and examples raise the level to Info to
// narrate progress. The logger is a process-wide singleton and is safe to
// use from concurrent pipeline lanes: `write` emits each message under a
// mutex as a single line, so lines from different threads never interleave
// mid-message (the TSan suite covers concurrent logging).
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log configuration + sink (stderr).
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Writes one line with a level prefix to stderr. Mutex-guarded: the
  /// whole line is emitted atomically with respect to other write() calls.
  /// Must not be called with the write mutex already held (re-entrant
  /// logging from inside the sink would self-deadlock).
  void write(LogLevel level, const std::string& message)
      CR_EXCLUDES(write_mutex_);

 private:
  Logger() = default;
  /// Serializes the stderr sink; no data member is guarded (the stream is
  /// process-global), the capability only scopes the line-atomic write.
  Mutex write_mutex_;
  std::atomic<LogLevel> level_{LogLevel::Warn};
};

namespace detail {
/// Stream-style one-shot message builder: emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (Logger::instance().enabled(level_)) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::Debug);
}
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace crowdrank
