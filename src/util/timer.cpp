#include "util/timer.hpp"

namespace crowdrank {

PhaseTimer::PhaseTimer(const PhaseTimer& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  totals_ = other.totals_;
  order_ = other.order_;
}

PhaseTimer& PhaseTimer::operator=(const PhaseTimer& other) {
  if (this == &other) {
    return *this;
  }
  // Lock both in address order to avoid a lock cycle with the mirror call.
  std::scoped_lock lock(this < &other ? mutex_ : other.mutex_,
                        this < &other ? other.mutex_ : mutex_);
  totals_ = other.totals_;
  order_ = other.order_;
  return *this;
}

void PhaseTimer::add(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = totals_.try_emplace(phase, 0.0);
  if (inserted) {
    order_.push_back(phase);
  }
  it->second += seconds;
}

double PhaseTimer::seconds(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = totals_.find(phase);
  return it == totals_.end() ? 0.0 : it->second;
}

double PhaseTimer::total_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Sum in first-recorded order: iterating the unordered map would add the
  // doubles in hash order, which is not pinned across library versions, so
  // the reported total could differ in the last bits between environments.
  double total = 0.0;
  for (const std::string& phase : order_) {
    total += totals_.at(phase);
  }
  return total;
}

std::vector<std::string> PhaseTimer::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

void PhaseTimer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
  order_.clear();
}

}  // namespace crowdrank
