#include "util/timer.hpp"

namespace crowdrank {

void PhaseTimer::add(const std::string& phase, double seconds) {
  auto [it, inserted] = totals_.try_emplace(phase, 0.0);
  if (inserted) {
    order_.push_back(phase);
  }
  it->second += seconds;
}

double PhaseTimer::seconds(const std::string& phase) const {
  const auto it = totals_.find(phase);
  return it == totals_.end() ? 0.0 : it->second;
}

double PhaseTimer::total_seconds() const {
  double total = 0.0;
  for (const auto& [_, secs] : totals_) {
    total += secs;
  }
  return total;
}

void PhaseTimer::clear() {
  totals_.clear();
  order_.clear();
}

}  // namespace crowdrank
