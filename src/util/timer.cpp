#include "util/timer.hpp"

namespace crowdrank {

// TSA does not analyze constructors, and the members of the half-built
// *this need no guard yet; only `other` is locked.
PhaseTimer::PhaseTimer(const PhaseTimer& other) CR_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(other.mutex_);
  totals_ = other.totals_;
  order_ = other.order_;
}

// Escape: address-ordered double locking cannot be expressed to TSA (the
// acquisition order depends on runtime pointer values). The discipline —
// both mutexes held across the copy, taken in a globally consistent
// order — is documented here and exercised by the TSan suite.
PhaseTimer& PhaseTimer::operator=(const PhaseTimer& other)
    CR_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) {
    return *this;
  }
  Mutex* first = this < &other ? &mutex_ : &other.mutex_;
  Mutex* second = this < &other ? &other.mutex_ : &mutex_;
  MutexLock lock_first(*first);
  MutexLock lock_second(*second);
  totals_ = other.totals_;
  order_ = other.order_;
  return *this;
}

void PhaseTimer::add(const std::string& phase, double seconds) {
  MutexLock lock(mutex_);
  auto [it, inserted] = totals_.try_emplace(phase, 0.0);
  if (inserted) {
    order_.push_back(phase);
  }
  it->second += seconds;
}

double PhaseTimer::seconds(const std::string& phase) const {
  MutexLock lock(mutex_);
  const auto it = totals_.find(phase);
  return it == totals_.end() ? 0.0 : it->second;
}

double PhaseTimer::total_seconds() const {
  MutexLock lock(mutex_);
  // Sum in first-recorded order: iterating the unordered map would add the
  // doubles in hash order, which is not pinned across library versions, so
  // the reported total could differ in the last bits between environments.
  double total = 0.0;
  for (const std::string& phase : order_) {
    total += totals_.at(phase);
  }
  return total;
}

std::vector<std::string> PhaseTimer::phases() const {
  MutexLock lock(mutex_);
  return order_;
}

void PhaseTimer::clear() {
  MutexLock lock(mutex_);
  totals_.clear();
  order_.clear();
}

}  // namespace crowdrank
