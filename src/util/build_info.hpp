// Build identification: version, git revision, compiler, build type (all
// stamped at configure time via the generated crowdrank/version.hpp) plus
// the runtime thread-count resolution. Exposed by `crowdrank --version`
// and stamped into every trace::RunReport so perf numbers are always
// attributable to an exact build.
#pragma once

#include <cstddef>
#include <string>

namespace crowdrank {

struct BuildInfo {
  std::string version;           ///< project version (CMake)
  std::string git_revision;      ///< `git describe --always --dirty --tags`
  std::string compiler;          ///< "<id> <version>", e.g. "GNU 12.2.0"
  std::string build_type;        ///< CMAKE_BUILD_TYPE at configure time
  std::size_t threads = 1;       ///< configured_thread_count() right now
  std::string thread_source;     ///< "CROWDRANK_THREADS" or "hardware"
};

/// Snapshot of the build stamp + current thread resolution.
BuildInfo build_info();

/// Multi-line human-readable form (the `crowdrank --version` output).
std::string build_info_string();

}  // namespace crowdrank
