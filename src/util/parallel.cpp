#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Set while the current thread executes tasks of an active region; nested
/// parallel calls observe it and run inline instead of re-entering the pool.
thread_local bool t_in_region = false;

// Work-stealing lane ranges pack a half-open task interval [next, end)
// into one atomic word: next in the high 32 bits, end in the low 32.
// Owners pop the front (next += 1); thieves chop the tail (end -= take)
// and park the stolen interval in their own, empty lane. Both transitions
// are CAS-guarded on the full word, and a given interval value always
// describes tasks currently present in that lane (intervals only split —
// a multi-task interval is never re-assembled — so a stale CAS that
// happens to match still claims exactly the tasks it names, once).
constexpr std::uint64_t pack_range(std::uint64_t next, std::uint64_t end) {
  return (next << 32) | end;
}
constexpr std::uint32_t range_next(std::uint64_t pack) {
  return static_cast<std::uint32_t>(pack >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t pack) {
  return static_cast<std::uint32_t>(pack & 0xffffffffu);
}

}  // namespace

std::size_t configured_thread_count() {
  if (const char* env = std::getenv("CROWDRANK_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// All mutable pool state lives behind one mutex; the only lock-free paths
/// are the per-lane work-stealing intervals (and the abort flag), which
/// lanes hammer while a region is active.
struct ThreadPool::State {
  /// Serializes whole regions: only one external thread may have a job
  /// posted at a time; concurrent callers queue up here. Always taken
  /// before `mutex`, never while holding it.
  Mutex region_mutex CR_ACQUIRED_BEFORE(mutex);
  Mutex mutex;
  CondVar work_ready;
  CondVar work_done;
  std::vector<std::thread> workers CR_GUARDED_BY(mutex);

  // Current region, valid while generation is odd-stepped by run().
  std::uint64_t generation CR_GUARDED_BY(mutex) = 0;
  const std::function<void(std::size_t)>* task CR_GUARDED_BY(mutex) =
      nullptr;
  /// The region caller's arena::current() binding, forwarded to workers
  /// for the duration of the region (restored before they park again).
  std::pmr::memory_resource* region_arena CR_GUARDED_BY(mutex) = nullptr;
  std::size_t active_workers CR_GUARDED_BY(mutex) = 0;
  bool stopping CR_GUARDED_BY(mutex) = false;

  /// Per-lane work-stealing ranges (lane 0 = region caller, lane i + 1 =
  /// worker i). (Re)allocated under `mutex` during region setup when the
  /// worker count changed; the array is stable while a region is live.
  std::unique_ptr<std::atomic<std::uint64_t>[]> lanes;
  /// Written during region setup (workers parked, region_mutex held);
  /// lanes read it while draining, hence atomic rather than mutex-guarded.
  std::atomic<std::size_t> lane_count{0};
  /// Raised by the first failing task; lanes observe it and stop claiming.
  std::atomic<bool> abort{false};

  // Nanoseconds every lane spent draining the current region; only
  // maintained while a trace sink is active (see drain_timed).
  std::atomic<std::uint64_t> region_busy_ns{0};

  // First exception thrown by any task of the current region.
  std::exception_ptr error CR_GUARDED_BY(mutex);
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

ThreadPool::ThreadPool(std::size_t count)
    : state_(std::make_unique<State>()) {
  spawn_workers(count == 0 ? 0 : count - 1);
}

ThreadPool::~ThreadPool() { stop_workers(); }

std::size_t ThreadPool::thread_count() const {
  MutexLock lock(state_->mutex);
  return state_->workers.size() + 1;
}

bool ThreadPool::in_parallel_region() { return t_in_region; }

void ThreadPool::spawn_workers(std::size_t worker_count) {
  MutexLock lock(state_->mutex);
  state_->workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    // Lane 0 belongs to the region caller; worker i drains lane i + 1.
    state_->workers.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

void ThreadPool::stop_workers() {
  // Move the handles out under the lock so thread_count() (which reads
  // workers.size() under the same lock) never races the join/clear below;
  // join outside the lock so exiting workers can take it on their way out.
  std::vector<std::thread> joined;
  {
    MutexLock lock(state_->mutex);
    state_->stopping = true;
    joined = std::move(state_->workers);
    state_->workers.clear();
  }
  state_->work_ready.notify_all();
  for (std::thread& w : joined) {
    w.join();
  }
  MutexLock lock(state_->mutex);
  state_->stopping = false;
}

void ThreadPool::resize(std::size_t count) {
  CR_EXPECTS(count >= 1, "thread pool needs at least one lane");
  CR_EXPECTS(!t_in_region,
             "cannot resize the pool from inside a parallel region");
  // Wait out any region another thread has in flight before re-spawning.
  MutexLock region(state_->region_mutex);
  stop_workers();
  spawn_workers(count - 1);
}

/// Runs drain_tasks, accumulating the lane's busy time into the region
/// counter when a trace sink is active (zero extra work otherwise).
void ThreadPool::drain_timed(const std::function<void(std::size_t)>& task,
                             std::size_t lane) {
  if (trace::sink() == nullptr) {
    drain_tasks(task, lane);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  drain_tasks(task, lane);
  const auto busy = std::chrono::steady_clock::now() - t0;
  state_->region_busy_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(busy)
              .count()),
      std::memory_order_relaxed);
}

/// One lane of the work-stealing drain. The lane pops the front of its own
/// interval until it runs dry, then steals the upper half of the fullest
/// other lane's remainder and continues. Returns when every lane reads
/// empty (intervals claimed by an in-flight thief are finished by that
/// thief before it returns) or the region aborts on a task exception.
/// Determinism is unaffected by the schedule: tasks write disjoint outputs
/// and reductions combine in task-index order after the region.
void ThreadPool::drain_tasks(const std::function<void(std::size_t)>& task,
                             std::size_t lane) {
  State& s = *state_;
  const std::size_t lane_count =
      s.lane_count.load(std::memory_order_acquire);
  std::atomic<std::uint64_t>* lanes = s.lanes.get();
  const auto run_one = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      MutexLock lock(s.mutex);
      if (!s.error) {
        s.error = std::current_exception();
      }
      // The region is already failed: tell every lane to stop claiming.
      s.abort.store(true, std::memory_order_release);
    }
  };
  while (!s.abort.load(std::memory_order_acquire)) {
    // Fast path: pop the front of our own lane.
    std::uint64_t pack = lanes[lane].load(std::memory_order_acquire);
    if (range_next(pack) < range_end(pack)) {
      const std::uint64_t popped =
          pack_range(std::uint64_t{range_next(pack)} + 1, range_end(pack));
      if (lanes[lane].compare_exchange_weak(pack, popped,
                                            std::memory_order_acq_rel)) {
        run_one(range_next(pack));
      }
      continue;
    }
    // Own lane dry: steal the upper half of the fullest victim. Preferring
    // the largest remainder keeps steal counts logarithmic.
    std::size_t victim = lane_count;
    std::uint64_t victim_pack = 0;
    std::uint32_t best_remaining = 0;
    for (std::size_t v = 0; v < lane_count; ++v) {
      if (v == lane) {
        continue;
      }
      const std::uint64_t p = lanes[v].load(std::memory_order_acquire);
      if (range_next(p) < range_end(p) &&
          range_end(p) - range_next(p) > best_remaining) {
        best_remaining = range_end(p) - range_next(p);
        victim = v;
        victim_pack = p;
      }
    }
    if (victim == lane_count) {
      return;  // every lane reads empty — nothing left to claim
    }
    const std::uint32_t v_next = range_next(victim_pack);
    const std::uint32_t v_end = range_end(victim_pack);
    const std::uint32_t take = (v_end - v_next + 1) / 2;
    if (lanes[victim].compare_exchange_weak(
            victim_pack, pack_range(v_next, v_end - take),
            std::memory_order_acq_rel)) {
      // [v_end - take, v_end) is ours; park it in our empty lane (plain
      // store: only the owner installs into a lane, and CAS-transitions
      // require a non-empty interval, so nothing races the install).
      lanes[lane].store(pack_range(std::uint64_t{v_end} - take, v_end),
                        std::memory_order_release);
    }
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  State& s = *state_;
  std::uint64_t seen_generation = 0;
  MutexLock lock(s.mutex);
  while (true) {
    // Explicit re-check loop (not a wait predicate): the guarded reads sit
    // inside the locked region TSA analyzes, where a lambda would not be.
    while (!s.stopping && s.generation == seen_generation) {
      s.work_ready.wait(s.mutex);
    }
    if (s.stopping) {
      return;
    }
    seen_generation = s.generation;
    if (s.task == nullptr) {
      // Woken by a generation bump whose region already fully drained — a
      // freshly spawned worker (post-resize) starts with seen_generation 0
      // and observes old increments. Sync and re-wait; this worker was not
      // part of that region, so active_workers must not be touched.
      continue;
    }
    const auto* task = s.task;
    std::pmr::memory_resource* region_arena = s.region_arena;
    lock.unlock();

    t_in_region = true;
    // Job-scoped allocations made on this worker land in the caller's
    // arena for the duration of the region.
    std::pmr::memory_resource* previous =
        arena::exchange_current(region_arena);
    drain_timed(*task, lane);
    arena::exchange_current(previous);
    t_in_region = false;

    lock.lock();
    if (--s.active_workers == 0) {
      s.work_done.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) {
    return;
  }
  State& s = *state_;
  // Serial pool, single task, or nested call: run inline. Exceptions
  // propagate directly.
  bool inline_run = t_in_region || count == 1;
  if (!inline_run) {
    MutexLock lock(s.mutex);
    inline_run = s.workers.empty();
  }
  if (inline_run) {
    for (std::size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }

  CR_EXPECTS(count <= 0xffffffffu,
             "parallel region task count must fit in 32 bits");
  MutexLock region(s.region_mutex);
  // Capture the sink once per region: lane busy times and the region
  // summary must land in the same sink even if it is swapped mid-region.
  trace::TraceSink* ts = trace::sink();
  const auto region_start = std::chrono::steady_clock::now();
  {
    MutexLock lock(s.mutex);
    s.task = &task;
    s.region_arena = arena::current();
    const std::size_t lanes_needed = s.workers.size() + 1;
    if (s.lane_count.load(std::memory_order_relaxed) != lanes_needed) {
      s.lanes =
          std::make_unique<std::atomic<std::uint64_t>[]>(lanes_needed);
      s.lane_count.store(lanes_needed, std::memory_order_release);
    }
    // Even contiguous slices; imbalance is the thieves' problem.
    for (std::size_t l = 0; l < lanes_needed; ++l) {
      s.lanes[l].store(pack_range(l * count / lanes_needed,
                                  (l + 1) * count / lanes_needed),
                       std::memory_order_relaxed);
    }
    s.abort.store(false, std::memory_order_relaxed);
    s.error = nullptr;
    s.active_workers = s.workers.size();
    s.region_busy_ns.store(0, std::memory_order_relaxed);
    ++s.generation;
  }
  s.work_ready.notify_all();

  t_in_region = true;
  drain_timed(task, 0);
  t_in_region = false;

  MutexLock lock(s.mutex);
  while (s.active_workers != 0) {
    s.work_done.wait(s.mutex);
  }
  s.task = nullptr;
  const std::size_t lanes = s.workers.size() + 1;
  if (ts != nullptr) {
    // Region summary: task throughput plus how much of the lanes' combined
    // wall time was spent idle (waiting for stragglers or wakeup latency).
    const double wall_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - region_start)
            .count();
    const double busy_us =
        static_cast<double>(
            s.region_busy_ns.load(std::memory_order_relaxed)) *
        1e-3;
    metrics::Registry& m = ts->metrics();
    m.counter("pool.regions").add(1);
    m.counter("pool.tasks").add(count);
    m.counter("pool.busy_us").add(static_cast<std::uint64_t>(busy_us));
    const double idle_us =
        wall_us * static_cast<double>(lanes) - busy_us;
    m.counter("pool.idle_us")
        .add(static_cast<std::uint64_t>(idle_us > 0.0 ? idle_us : 0.0));
    m.gauge("pool.threads").set(static_cast<double>(lanes));
    m.histogram("pool.region_us").observe(wall_us);
  }
  if (s.error) {
    std::exception_ptr error = s.error;
    s.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

InlineRegion::InlineRegion() : previous_(t_in_region) {
  t_in_region = true;
}

InlineRegion::~InlineRegion() { t_in_region = previous_; }

std::size_t thread_count() { return ThreadPool::instance().thread_count(); }

std::uint64_t task_stream_seed(std::uint64_t base,
                               std::uint64_t task) noexcept {
  // SplitMix64 finalizer over base offset by (task + 1) gammas: adjacent
  // task indices land in statistically independent streams, and task 0 is
  // offset too so task_stream_seed(s, 0) != splitmix(s) collisions with
  // other derivations of the same base stay unlikely.
  std::uint64_t z = base + (task + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void set_thread_count(std::size_t count) {
  ThreadPool::instance().resize(count);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) {
    return;
  }
  if (grain == 0) {
    grain = 1;
  }
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  ThreadPool& pool = ThreadPool::instance();
  if (chunks == 1 || ThreadPool::in_parallel_region()) {
    body(begin, end);
    return;
  }
  pool.run(chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = b + grain < end ? b + grain : end;
    body(b, e);
  });
}

}  // namespace crowdrank
