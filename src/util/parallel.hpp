// Parallel execution engine: a lazily-initialized process-wide thread pool
// with chunked `parallel_for` / `parallel_reduce` helpers.
//
// Design goals, in order:
//  1. *Determinism.* Results must be bitwise-identical at any thread count.
//     Chunk boundaries depend only on the caller-supplied grain (never on
//     the thread count), chunks are scheduled by work-stealing but write
//     disjoint outputs, and `parallel_reduce` combines per-chunk partials
//     sequentially in chunk-index order. Callers keep the guarantee by
//     making each chunk's computation independent of which thread runs it.
//  2. *Zero cost when serial.* With one thread (or inside a nested region)
//     every helper degenerates to a plain inline loop — no allocation, no
//     synchronization — so `CROWDRANK_THREADS=1` reproduces the historical
//     single-threaded behavior exactly.
//  3. *No oversubscription.* Nested parallel regions (a pool worker calling
//     `parallel_for`) run inline on the calling worker; the outermost
//     region owns the pool.
//
// Thread count resolution: `CROWDRANK_THREADS` env var if set to a positive
// integer, otherwise `std::thread::hardware_concurrency()`. Tests and
// benches may override at runtime with `set_thread_count()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace crowdrank {

/// Thread count the pool is created with: `CROWDRANK_THREADS` when set to a
/// positive integer, else `std::thread::hardware_concurrency()` (min 1).
std::size_t configured_thread_count();

/// Process-wide pool. `instance()` lazily spawns `configured_thread_count()
/// - 1` workers; the caller of a parallel region always participates, so
/// `thread_count() == workers + 1`.
class ThreadPool {
 public:
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  std::size_t thread_count() const;

  /// Joins all workers and respawns `count - 1` (count >= 1). Must not be
  /// called from inside a parallel region.
  void resize(std::size_t count);

  /// Runs `task(0) .. task(count - 1)` across the pool and the calling
  /// thread; blocks until all complete. Tasks are distributed by
  /// work-stealing: each lane starts with an even contiguous slice and
  /// idle lanes steal the upper half of the fullest lane's remainder, so
  /// callers must not depend on task->thread mapping. The calling thread's
  /// arena::current() binding is forwarded to the workers for the duration
  /// of the region (see util/arena.hpp). The first exception thrown by any
  /// task is rethrown on the caller after the region drains. Nested calls
  /// (from a pool worker) run inline.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// True when the current thread is executing inside a parallel region.
  static bool in_parallel_region();

 private:
  explicit ThreadPool(std::size_t count);
  void spawn_workers(std::size_t worker_count);
  void stop_workers();
  void worker_loop(std::size_t lane);
  void drain_tasks(const std::function<void(std::size_t)>& task,
                   std::size_t lane);
  void drain_timed(const std::function<void(std::size_t)>& task,
                   std::size_t lane);

  struct State;
  std::unique_ptr<State> state_;  // pimpl; State is completed in the .cpp
};

/// Convenience accessors for the global pool.
std::size_t thread_count();
void set_thread_count(std::size_t count);

/// Derives a well-mixed 64-bit seed for per-task RNG streams: task `t` of a
/// fan-out seeded with `base` runs on `Rng(task_stream_seed(base, t))`.
/// Pure SplitMix64-style mixing of (base, task) — no global state, no
/// clock — so the stream a task sees depends only on the caller's seed and
/// the task index, never on the thread count or execution schedule. This
/// is how SAPS keeps its parallel restarts bitwise-deterministic.
std::uint64_t task_stream_seed(std::uint64_t base,
                               std::uint64_t task) noexcept;

/// Scoped opt-out of the global pool for the current thread: while an
/// InlineRegion is alive, every `parallel_for` / `parallel_reduce` /
/// `ThreadPool::run` issued from this thread executes inline, exactly as
/// inside a nested region. The serving layer (src/service) holds one per
/// job-executor thread so concurrent jobs each run on their own lane
/// instead of serializing on the pool's region lock — job-level
/// parallelism replaces kernel-level parallelism. Nestable; restores the
/// previous state on destruction.
class InlineRegion {
 public:
  InlineRegion();
  InlineRegion(const InlineRegion&) = delete;
  InlineRegion& operator=(const InlineRegion&) = delete;
  ~InlineRegion();

 private:
  bool previous_;
};

/// Chunked parallel loop over [begin, end): `body(b, e)` is invoked for
/// consecutive half-open sub-ranges of at most `grain` elements. Chunk
/// boundaries depend only on `grain`, so element-disjoint bodies produce
/// identical results at any thread count. Runs inline when the range fits
/// in one chunk or the pool is serial.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic chunked reduction over [begin, end): `chunk_fn(b, e)`
/// returns the partial for one sub-range; partials are combined with
/// `combine(acc, partial)` sequentially in ascending chunk order starting
/// from `init`. Because chunk boundaries and combine order are independent
/// of the thread count, the result is bitwise-identical at any thread count
/// whenever `chunk_fn` itself is.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, ChunkFn&& chunk_fn, CombineFn&& combine) {
  if (end <= begin) {
    return init;
  }
  if (grain == 0) {
    grain = 1;
  }
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) {
    return combine(init, chunk_fn(begin, end));
  }
  std::vector<T> partial(chunks, init);
  parallel_for(0, chunks, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      const std::size_t b = begin + c * grain;
      const std::size_t e = b + grain < end ? b + grain : end;
      partial[c] = chunk_fn(b, e);
    }
  });
  T acc = init;
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(acc, partial[c]);
  }
  return acc;
}

}  // namespace crowdrank
