// AVX2 variants of the simd layer kernels. This is the only TU compiled
// with -mavx2 (see src/util/CMakeLists.txt) and, with simd.hpp, the only
// place raw intrinsics are allowed (`raw-intrinsics` lint rule).
//
// Bitwise contract: every vector op below maps 1:1 onto the scalar
// reference in simd.cpp — same per-element op sequence, same rounding.
// That means mul + add (never FMA: -mavx2 does not enable FMA codegen, so
// the compiler cannot contract), blends that reproduce the scalar
// `cond ? a : b` exactly, and scalar tail loops that repeat the reference
// loop body verbatim. Touch nothing here without updating the reference
// and re-running tests/util/test_simd.cpp identity sweeps.
#ifndef CROWDRANK_NO_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/simd.hpp"

namespace crowdrank::simd::avx2 {

namespace {

/// Lane-wise log_pinned: x > 0 and finite per lane (callers blend the
/// other cases); garbage lanes produce garbage that must be blended away,
/// never trapped on (FP exceptions stay masked).
inline __m256d log_lanes(__m256d x) {
  using namespace detail;
  const __m256d dbl_min = _mm256_set1_pd(std::numeric_limits<double>::min());
  const __m256d two54 = _mm256_set1_pd(kTwo54);
  const __m256d sub_mask = _mm256_cmp_pd(x, dbl_min, _CMP_LT_OQ);
  const __m256d xs =
      _mm256_blendv_pd(x, _mm256_mul_pd(x, two54), sub_mask);
  const __m256i kbias = _mm256_and_si256(
      _mm256_castpd_si256(sub_mask), _mm256_set1_epi64x(-kTwo54Shift));

  const __m256i bits = _mm256_castpd_si256(xs);
  __m256i k = _mm256_add_epi64(
      kbias,
      _mm256_sub_epi64(_mm256_and_si256(_mm256_srli_epi64(bits, 52),
                                        _mm256_set1_epi64x(0x7ff)),
                       _mm256_set1_epi64x(1023)));
  const __m256i hx = _mm256_and_si256(_mm256_srli_epi64(bits, 32),
                                      _mm256_set1_epi64x(0xfffff));
  const __m256i steer = _mm256_and_si256(
      _mm256_add_epi64(hx, _mm256_set1_epi64x(0x95f64)),
      _mm256_set1_epi64x(0x100000));
  const __m256i mbits = _mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
      _mm256_slli_epi64(_mm256_xor_si256(steer, _mm256_set1_epi64x(0x3ff00000)),
                        32));
  k = _mm256_add_epi64(k, _mm256_srli_epi64(steer, 20));
  const __m256d m = _mm256_castsi256_pd(mbits);

  // dk = (double)k via the 2^52 + 2^51 magic; exact for |k| < 2^51.
  const __m256d dk = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_add_epi64(
          k, _mm256_set1_epi64x(0x4338000000000000LL))),
      _mm256_set1_pd(6755399441055744.0));

  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lg1 = _mm256_set1_pd(kLg1);
  const __m256d lg2 = _mm256_set1_pd(kLg2);
  const __m256d lg3 = _mm256_set1_pd(kLg3);
  const __m256d lg4 = _mm256_set1_pd(kLg4);
  const __m256d lg5 = _mm256_set1_pd(kLg5);
  const __m256d lg6 = _mm256_set1_pd(kLg6);
  const __m256d lg7 = _mm256_set1_pd(kLg7);
  const __m256d ln2hi = _mm256_set1_pd(kLn2Hi);
  const __m256d ln2lo = _mm256_set1_pd(kLn2Lo);

  const __m256d f = _mm256_sub_pd(m, one);
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(two, f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_add_pd(lg2, _mm256_mul_pd(
                                w, _mm256_add_pd(lg4, _mm256_mul_pd(w, lg6)))));
  const __m256d t2 = _mm256_mul_pd(
      z, _mm256_add_pd(
             lg1, _mm256_mul_pd(
                      w, _mm256_add_pd(
                             lg3, _mm256_mul_pd(
                                      w, _mm256_add_pd(
                                             lg5, _mm256_mul_pd(w, lg7)))))));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq = _mm256_mul_pd(half, _mm256_mul_pd(f, f));
  const __m256d inner = _mm256_add_pd(
      _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)), _mm256_mul_pd(dk, ln2lo));
  return _mm256_sub_pd(_mm256_mul_pd(dk, ln2hi),
                       _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
}

}  // namespace

void axpy(double* out, const double* x, double a, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d o = _mm256_loadu_pd(out + j);
    const __m256d v = _mm256_mul_pd(av, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(out + j, _mm256_add_pd(o, v));
  }
  for (; j < n; ++j) {
    out[j] += a * x[j];
  }
}

void axpy4(double* out, const double* r0, const double* r1, const double* r2,
           const double* r3, double a0, double a1, double a2, double a3,
           std::size_t n) {
  const __m256d av0 = _mm256_set1_pd(a0);
  const __m256d av1 = _mm256_set1_pd(a1);
  const __m256d av2 = _mm256_set1_pd(a2);
  const __m256d av3 = _mm256_set1_pd(a3);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    __m256d t = _mm256_loadu_pd(out + j);
    t = _mm256_add_pd(t, _mm256_mul_pd(av0, _mm256_loadu_pd(r0 + j)));
    t = _mm256_add_pd(t, _mm256_mul_pd(av1, _mm256_loadu_pd(r1 + j)));
    t = _mm256_add_pd(t, _mm256_mul_pd(av2, _mm256_loadu_pd(r2 + j)));
    t = _mm256_add_pd(t, _mm256_mul_pd(av3, _mm256_loadu_pd(r3 + j)));
    _mm256_storeu_pd(out + j, t);
  }
  for (; j < n; ++j) {
    double t = out[j];
    t += a0 * r0[j];
    t += a1 * r1[j];
    t += a2 * r2[j];
    t += a3 * r3[j];
    out[j] = t;
  }
}

namespace {

/// One-row GEMM strip (the rows % 4 tail): 16-wide ymm strips whose
/// accumulators stay live across the whole k loop.
inline void gemm_row(double* out, const double* a, const double* b,
                     std::size_t k_len, std::size_t b_stride, std::size_t w) {
  std::size_t j = 0;
  for (; j + 16 <= w; j += 16) {
    __m256d t0 = _mm256_loadu_pd(out + j);
    __m256d t1 = _mm256_loadu_pd(out + j + 4);
    __m256d t2 = _mm256_loadu_pd(out + j + 8);
    __m256d t3 = _mm256_loadu_pd(out + j + 12);
    const double* row = b + j;
    for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
      const double ak = a[k];
      if (ak == 0.0) {
        continue;
      }
      const __m256d av = _mm256_set1_pd(ak);
      t0 = _mm256_add_pd(t0, _mm256_mul_pd(av, _mm256_loadu_pd(row)));
      t1 = _mm256_add_pd(t1, _mm256_mul_pd(av, _mm256_loadu_pd(row + 4)));
      t2 = _mm256_add_pd(t2, _mm256_mul_pd(av, _mm256_loadu_pd(row + 8)));
      t3 = _mm256_add_pd(t3, _mm256_mul_pd(av, _mm256_loadu_pd(row + 12)));
    }
    _mm256_storeu_pd(out + j, t0);
    _mm256_storeu_pd(out + j + 4, t1);
    _mm256_storeu_pd(out + j + 8, t2);
    _mm256_storeu_pd(out + j + 12, t3);
  }
  for (; j + 4 <= w; j += 4) {
    __m256d t = _mm256_loadu_pd(out + j);
    const double* row = b + j;
    for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
      const double ak = a[k];
      if (ak == 0.0) {
        continue;
      }
      t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_set1_pd(ak),
                                         _mm256_loadu_pd(row)));
    }
    _mm256_storeu_pd(out + j, t);
  }
  for (; j < w; ++j) {
    double t = out[j];
    const double* row = b + j;
    for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
      const double ak = a[k];
      if (ak == 0.0) {
        continue;
      }
      t += ak * row[0];
    }
    out[j] = t;
  }
}

}  // namespace

void gemm_accum(double* out, std::size_t out_stride, std::size_t rows,
                const double* a, std::size_t a_stride, const double* b,
                std::size_t k_len, std::size_t b_stride, std::size_t w) {
  // 4-row x 8-column register tile: eight ymm accumulators live across
  // the whole k loop, and each loaded b vector feeds all four rows — b
  // traffic drops 4x versus a one-row sweep, which is what keeps the
  // kernel compute-bound once the rhs block lives in L2. Zero a terms
  // are skipped per row, exactly like the scalar reference; every output
  // element still sees its own ascending-k mul-then-add chain.
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    double* o0 = out + r * out_stride;
    double* o1 = o0 + out_stride;
    double* o2 = o1 + out_stride;
    double* o3 = o2 + out_stride;
    const double* a0 = a + r * a_stride;
    const double* a1 = a0 + a_stride;
    const double* a2 = a1 + a_stride;
    const double* a3 = a2 + a_stride;
    std::size_t j = 0;
    for (; j + 8 <= w; j += 8) {
      __m256d t00 = _mm256_loadu_pd(o0 + j);
      __m256d t01 = _mm256_loadu_pd(o0 + j + 4);
      __m256d t10 = _mm256_loadu_pd(o1 + j);
      __m256d t11 = _mm256_loadu_pd(o1 + j + 4);
      __m256d t20 = _mm256_loadu_pd(o2 + j);
      __m256d t21 = _mm256_loadu_pd(o2 + j + 4);
      __m256d t30 = _mm256_loadu_pd(o3 + j);
      __m256d t31 = _mm256_loadu_pd(o3 + j + 4);
      const double* row = b + j;
      for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
        const __m256d b0 = _mm256_loadu_pd(row);
        const __m256d b1 = _mm256_loadu_pd(row + 4);
        if (a0[k] != 0.0) {
          const __m256d av = _mm256_set1_pd(a0[k]);
          t00 = _mm256_add_pd(t00, _mm256_mul_pd(av, b0));
          t01 = _mm256_add_pd(t01, _mm256_mul_pd(av, b1));
        }
        if (a1[k] != 0.0) {
          const __m256d av = _mm256_set1_pd(a1[k]);
          t10 = _mm256_add_pd(t10, _mm256_mul_pd(av, b0));
          t11 = _mm256_add_pd(t11, _mm256_mul_pd(av, b1));
        }
        if (a2[k] != 0.0) {
          const __m256d av = _mm256_set1_pd(a2[k]);
          t20 = _mm256_add_pd(t20, _mm256_mul_pd(av, b0));
          t21 = _mm256_add_pd(t21, _mm256_mul_pd(av, b1));
        }
        if (a3[k] != 0.0) {
          const __m256d av = _mm256_set1_pd(a3[k]);
          t30 = _mm256_add_pd(t30, _mm256_mul_pd(av, b0));
          t31 = _mm256_add_pd(t31, _mm256_mul_pd(av, b1));
        }
      }
      _mm256_storeu_pd(o0 + j, t00);
      _mm256_storeu_pd(o0 + j + 4, t01);
      _mm256_storeu_pd(o1 + j, t10);
      _mm256_storeu_pd(o1 + j + 4, t11);
      _mm256_storeu_pd(o2 + j, t20);
      _mm256_storeu_pd(o2 + j + 4, t21);
      _mm256_storeu_pd(o3 + j, t30);
      _mm256_storeu_pd(o3 + j + 4, t31);
    }
    if (j < w) {
      // Column tail (< 8): finish each of the four rows with the one-row
      // strip kernel — identical per-element chains.
      gemm_row(o0 + j, a0, b + j, k_len, b_stride, w - j);
      gemm_row(o1 + j, a1, b + j, k_len, b_stride, w - j);
      gemm_row(o2 + j, a2, b + j, k_len, b_stride, w - j);
      gemm_row(o3 + j, a3, b + j, k_len, b_stride, w - j);
    }
  }
  for (; r < rows; ++r) {
    gemm_row(out + r * out_stride, a + r * a_stride, b, k_len, b_stride, w);
  }
}

void spmm_row_accum(double* out, const double* vals,
                    const std::uint32_t* idx, std::size_t nnz,
                    const double* b, std::size_t b_stride, std::size_t w) {
  // gemm_row over an index-compacted entry list: 16-wide ymm strips whose
  // accumulators stay live across the whole entry loop; the b row is
  // addressed through idx[e] instead of a dense k walk, so there is no
  // zero-test branch at all. Per element the chain is ascending-e
  // mul-then-add, identical to the scalar reference.
  std::size_t j = 0;
  for (; j + 16 <= w; j += 16) {
    __m256d t0 = _mm256_loadu_pd(out + j);
    __m256d t1 = _mm256_loadu_pd(out + j + 4);
    __m256d t2 = _mm256_loadu_pd(out + j + 8);
    __m256d t3 = _mm256_loadu_pd(out + j + 12);
    for (std::size_t e = 0; e < nnz; ++e) {
      const __m256d av = _mm256_set1_pd(vals[e]);
      const double* row =
          b + static_cast<std::size_t>(idx[e]) * b_stride + j;
      t0 = _mm256_add_pd(t0, _mm256_mul_pd(av, _mm256_loadu_pd(row)));
      t1 = _mm256_add_pd(t1, _mm256_mul_pd(av, _mm256_loadu_pd(row + 4)));
      t2 = _mm256_add_pd(t2, _mm256_mul_pd(av, _mm256_loadu_pd(row + 8)));
      t3 = _mm256_add_pd(t3, _mm256_mul_pd(av, _mm256_loadu_pd(row + 12)));
    }
    _mm256_storeu_pd(out + j, t0);
    _mm256_storeu_pd(out + j + 4, t1);
    _mm256_storeu_pd(out + j + 8, t2);
    _mm256_storeu_pd(out + j + 12, t3);
  }
  for (; j + 4 <= w; j += 4) {
    __m256d t = _mm256_loadu_pd(out + j);
    for (std::size_t e = 0; e < nnz; ++e) {
      const double* row =
          b + static_cast<std::size_t>(idx[e]) * b_stride + j;
      t = _mm256_add_pd(t, _mm256_mul_pd(_mm256_set1_pd(vals[e]),
                                         _mm256_loadu_pd(row)));
    }
    _mm256_storeu_pd(out + j, t);
  }
  for (; j < w; ++j) {
    double t = out[j];
    for (std::size_t e = 0; e < nnz; ++e) {
      t += vals[e] * b[static_cast<std::size_t>(idx[e]) * b_stride + j];
    }
    out[j] = t;
  }
}

void add(double* out, const double* x, std::size_t n) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j),
                                            _mm256_loadu_pd(x + j)));
  }
  for (; j < n; ++j) {
    out[j] += x[j];
  }
}

void scale(double* x, double a, std::size_t n) {
  const __m256d av = _mm256_set1_pd(a);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(x + j, _mm256_mul_pd(_mm256_loadu_pd(x + j), av));
  }
  for (; j < n; ++j) {
    x[j] *= a;
  }
}

double max0(const double* x, std::size_t n) {
  // The fold `(m < x) ? x : m` from a +0.0 seed is grouping-independent
  // (max over finites is exact; NaN never passes the predicate; -0.0
  // never beats the +0.0 seed), so lane-parallel accumulation returns the
  // scalar reference's bits.
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d v = _mm256_loadu_pd(x + j);
    acc = _mm256_blendv_pd(acc, v, _mm256_cmp_pd(acc, v, _CMP_LT_OQ));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = 0.0;
  for (const double lane : lanes) {
    m = m < lane ? lane : m;
  }
  for (; j < n; ++j) {
    m = m < x[j] ? x[j] : m;
  }
  return m;
}

double max_abs_diff(const double* a, const double* b, std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d d = _mm256_and_pd(
        _mm256_sub_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)),
        abs_mask);
    acc = _mm256_blendv_pd(acc, d, _mm256_cmp_pd(acc, d, _CMP_LT_OQ));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double m = 0.0;
  for (const double lane : lanes) {
    m = m < lane ? lane : m;
  }
  for (; j < n; ++j) {
    const double d = std::fabs(a[j] - b[j]);
    m = m < d ? d : m;
  }
  return m;
}

void neg_log_clamped(double* out, const double* w, std::size_t n,
                     double floor_log) {
  const __m256d floorv = _mm256_set1_pd(floor_log);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d sign_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(
          static_cast<std::int64_t>(0x8000000000000000ULL)));
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d x = _mm256_loadu_pd(w + j);
    const __m256d core = log_lanes(x);
    __m256d lg = _mm256_blendv_pd(core, floorv,
                                  _mm256_cmp_pd(core, floorv, _CMP_LT_OQ));
    // Specials, in the scalar branch order: non-finite passes through,
    // then x <= 0 (including -inf) takes the floor.
    const __m256d nonfinite =
        _mm256_cmp_pd(_mm256_and_pd(x, abs_mask), inf, _CMP_NLT_UQ);
    lg = _mm256_blendv_pd(lg, x, nonfinite);
    lg = _mm256_blendv_pd(lg, floorv, _mm256_cmp_pd(x, zero, _CMP_LE_OQ));
    _mm256_storeu_pd(out + j, _mm256_xor_pd(lg, sign_mask));
  }
  for (; j < n; ++j) {
    const double x = w[j];
    double lg;
    if (x <= 0.0) {
      lg = floor_log;
    } else if (!std::isfinite(x)) {
      lg = x;
    } else {
      const double core = log_pinned(x);
      lg = core < floor_log ? floor_log : core;
    }
    out[j] = -lg;
  }
}

}  // namespace crowdrank::simd::avx2

#endif  // CROWDRANK_NO_AVX2
