// Vectorized kernel layer: the one dispatch point for the hot inner loops.
//
// Every kernel here has two implementations — a portable scalar reference
// and an AVX2 variant (kernels_avx2.cpp, compiled with -mavx2 for that one
// translation unit only) — selected once at startup by runtime CPU
// detection. The two are *bitwise identical* by construction, which is the
// whole design constraint: the engine's determinism contract ("results
// depend only on job + seed", pinned by tests/core/test_determinism) must
// hold across machines with and without AVX2, so a vector path may never
// change a rounding.
//
// The rules that make that possible:
//
//  * Vectorize across independent output lanes, never across a reduction.
//    axpy/axpy4 process four output elements per vector op; each element
//    sees exactly the scalar op sequence (load, mul, add, store — same
//    order, same rounding). Order-sensitive reductions (path_cost_sum)
//    stay scalar in both backends; only order-*insensitive* folds (max)
//    get a vector path, with identical `(m < x) ? x : m` lane semantics.
//  * No FMA. The scalar reference rounds the multiply and the add
//    separately, so the vector path uses mul + add, not fused ops. The
//    build never enables FMA codegen (plain -mavx2 does not imply -mfma,
//    and no -march flag is set anywhere), so the compiler cannot contract
//    either side behind our back.
//  * One log. `log_pinned` is a branch-free fdlibm-style natural log whose
//    AVX2 version executes the identical op DAG lane-wise; math::safe_log
//    routes through it so the SAPS cost cache can be filled by the batch
//    kernel (`neg_log_clamped`) with bitwise-equal results either way.
//    (libm's log is opaque — its exact bits vary by libc version — so
//    pinning the algorithm is also what keeps golden files portable.)
//
// Backend selection: AVX2 when compiled in (CMake option CROWDRANK_SIMD,
// default `auto`) and the CPU reports it, unless the CROWDRANK_SIMD
// environment variable ("scalar" | "avx2" | "auto") overrides. Tests force
// a side with set_backend(). Raw intrinsics are banned outside this header
// and kernels_avx2.cpp by the `raw-intrinsics` lint rule.
#pragma once

#include <cstddef>
#include <cstdint>

namespace crowdrank::simd {

enum class Backend { Scalar, Avx2 };

/// True when the AVX2 translation unit was compiled in (CROWDRANK_SIMD
/// was `auto` or `avx2` and the compiler accepts -mavx2).
bool avx2_compiled();

/// avx2_compiled() and the running CPU reports AVX2.
bool avx2_supported();

/// The backend all kernels currently dispatch to.
Backend active_backend();

/// Forces a backend (tests / benches). Returns false (and leaves the
/// dispatch untouched) when the requested backend is unavailable.
bool set_backend(Backend backend);

/// Re-derives the backend from CROWDRANK_SIMD + CPU detection, undoing
/// any set_backend() override.
void reset_backend();

const char* backend_name(Backend backend);

// ---- lane-parallel kernels (double) ------------------------------------
// All pointers may be arbitrarily aligned; ranges must not partially
// overlap (out == x is fine for scale, nothing else aliases).

/// out[j] += a * x[j]
void axpy(double* out, const double* x, double a, std::size_t n);

/// Four-term fused sweep:
///   t = out[j]; t += a0*r0[j]; t += a1*r1[j]; t += a2*r2[j]; t += a3*r3[j]
/// with exactly that per-element order (ascending-k accumulation).
void axpy4(double* out, const double* r0, const double* r1, const double* r2,
           const double* r3, double a0, double a1, double a2, double a3,
           std::size_t n);

/// Register-blocked GEMM tile, the dense-matmul inner block. For each
/// output row r in [0, rows) and column j in [0, w):
///   t = out[r*out_stride + j];
///   for k ascending in [0, k_len) with a[r*a_stride + k] != 0.0:
///     t += a[r*a_stride + k] * b[k*b_stride + j];
///   out[r*out_stride + j] = t;
/// Per output element this is the same ascending-k mul-then-add chain as
/// applying one axpy per term — every element is an independent lane, so
/// regrouping the (r, j) sweep into register tiles batches the loads
/// without touching a single rounding. The scalar reference runs each row
/// in 8-wide strips the compiler keeps in SSE2 registers; the AVX2
/// variant processes four rows per 8-wide strip so each loaded b vector
/// feeds four accumulator rows (b traffic /4 — the difference between
/// compute-bound and load-bound at L2 sizes). Zero a terms are skipped
/// identically on both sides.
void gemm_accum(double* out, std::size_t out_stride, std::size_t rows,
                const double* a, std::size_t a_stride, const double* b,
                std::size_t k_len, std::size_t b_stride, std::size_t w);

/// Compacted (CSR-row) counterpart of gemm_accum: one output row
/// accumulated against nnz indexed rows of a dense b. For each j in
/// [0, w):
///   t = out[j];
///   for e ascending in [0, nnz):
///     t += vals[e] * b[idx[e] * b_stride + j];
///   out[j] = t;
/// Per output element this is the same ascending-k chain as one axpy per
/// stored entry (CSR column indices ascend), but the output strip lives
/// in registers across the whole entry loop instead of being re-loaded
/// per term, and there is no zero-test branch to mispredict on — the
/// entry list is already compacted. The sparse staged-dense product
/// regime is the caller.
void spmm_row_accum(double* out, const double* vals,
                    const std::uint32_t* idx, std::size_t nnz,
                    const double* b, std::size_t b_stride, std::size_t w);

/// out[j] += x[j]
void add(double* out, const double* x, std::size_t n);

/// x[j] *= a
void scale(double* x, double a, std::size_t n);

/// Fold `(m < x[j]) ? x[j] : m` starting from m = 0.0. Exact for every
/// grouping on finite inputs, and the +0.0 seed means a -0.0 input can
/// never change the sign of the result, so the vector regrouping is
/// bitwise-safe. NaN inputs are ignored (the predicate is false), matching
/// the scalar fold.
double max0(const double* x, std::size_t n);

/// Fold of |a[j] - b[j]| under the same max semantics as max0.
double max_abs_diff(const double* a, const double* b, std::size_t n);

/// out[i] = -safe_log(w[i], floor_log): the SAPS cost-matrix fill.
/// safe_log semantics: w <= 0 -> floor_log; non-finite w passes through;
/// otherwise max(log_pinned(w), floor_log).
void neg_log_clamped(double* out, const double* w, std::size_t n,
                     double floor_log);

/// Ordered gather-sum sum_s costs[path[s] * stride + path[s + 1]] for
/// s in [0, len - 1). A sequential reduction — the accumulation order is
/// part of the SAPS bitwise contract — so both backends run the same
/// scalar loop; it lives here so the kernel inventory (and the lint
/// allowlist) stays the single statement of what the hot path executes.
double path_cost_sum(const double* costs, const std::size_t* path,
                     std::size_t len, std::size_t stride);

/// Portable natural log, bit-identical across backends and libcs:
/// fdlibm-style reduction x = 2^k * m, m in [sqrt(2)/2, sqrt(2)), followed
/// by a fixed-order polynomial in s = f/(2+f), f = m - 1. Requires
/// x > 0 and finite (callers handle 0/negative/inf/NaN; safe_log does).
/// Subnormals are pre-scaled by 2^54. Matches libm log to <= 1 ulp.
double log_pinned(double x);

namespace detail {

// Shared constants of the pinned log; kernels_avx2.cpp mirrors the exact
// op DAG lane-wise, so both TUs must read the same coefficients.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
// 2^54, the subnormal pre-scale; 54 = the matching exponent correction.
inline constexpr double kTwo54 = 1.80143985094819840000e+16;
inline constexpr int kTwo54Shift = 54;

}  // namespace detail

}  // namespace crowdrank::simd
