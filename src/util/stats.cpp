#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::mean() const {
  CR_EXPECTS(count_ > 0, "mean of an empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CR_EXPECTS(count_ > 0, "min of an empty accumulator");
  return min_;
}

double RunningStats::max() const {
  CR_EXPECTS(count_ > 0, "max of an empty accumulator");
  return max_;
}

BootstrapInterval bootstrap_ci(std::span<const double> values,
                               std::size_t resamples, double alpha,
                               Rng& rng) {
  CR_EXPECTS(!values.empty(), "bootstrap needs at least one sample");
  CR_EXPECTS(resamples >= 10, "bootstrap needs at least 10 resamples");
  CR_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[rng.uniform_index(values.size())];
    }
    means.push_back(sum / static_cast<double>(values.size()));
  }
  std::sort(means.begin(), means.end());

  double total = 0.0;
  for (const double v : values) total += v;

  const auto percentile = [&](double p) {
    const double idx = p * static_cast<double>(means.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, means.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return means[lo] * (1.0 - frac) + means[hi] * frac;
  };

  BootstrapInterval ci;
  ci.mean = total / static_cast<double>(values.size());
  ci.lower = percentile(alpha / 2.0);
  ci.upper = percentile(1.0 - alpha / 2.0);
  return ci;
}

}  // namespace crowdrank
