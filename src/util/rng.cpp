#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace crowdrank {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // xoshiro256++ requires a nonzero state; SplitMix64 of any seed makes an
  // all-zero state astronomically unlikely, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CR_EXPECTS(lo < hi, "uniform(lo, hi) requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  CR_EXPECTS(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CR_EXPECTS(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0, 1] so log is finite.
  double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  CR_EXPECTS(sigma >= 0.0, "normal sigma must be non-negative");
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return uniform() < clamped;
}

double Rng::exponential(double rate) {
  CR_EXPECTS(rate > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = i;
  }
  shuffle(p);
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CR_EXPECTS(k <= n, "cannot sample more items than the population size");
  // Floyd's algorithm: for j in [n-k, n): pick t uniform in [0, j]; insert t
  // unless already present, else insert j.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_index(j + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

Rng Rng::fork() {
  // Derive the child seed from two engine outputs; advancing the parent keeps
  // successive forks independent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace crowdrank
