// Compressed-sparse-row matrix for the sparse-first phase of preference
// propagation (Step 3).
//
// The smoothed preference graph carries only l = O(n) direct edges (the
// budget constraint B = c*l, paper §IV), so the early spectral-doubling
// steps multiply matrices whose fill is a fraction of a percent. Running
// them densely costs O(n^3) per squaring regardless; this type provides
// the CSR kernels that cost O(flops actually performed) instead.
//
// Determinism contract (the same one util/matrix.hpp documents for the
// dense kernels): every output row is produced by exactly one pool task,
// chunk boundaries depend only on a fixed grain, and for every output
// element the k terms accumulate one += at a time in ascending k order —
// exactly the order of the dense kernel, which also skips zero lhs terms.
// Because all matrices on this path are non-negative, the dense kernel's
// extra `+= a * 0.0` no-ops cannot change a bit (x + 0.0 == x for x >= 0),
// so SparseMatrix::multiply is *bitwise-identical* to Matrix::multiply on
// the same operands at any thread count (tests/util/test_sparse_matrix.cpp
// pins this property; bench/perf_pipeline asserts it every run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/matrix.hpp"

namespace crowdrank {

/// Row-major CSR matrix of doubles. Stored entries are nonzero, and each
/// row's column indices are strictly ascending. Computed zeros (exact 0.0
/// sums, e.g. from underflowed products) are dropped on emission — a
/// stored zero and an absent entry are indistinguishable to every kernel
/// here and to to_dense().
class SparseMatrix {
 public:
  // Storage draws from the thread-local arena::current() resource with the
  // same capture rules as Matrix (see util/matrix.hpp): explicit capture on
  // construction and copy-construction, moves carry their resource,
  // assignments keep the destination's.
  SparseMatrix()
      : row_ptr_(arena::current()),
        col_idx_(arena::current()),
        values_(arena::current()) {}
  SparseMatrix(const SparseMatrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        row_ptr_(other.row_ptr_, arena::current()),
        col_idx_(other.col_idx_, arena::current()),
        values_(other.values_, arena::current()) {}
  SparseMatrix(SparseMatrix&& other) noexcept = default;
  SparseMatrix& operator=(const SparseMatrix& other) = default;
  SparseMatrix& operator=(SparseMatrix&& other) = default;
  ~SparseMatrix() = default;

  /// rows x cols matrix with no stored entries.
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Builds from a dense matrix, storing exactly the entries != 0.0.
  static SparseMatrix from_dense(const Matrix& dense);

  /// Builds from raw CSR arrays (e.g. a graph CsrAdjacency view): row r's
  /// entries are (col_idx[i], values[i]) for i in [row_ptr[r],
  /// row_ptr[r + 1]), columns strictly ascending, values nonzero.
  static SparseMatrix from_csr(std::size_t rows, std::size_t cols,
                               std::span<const std::size_t> row_ptr,
                               std::span<const std::size_t> col_idx,
                               std::span<const double> values);

  /// Dense materialization: absent entries become 0.0.
  Matrix to_dense() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Stored-entry fraction of the full rows x cols grid; 0 for an empty
  /// shape. This is the quantity the hybrid propagator monitors to decide
  /// when dense kernels win (propagation.fill_ratio).
  double fill_ratio() const;

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> col_indices() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// Scales every stored entry. Matches the dense `Matrix::operator*=`
  /// entry-for-entry (absent entries are 0.0 * s == 0.0 either way).
  SparseMatrix& operator*=(double scalar);

  /// Maximum stored entry, floored at 0.0 — identical to the dense
  /// max_value() on the non-negative matrices propagation works with
  /// (absent entries are zeros, and the dense reduce is floored at 0.0
  /// too). Exact max-reduce, bitwise-stable at any thread count.
  double max_value() const;

  /// Gustavson row-parallel CSR x CSR product. Requires
  /// lhs.cols() == rhs.rows(). When `flops` is non-null it receives the
  /// number of multiply-add updates actually performed (2 flops each).
  static SparseMatrix multiply(const SparseMatrix& lhs,
                               const SparseMatrix& rhs,
                               std::uint64_t* flops = nullptr);

  /// Fused `lhs * rhs + scale * addend`, the spectral doubling's carry
  /// step. Per output element: all product terms first (ascending k), then
  /// + scale * addend — the same order as the dense
  /// Matrix::multiply_add_scaled, hence bitwise-identical to it. Requires
  /// addend shaped like the product.
  static SparseMatrix multiply_add_scaled(const SparseMatrix& lhs,
                                          const SparseMatrix& rhs,
                                          double scale,
                                          const SparseMatrix& addend,
                                          std::uint64_t* flops = nullptr);

  bool operator==(const SparseMatrix& other) const = default;

 private:
  static SparseMatrix multiply_impl(const SparseMatrix& lhs,
                                    const SparseMatrix& rhs, double scale,
                                    const SparseMatrix* addend,
                                    std::uint64_t* flops);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  /// size rows_ + 1 (empty shape: {})
  std::pmr::vector<std::size_t> row_ptr_;
  /// size nnz, ascending per row
  std::pmr::vector<std::uint32_t> col_idx_;
  /// size nnz, parallel to col_idx_
  std::pmr::vector<double> values_;
};

}  // namespace crowdrank
