// Monotonic per-job arena: the serve-path answer to steady-state malloc.
//
// A ranking job allocates a burst of scratch — vote graphs, dense/sparse
// matrices, propagation doubling buffers — and frees all of it before the
// next job starts. An Arena turns that pattern into pointer bumps over a
// few retained blocks: `do_allocate` bumps, `do_deallocate` only counts,
// and `reset()` rewinds everything between jobs while keeping the blocks,
// so after warm-up a job performs zero system allocations for its
// matrix/graph scratch (bench/service_throughput asserts the steady state).
//
// Wiring: Arena is a std::pmr::memory_resource; Matrix/SparseMatrix (and
// anything else that opts in) construct their buffers from the
// *thread-local* resource `arena::current()`, which defaults to the global
// new/delete resource. A service executor owns one Arena, binds it around
// each job with `arena::Scope`, and resets it after the job's outputs
// (heap-backed strings/vectors) have been copied out. ThreadPool::run
// forwards the caller's binding to its workers for the duration of a
// region, so kernels that allocate scratch on worker threads land in the
// same job arena — which is why allocation is thread-safe (one mutex; the
// rate is a handful of container constructions per job, not per element).
//
// Safety net: reset() refuses to rewind while allocations are still
// outstanding (counted via do_deallocate) and records the skip in stats —
// a leak-through becomes a visible perf degradation instead of a
// use-after-reset.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank {

/// Monotonic counters; readable at any time via Arena::stats().
struct ArenaStats {
  std::uint64_t system_allocs = 0;   ///< upstream block acquisitions
  std::uint64_t bytes_reserved = 0;  ///< capacity currently retained
  std::uint64_t bytes_used = 0;      ///< bytes handed out since last reset
  std::uint64_t bytes_peak = 0;      ///< high-water bytes_used over resets
  std::uint64_t allocs = 0;          ///< do_allocate calls (lifetime)
  std::uint64_t oversize_allocs = 0; ///< requests past the block size
  std::uint64_t resets = 0;          ///< successful rewinds
  std::uint64_t skipped_resets = 0;  ///< rewinds refused (outstanding != 0)
  std::uint64_t outstanding = 0;     ///< live allocations right now
};

class Arena final : public std::pmr::memory_resource {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena() override;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds the arena, retaining normal blocks and releasing oversize
  /// ones. Refuses (stats().skipped_resets++) while allocations are
  /// outstanding; returns whether the rewind happened.
  bool reset();

  ArenaStats stats() const;

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* p, std::size_t bytes,
                     std::size_t alignment) override;
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  const std::size_t block_bytes_;
  mutable Mutex mutex_;
  std::vector<Block> blocks_ CR_GUARDED_BY(mutex_);
  std::vector<Block> oversize_ CR_GUARDED_BY(mutex_);
  std::size_t block_index_ CR_GUARDED_BY(mutex_) = 0;
  std::size_t offset_ CR_GUARDED_BY(mutex_) = 0;
  ArenaStats stats_ CR_GUARDED_BY(mutex_);
  /// Outside the mutex: do_deallocate must stay lock-free so destructors
  /// running on any thread never contend with an allocating worker.
  std::atomic<std::uint64_t> outstanding_{0};
};

namespace arena {

/// The thread's current allocation resource: the innermost bound Arena,
/// or std::pmr::new_delete_resource() when none is bound.
std::pmr::memory_resource* current();

/// Rebinds the calling thread's resource, returning the previous binding
/// (nullptr = default). Used by ThreadPool to forward the caller's arena
/// to workers for the duration of a parallel region; everyone else should
/// prefer Scope.
std::pmr::memory_resource* exchange_current(std::pmr::memory_resource* r);

/// RAII binding: all opted-in containers constructed on this thread while
/// the Scope lives draw from `resource`.
class Scope {
 public:
  explicit Scope(std::pmr::memory_resource& resource)
      : previous_(exchange_current(&resource)) {}
  ~Scope() { exchange_current(previous_); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::pmr::memory_resource* previous_;
};

}  // namespace arena

}  // namespace crowdrank
