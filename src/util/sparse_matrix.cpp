#include "util/sparse_matrix.hpp"

#include <algorithm>
#include <limits>

#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Rows per pool task. Same value as the dense kernels use: chunk
/// boundaries are thread-count independent, and each output row is
/// produced by exactly one task.
constexpr std::size_t kRowGrain = 16;

/// Stored entries per chunk in the flat element-wise passes (scale, max).
constexpr std::size_t kElementGrain = 1 << 14;

/// When a result row touches at least this fraction of the columns, the
/// ascending-column emission scans the accumulator directly instead of
/// sorting the touched list — O(cols) beats O(r log r) for dense-ish rows.
/// The choice depends only on the row's touched count, never on threads,
/// and both paths emit the identical ascending sequence.
constexpr std::size_t kScanDivisor = 4;

}  // namespace

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      row_ptr_(rows + 1, 0, arena::current()),
      col_idx_(arena::current()),
      values_(arena::current()) {}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense) {
  SparseMatrix out(dense.rows(), dense.cols());
  CR_EXPECTS(dense.cols() <= std::numeric_limits<std::uint32_t>::max(),
             "sparse column indices are 32-bit");
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    out.row_ptr_[i] = out.values_.size();
    const auto row = dense.row(i);
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (row[j] != 0.0) {
        out.col_idx_.push_back(static_cast<std::uint32_t>(j));
        out.values_.push_back(row[j]);
      }
    }
  }
  out.row_ptr_[dense.rows()] = out.values_.size();
  return out;
}

SparseMatrix SparseMatrix::from_csr(std::size_t rows, std::size_t cols,
                                    std::span<const std::size_t> row_ptr,
                                    std::span<const std::size_t> col_idx,
                                    std::span<const double> values) {
  CR_EXPECTS(row_ptr.size() == rows + 1, "row_ptr must have rows + 1 slots");
  CR_EXPECTS(col_idx.size() == values.size(),
             "col_idx and values must be parallel");
  CR_EXPECTS(cols <= std::numeric_limits<std::uint32_t>::max(),
             "sparse column indices are 32-bit");
  SparseMatrix out(rows, cols);
  out.row_ptr_.assign(row_ptr.begin(), row_ptr.end());
  out.col_idx_.reserve(col_idx.size());
  for (const std::size_t c : col_idx) {
    CR_EXPECTS(c < cols, "column index out of range");
    out.col_idx_.push_back(static_cast<std::uint32_t>(c));
  }
  out.values_.assign(values.begin(), values.end());
  return out;
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_, 0.0);
  parallel_for(0, rows_, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      auto row = out.row(i);
      for (std::size_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
        row[col_idx_[e]] = values_[e];
      }
    }
  });
  return out;
}

double SparseMatrix::fill_ratio() const {
  if (rows_ == 0 || cols_ == 0) {
    return 0.0;
  }
  return static_cast<double>(values_.size()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

SparseMatrix& SparseMatrix::operator*=(double scalar) {
  parallel_for(0, values_.size(), kElementGrain,
               [&](std::size_t b, std::size_t e) {
                 simd::scale(values_.data() + b, scalar, e - b);
               });
  return *this;
}

double SparseMatrix::max_value() const {
  return parallel_reduce(
      std::size_t{0}, values_.size(), kElementGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        return simd::max0(values_.data() + lo, hi - lo);
      },
      [](double acc, double part) { return std::max(acc, part); });
}

namespace {

/// Staged-dense regime: when the rhs fill reaches this fraction, scattered
/// acc[col] += updates lose to contiguous axpy rows over a dense staging
/// of the rhs (the scatter is ~6x the per-element cost and defeats the
/// vector units; this is what made the n = 100 spmm bench row *slower*
/// than the dense kernel). The threshold depends only on operand shape —
/// never on threads or backend — so results stay machine-independent.
constexpr double kDenseRhsFill = 0.10;

/// Cap on the staged-dense rhs footprint (elements): 1 << 22 is 32 MiB of
/// doubles, enough for every mid-doubling densifying operand while keeping
/// the horizon-truncated n = 10000 workload on the scatter path.
constexpr std::size_t kDenseRhsMaxElems = std::size_t{1} << 22;

/// Full dense fallback: below this many dense-product updates
/// (rows * inner * cols) and with both operands at/above kDenseRhsFill,
/// the whole product routes through the register-blocked dense kernel
/// (to_dense -> Matrix::multiply -> from_dense). At these sizes the dense
/// kernel's efficiency beats any per-entry formulation even counting the
/// representation round-trip — this is what holds the small-n spmm bench
/// row at parity with force-densifying (speedup_floor 1.0). 1 << 24 puts
/// the crossover near n = 250 cubed; the pipeline's large-n doubling
/// states sit far above it and keep their sparse regimes.
constexpr std::size_t kDenseStageMaxFlops = std::size_t{1} << 24;

}  // namespace

/// Gustavson product with an optional fused scaled-add epilogue.
///
/// Three regimes, chosen once per call from operand shape alone (never
/// from thread count or backend, so results stay machine-independent):
///
/// * Dense fallback (small + both operands dense-ish): the whole product
///   routes through the register-blocked dense kernel and the result is
///   re-compressed. from_dense keeps exactly the `!= 0.0` entries, the
///   same drop rule the sparse emitters use, and the dense kernel's
///   per-element ascending-k accumulation (zero terms skipped) is the
///   rounding sequence the regimes below reproduce — so the fallback is
///   value- and pattern-identical to them.
///
/// * Scatter (sparse rhs): a dense accumulator (acc) plus a touched-column
///   list per task. For row i, the lhs row's terms are walked in ascending
///   k (CSR order), and each term scatters a_ik * b_kj into acc — so per
///   output element the adds land in ascending k order, matching the dense
///   kernel's per-element accumulation exactly.
/// * Staged-dense (rhs fill >= kDenseRhsFill): the rhs is materialized
///   densely once per call and each lhs row's entry list drives one
///   simd::spmm_row_accum — indexed accumulation over the staged rhs rows
///   with the output strip held in registers across all entries. Terms
///   land in ascending-k CSR order, and the `+= a * 0.0` terms for absent
///   rhs entries are exactly the ops the dense kernel performs, so this
///   regime is bitwise-identical to Matrix::multiply for *all* operands —
///   and the emission drop of exact-zero sums keeps the stored pattern
///   identical to the scatter regime's.
///
/// The epilogue then folds scale * addend into the same accumulator, after
/// all product terms, matching the dense fused kernel's ordering. Emission
/// walks columns ascending (sorted touched list, accumulator scan for
/// dense-ish rows, or the staged regime's combined scan-and-clear —
/// identical output in every case) and drops exact-zero sums.
///
/// Assembly: each fixed-grain chunk of rows appends into its own staging
/// buffer; buffers are concatenated in chunk order afterwards. Chunk
/// boundaries depend only on kRowGrain, so the result is bitwise-identical
/// at any thread count.
SparseMatrix SparseMatrix::multiply_impl(const SparseMatrix& lhs,
                                         const SparseMatrix& rhs,
                                         double scale,
                                         const SparseMatrix* addend,
                                         std::uint64_t* flops) {
  CR_EXPECTS(lhs.cols_ == rhs.rows_, "inner dimensions must match");
  CR_EXPECTS(addend == nullptr || (addend->rows_ == lhs.rows_ &&
                                   addend->cols_ == rhs.cols_),
             "addend must be shaped like the product");
  const std::size_t n = lhs.rows_;
  const std::size_t m = rhs.cols_;

  // Dense fallback (regime 1). The nested floor divisions make the
  // product bound overflow-safe: cols <= kMax / m / n  <=>  n*cols*m <= kMax.
  const bool dense_stage =
      n > 0 && m > 0 && lhs.cols_ > 0 &&
      lhs.cols_ <= kDenseStageMaxFlops / m / n &&
      lhs.fill_ratio() >= kDenseRhsFill && rhs.fill_ratio() >= kDenseRhsFill;
  if (dense_stage) {
    const Matrix lhs_dense = lhs.to_dense();
    const Matrix rhs_dense = rhs.to_dense();
    SparseMatrix result = from_dense(
        addend == nullptr
            ? Matrix::multiply(lhs_dense, rhs_dense)
            : Matrix::multiply_add_scaled(lhs_dense, rhs_dense, scale,
                                          addend->to_dense()));
    // Dense-kernel accounting: the dense upper bound, like Matrix's own
    // counter (the kernel skips zero lhs entries).
    const std::uint64_t updates = static_cast<std::uint64_t>(n) *
                                  lhs.cols_ * m;
    if (flops != nullptr) {
      *flops = 2 * updates;
    }
    if (metrics::Counter* mults = trace::counter("sparse.multiplies")) {
      mults->add(1);
      trace::counter("sparse.flops")->add(2 * updates);
    }
    return result;
  }

  struct ChunkOut {
    std::pmr::vector<std::uint32_t> cols{arena::current()};
    std::pmr::vector<double> vals{arena::current()};
    std::pmr::vector<std::size_t> row_nnz{arena::current()};
    std::uint64_t updates = 0;
  };
  const std::size_t chunk_count =
      n == 0 ? 0 : (n + kRowGrain - 1) / kRowGrain;
  std::vector<ChunkOut> chunks(chunk_count);

  // Regime choice: a pure function of the rhs shape (see above).
  const bool staged_dense = m > 0 && lhs.cols_ * m <= kDenseRhsMaxElems &&
                            rhs.fill_ratio() >= kDenseRhsFill;
  const Matrix rhs_dense = staged_dense ? rhs.to_dense() : Matrix();

  parallel_for(0, n, kRowGrain, [&](std::size_t r0, std::size_t r1) {
    ChunkOut& out = chunks[r0 / kRowGrain];
    out.row_nnz.reserve(r1 - r0);
    if (staged_dense) {
      // One simd::spmm_row_accum call per row: the CSR entry list drives
      // indexed accumulation against the staged rhs with the output strip
      // held in registers across all entries (no per-entry re-load of the
      // accumulator, no zero-test branch). Per output element the terms
      // land in ascending-k CSR order — the exact chain one axpy per
      // entry produces.
      std::pmr::vector<double> acc(m, 0.0, arena::current());
      for (std::size_t i = r0; i < r1; ++i) {
        const std::size_t begin = lhs.row_ptr_[i];
        const std::size_t nnz_row = lhs.row_ptr_[i + 1] - begin;
        bool any = nnz_row != 0;
        if (nnz_row != 0) {
          out.updates += nnz_row * m;
          simd::spmm_row_accum(acc.data(), lhs.values_.data() + begin,
                               lhs.col_idx_.data() + begin, nnz_row,
                               rhs_dense.row(0).data(), m, m);
        }
        if (addend != nullptr) {
          any = any || addend->row_ptr_[i + 1] != addend->row_ptr_[i];
          for (std::size_t e = addend->row_ptr_[i];
               e < addend->row_ptr_[i + 1]; ++e) {
            acc[addend->col_idx_[e]] += scale * addend->values_[e];
          }
        }
        const std::size_t before = out.vals.size();
        if (any) {
          // Combined emit-and-clear scan; ascending columns, zero sums
          // dropped, accumulator left clean for the next row.
          for (std::size_t j = 0; j < m; ++j) {
            const double v = acc[j];
            acc[j] = 0.0;
            if (v != 0.0) {
              out.cols.push_back(static_cast<std::uint32_t>(j));
              out.vals.push_back(v);
            }
          }
        }
        out.row_nnz.push_back(out.vals.size() - before);
      }
      return;
    }
    std::pmr::vector<double> acc(m, 0.0, arena::current());
    std::pmr::vector<unsigned char> present(arena::current());
    std::pmr::vector<std::uint32_t> touched(arena::current());
    present.assign(m, 0);
    for (std::size_t i = r0; i < r1; ++i) {
      touched.clear();
      for (std::size_t ae = lhs.row_ptr_[i]; ae < lhs.row_ptr_[i + 1];
           ++ae) {
        const double a = lhs.values_[ae];
        const std::size_t k = lhs.col_idx_[ae];
        const std::size_t b_begin = rhs.row_ptr_[k];
        const std::size_t b_end = rhs.row_ptr_[k + 1];
        out.updates += b_end - b_begin;
        for (std::size_t be = b_begin; be < b_end; ++be) {
          const std::uint32_t j = rhs.col_idx_[be];
          const double term = a * rhs.values_[be];
          if (present[j] == 0) {
            present[j] = 1;
            touched.push_back(j);
            acc[j] = term;
          } else {
            acc[j] += term;
          }
        }
      }
      if (addend != nullptr) {
        // Fused epilogue: after every product term, exactly like the dense
        // kernel's separate post-product sweep.
        for (std::size_t e = addend->row_ptr_[i];
             e < addend->row_ptr_[i + 1]; ++e) {
          const std::uint32_t j = addend->col_idx_[e];
          const double term = scale * addend->values_[e];
          if (present[j] == 0) {
            present[j] = 1;
            touched.push_back(j);
            acc[j] = term;
          } else {
            acc[j] += term;
          }
        }
      }
      const std::size_t before = out.vals.size();
      if (touched.size() >= m / kScanDivisor) {
        // Dense-ish row: one ascending scan over the accumulator.
        for (std::size_t j = 0; j < m; ++j) {
          if (present[j] != 0) {
            present[j] = 0;
            if (acc[j] != 0.0) {
              out.cols.push_back(static_cast<std::uint32_t>(j));
              out.vals.push_back(acc[j]);
            }
          }
        }
      } else {
        std::sort(touched.begin(), touched.end());
        for (const std::uint32_t j : touched) {
          present[j] = 0;
          if (acc[j] != 0.0) {
            out.cols.push_back(j);
            out.vals.push_back(acc[j]);
          }
        }
      }
      out.row_nnz.push_back(out.vals.size() - before);
    }
  });

  // Stitch: row_ptr from per-row counts, then bulk-append each chunk's
  // staging buffers in chunk (== row) order.
  SparseMatrix result(n, m);
  std::uint64_t updates = 0;
  std::size_t total = 0;
  for (const ChunkOut& c : chunks) {
    total += c.vals.size();
    updates += c.updates;
  }
  result.col_idx_.reserve(total);
  result.values_.reserve(total);
  std::size_t row = 0;
  std::size_t offset = 0;
  for (const ChunkOut& c : chunks) {
    for (const std::size_t nnz : c.row_nnz) {
      result.row_ptr_[row++] = offset;
      offset += nnz;
    }
    result.col_idx_.insert(result.col_idx_.end(), c.cols.begin(),
                           c.cols.end());
    result.values_.insert(result.values_.end(), c.vals.begin(),
                          c.vals.end());
  }
  for (; row <= n; ++row) {
    result.row_ptr_[row] = offset;
  }

  if (flops != nullptr) {
    *flops = 2 * updates;
  }
  if (metrics::Counter* mults = trace::counter("sparse.multiplies")) {
    mults->add(1);
    trace::counter("sparse.flops")->add(2 * updates);
  }
  return result;
}

SparseMatrix SparseMatrix::multiply(const SparseMatrix& lhs,
                                    const SparseMatrix& rhs,
                                    std::uint64_t* flops) {
  return multiply_impl(lhs, rhs, 0.0, nullptr, flops);
}

SparseMatrix SparseMatrix::multiply_add_scaled(const SparseMatrix& lhs,
                                               const SparseMatrix& rhs,
                                               double scale,
                                               const SparseMatrix& addend,
                                               std::uint64_t* flops) {
  return multiply_impl(lhs, rhs, scale, &addend, flops);
}

}  // namespace crowdrank
