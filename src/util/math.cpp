#include "util/math.hpp"

#include <math.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/simd.hpp"

namespace crowdrank::math {

namespace {

/// Thread-safe log-gamma. glibc's lgamma writes the sign of Γ(x) to the
/// process-global `signgam`, which is a data race when several pipeline
/// stages evaluate chi-squared quantiles concurrently (TSan flags it via
/// the service executors). Every call site in this file has x > 0, where
/// the sign is always +1, so the reentrant variant's sign output is
/// discarded.
inline double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEpsilon;

/// Series representation of P(a, x), good for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * kEpsilon) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

/// Lentz continued fraction for Q(a, x), good for x >= a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - lgamma_threadsafe(a)) * h;
}

}  // namespace

double gamma_p(double a, double x) {
  CR_EXPECTS(a > 0.0, "gamma_p requires a > 0");
  CR_EXPECTS(x >= 0.0, "gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    return gamma_p_series(a, x);
  }
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  CR_EXPECTS(a > 0.0, "gamma_q requires a > 0");
  CR_EXPECTS(x >= 0.0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) {
    return 1.0 - gamma_p_series(a, x);
  }
  return gamma_q_cf(a, x);
}

double chi_squared_cdf(double x, double k) {
  CR_EXPECTS(k > 0.0, "chi-squared degrees of freedom must be positive");
  if (x <= 0.0) return 0.0;
  return gamma_p(k / 2.0, x / 2.0);
}

double chi_squared_quantile(double p, double k) {
  CR_EXPECTS(p > 0.0 && p < 1.0, "chi-squared quantile requires p in (0,1)");
  CR_EXPECTS(k > 0.0, "chi-squared degrees of freedom must be positive");
  // Wilson-Hilferty: X ~ k * (1 - 2/(9k) + z * sqrt(2/(9k)))^3.
  const double z = normal_quantile(p);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  double x = k * t * t * t;
  if (x <= 0.0) {
    x = 0.5 * k;  // fall back to a positive bracket for extreme p, small k
  }
  // Newton refinement on F(x) - p with F' = chi2 pdf.
  for (int i = 0; i < 60; ++i) {
    const double f = chi_squared_cdf(x, k) - p;
    const double a = k / 2.0;
    const double log_pdf = (a - 1.0) * std::log(x / 2.0) - x / 2.0 -
                           lgamma_threadsafe(a) - std::log(2.0);
    const double pdf = std::exp(log_pdf);
    if (pdf <= 0.0) break;
    const double step = f / pdf;
    double next = x - step;
    if (next <= 0.0) {
      next = x / 2.0;  // keep the iterate in the domain
    }
    if (std::abs(next - x) < 1e-12 * std::max(1.0, x)) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double normal_pdf(double x) {
  static const double kInvSqrt2Pi = 1.0 / std::sqrt(2.0 * M_PI);
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  CR_EXPECTS(p > 0.0 && p < 1.0, "normal quantile requires p in (0,1)");
  // Acklam's rational approximation (relative error ~1.15e-9)...
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // ...polished by one Halley step against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double expected_abs_normal(double sigma) {
  CR_EXPECTS(sigma >= 0.0, "sigma must be non-negative");
  return sigma * std::sqrt(2.0 / M_PI);
}

double mean(std::span<const double> values) {
  CR_EXPECTS(!values.empty(), "mean of an empty range");
  return kahan_sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  CR_EXPECTS(!values.empty(), "variance of an empty range");
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(values.size());
}

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

double safe_log(double x, double floor_log) {
  // Routed through the pinned portable log (not libm) so the scalar call
  // here, the batch cost-matrix fill (simd::neg_log_clamped), and its
  // AVX2 variant all produce the same bits — and so golden artifacts stay
  // byte-stable across libc versions. Branch order matches the batch
  // kernels' lane blends exactly.
  if (x <= 0.0) return floor_log;
  if (!std::isfinite(x)) return x;  // +inf -> +inf, NaN -> NaN (legacy)
  const double lg = simd::log_pinned(x);
  return lg < floor_log ? floor_log : lg;
}

double kahan_sum(std::span<const double> values) {
  double sum = 0.0;
  double comp = 0.0;
  for (const double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double log_factorial(std::size_t n) {
  return lgamma_threadsafe(static_cast<double>(n) + 1.0);
}

std::size_t pair_count(std::size_t n) { return n * (n - 1) / 2; }

}  // namespace crowdrank::math
