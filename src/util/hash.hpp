// StableHash: a deterministic, platform-stable 128-bit content hash.
//
// The artifact store and the service result cache key everything by
// content: a cache entry written on one machine (or in a previous process)
// must be found by any other, and an artifact checksum must verify years
// after it was written. That rules out std::hash (unspecified, per-process
// salted for strings on some standard libraries) and anything touching
// pointers, locales, or build stamps. StableHash is a streaming
// MurmurHash3-x64-128 variant over an explicit little-endian byte
// encoding: callers append primitives through the typed `add_*` methods
// (doubles go in as their IEEE-754 bit pattern, so +0.0 and -0.0 hash
// differently and NaN payloads are preserved), and the digest depends only
// on the appended byte sequence. Pure integer arithmetic — identical
// output on every platform, compiler, and optimization level.
//
// Not cryptographic: keys are for deduplication and corruption detection,
// not authentication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace crowdrank {

/// 128-bit digest. Ordered so it can key a std::map deterministically.
struct HashDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const HashDigest&, const HashDigest&) = default;
  friend auto operator<=>(const HashDigest&, const HashDigest&) = default;

  /// 32 lowercase hex characters, hi first — the canonical on-disk key.
  std::string hex() const;
};

class StableHash {
 public:
  /// `seed` separates key spaces (e.g. frame checksums vs. cache keys).
  explicit StableHash(std::uint64_t seed = 0);

  void add_bytes(const void* data, std::size_t size);
  void add_u8(std::uint8_t value);
  void add_u32(std::uint32_t value);
  void add_u64(std::uint64_t value);
  void add_bool(bool value) { add_u8(value ? 1 : 0); }
  /// IEEE-754 bit pattern, not numeric value.
  void add_double(double value);
  /// Length-prefixed, so {"ab","c"} and {"a","bc"} hash differently.
  void add_string(std::string_view value);

  /// Finalizes a copy of the state: the hasher stays usable, and digests
  /// taken at different prefixes are all valid.
  HashDigest digest() const;
  /// `digest().lo` — the 64-bit truncation used for frame checksums.
  std::uint64_t digest64() const { return digest().lo; }

 private:
  void mix_block(std::uint64_t k1, std::uint64_t k2);

  std::uint64_t h1_;
  std::uint64_t h2_;
  std::uint8_t tail_[16] = {};
  std::size_t tail_size_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace crowdrank
