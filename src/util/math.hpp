// Special functions and small statistics helpers.
//
// The truth-discovery step (paper Eq. 5) scales worker weights by the
// alpha/2-percentile of a chi-squared distribution with |T_k| degrees of
// freedom; the worker model needs normal CDF/quantiles; the smoothing step
// needs E|N(0, sigma^2)|. None of these are in the C++ standard library, so
// we implement them here with well-known numerically robust algorithms
// (Numerical-Recipes-style series/continued fractions for the incomplete
// gamma, Acklam's rational approximation refined by Halley steps for the
// normal quantile).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace crowdrank::math {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Requires a > 0, x >= 0. Accurate to ~1e-12 over the usual range.
double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Chi-squared CDF with k degrees of freedom evaluated at x >= 0.
double chi_squared_cdf(double x, double k);

/// Chi-squared quantile (inverse CDF): the x with CDF(x; k) = p.
/// Requires p in (0, 1) and k > 0. Wilson-Hilferty initial guess refined by
/// Newton iterations on the regularized incomplete gamma.
double chi_squared_quantile(double p, double k);

/// Standard normal PDF.
double normal_pdf(double x);

/// Standard normal CDF via erfc.
double normal_cdf(double x);

/// Standard normal quantile (probit). Requires p in (0, 1).
double normal_quantile(double p);

/// E|X| for X ~ N(0, sigma^2): sigma * sqrt(2/pi). Used by preference
/// smoothing to turn a worker's error std-dev into an expected error mass.
double expected_abs_normal(double sigma);

/// Arithmetic mean of a non-empty range.
double mean(std::span<const double> values);

/// Population variance (divides by n) of a non-empty range.
double variance(std::span<const double> values);

/// Clamps v into [0, 1].
double clamp01(double v);

/// Numerically safe log(x) that maps x <= 0 to -infinity guard `floor_log`
/// (default -745, below log(DBL_MIN)). Used for log-weight path scores.
double safe_log(double x, double floor_log = -745.0);

/// Kahan-compensated sum, for long accumulations in propagation/benches.
double kahan_sum(std::span<const double> values);

/// log(n!) via lgamma.
double log_factorial(std::size_t n);

/// Binomial coefficient C(n, 2) as a size_t convenience (pair count).
std::size_t pair_count(std::size_t n);

}  // namespace crowdrank::math
