// Error handling primitives for the crowdrank library.
//
// The library reports precondition violations and unrecoverable states by
// throwing `crowdrank::Error` (a std::runtime_error). The CR_EXPECTS /
// CR_ENSURES macros mirror the GSL Expects/Ensures contract idiom from the
// C++ Core Guidelines (I.6/I.8) but throw instead of terminating so that
// harness code (benches, examples) can surface a readable message.
#pragma once

#include <stdexcept>
#include <string>

namespace crowdrank {

/// Exception type thrown on contract violations and invalid configurations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Builds the exception message and throws; out-of-line to keep the check
/// macros cheap at call sites.
[[noreturn]] void raise_contract_violation(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& message);
}  // namespace detail

}  // namespace crowdrank

/// Precondition check: throws crowdrank::Error when `cond` is false.
#define CR_EXPECTS(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::crowdrank::detail::raise_contract_violation("precondition", #cond, \
                                                    __FILE__, __LINE__,    \
                                                    (msg));                \
    }                                                                      \
  } while (false)

/// Postcondition / invariant check: throws crowdrank::Error when false.
#define CR_ENSURES(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::crowdrank::detail::raise_contract_violation("postcondition", #cond, \
                                                    __FILE__, __LINE__,     \
                                                    (msg));                 \
    }                                                                       \
  } while (false)

/// Debug-only contract check for per-element accessors on the inference hot
/// path (Matrix::row, PreferenceGraph::weight, CSR neighbor scans). These
/// fire on every inner-loop iteration, so Release builds compile them out;
/// define CROWDRANK_DEBUG_CHECKS=1 (automatic when NDEBUG is absent) to
/// keep them. API-level preconditions stay on CR_EXPECTS unconditionally.
#ifndef CROWDRANK_DEBUG_CHECKS
#ifdef NDEBUG
#define CROWDRANK_DEBUG_CHECKS 0
#else
#define CROWDRANK_DEBUG_CHECKS 1
#endif
#endif

#if CROWDRANK_DEBUG_CHECKS
#define CR_DEBUG_EXPECTS(cond, msg) CR_EXPECTS(cond, msg)
#else
#define CR_DEBUG_EXPECTS(cond, msg) \
  do {                              \
  } while (false)
#endif
