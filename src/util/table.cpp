#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace crowdrank {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CR_EXPECTS(!header_.empty(), "table header must not be empty");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  CR_EXPECTS(cells.size() == header_.size(),
             "row width must match the header width");
  rows_.push_back(std::move(cells));
}

std::string TableWriter::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TableWriter::fmt_percent(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return oss.str();
}

std::string TableWriter::fmt_seconds(double seconds, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << seconds << 's';
  return oss.str();
}

void TableWriter::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t rule_width = 0;
  for (const std::size_t w : widths) rule_width += w;
  rule_width += 2 * (widths.size() - 1);
  os << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TableWriter::print_csv(std::ostream& os) const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace crowdrank
