#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Rows handed to one pool task at a time. Fixed (thread-count independent)
/// so chunk boundaries never shift; each row is produced by exactly one
/// task either way, so this only affects load balance.
constexpr std::size_t kRowGrain = 16;

/// Elements per chunk for the flat element-wise kernels.
constexpr std::size_t kElementGrain = 1 << 14;

/// Below this many multiply-adds the pool dispatch overhead is not worth
/// paying; run the plain serial loop.
constexpr std::size_t kSerialFlopLimit = 1 << 18;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::zero(std::size_t n) { return Matrix(n, n, 0.0); }

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CR_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  CR_DEBUG_EXPECTS(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  CR_DEBUG_EXPECTS(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CR_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shapes must match for +=");
  parallel_for(0, data_.size(), kElementGrain,
               [&](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) {
                   data_[i] += other.data_[i];
                 }
               });
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) {
    v *= scalar;
  }
  return *this;
}

Matrix Matrix::multiply(const Matrix& lhs, const Matrix& rhs) {
  CR_EXPECTS(lhs.cols_ == rhs.rows_, "inner dimensions must match");
  const std::size_t n = lhs.rows_;
  const std::size_t k_dim = lhs.cols_;
  const std::size_t m = rhs.cols_;
  // Dense-kernel accounting for the tracing layer: one relaxed-atomic load
  // when tracing is off, two sharded counter adds when on. The flop figure
  // is the dense upper bound (the kernel skips zero lhs entries).
  if (metrics::Counter* mults = trace::counter("matrix.multiplies")) {
    mults->add(1);
    trace::counter("matrix.flops")
        ->add(static_cast<std::uint64_t>(2) * n * k_dim * m);
  }
  Matrix out(n, m, 0.0);
  // i-k-j order with blocking: streams through rhs rows sequentially, so the
  // inner loop is a SAXPY the compiler vectorizes. Parallelized over row
  // blocks of the output: each row is accumulated by exactly one task in
  // the same kk/k order as the serial loop, so the product is
  // bitwise-identical at any thread count.
  constexpr std::size_t kBlock = 64;
  const auto row_block = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t ii = r0; ii < r1; ii += kBlock) {
      const std::size_t i_end = std::min(ii + kBlock, r1);
      for (std::size_t kk = 0; kk < k_dim; kk += kBlock) {
        const std::size_t k_end = std::min(kk + kBlock, k_dim);
        for (std::size_t i = ii; i < i_end; ++i) {
          double* out_row = out.data_.data() + i * m;
          for (std::size_t k = kk; k < k_end; ++k) {
            const double a = lhs(i, k);
            if (a == 0.0) continue;
            const double* rhs_row = rhs.data_.data() + k * m;
            for (std::size_t j = 0; j < m; ++j) {
              out_row[j] += a * rhs_row[j];
            }
          }
        }
      }
    }
  };
  if (n * k_dim * m < kSerialFlopLimit) {
    row_block(0, n);
  } else {
    parallel_for(0, n, kRowGrain, row_block);
  }
  return out;
}

Matrix Matrix::power_sum(const Matrix& w, std::size_t from, std::size_t to) {
  CR_EXPECTS(w.is_square(), "power_sum requires a square matrix");
  CR_EXPECTS(from >= 1 && from <= to, "power_sum requires 1 <= from <= to");
  Matrix current = w;  // w^1
  for (std::size_t p = 2; p <= from; ++p) {
    current = multiply(current, w);
  }
  Matrix acc = current;  // w^from
  for (std::size_t p = from + 1; p <= to; ++p) {
    current = multiply(current, w);
    acc += current;
  }
  return acc;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  CR_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_,
             "matrix shapes must match for max_abs_diff");
  // max is an exact (rounding-free) reduction, so the chunked parallel
  // combine matches the serial scan bit for bit.
  return parallel_reduce(
      std::size_t{0}, a.data_.size(), kElementGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double worst = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
        }
        return worst;
      },
      [](double acc, double part) { return std::max(acc, part); });
}

}  // namespace crowdrank
