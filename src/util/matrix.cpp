#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace crowdrank {

namespace {

/// Rows handed to one pool task at a time. Fixed (thread-count independent)
/// so chunk boundaries never shift; each row is produced by exactly one
/// task either way, so this only affects load balance.
constexpr std::size_t kRowGrain = 16;

/// Elements per chunk for the flat element-wise kernels.
constexpr std::size_t kElementGrain = 1 << 14;

/// Below this many multiply-adds the pool dispatch overhead is not worth
/// paying; run the plain serial loop.
constexpr std::size_t kSerialFlopLimit = 1 << 18;

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill, arena::current()) {}

Matrix Matrix::zero(std::size_t n) { return Matrix(n, n, 0.0); }

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  CR_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  CR_DEBUG_EXPECTS(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  CR_DEBUG_EXPECTS(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CR_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_,
             "matrix shapes must match for +=");
  parallel_for(0, data_.size(), kElementGrain,
               [&](std::size_t b, std::size_t e) {
                 simd::add(data_.data() + b, other.data_.data() + b, e - b);
               });
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  parallel_for(0, data_.size(), kElementGrain,
               [&](std::size_t b, std::size_t e) {
                 simd::scale(data_.data() + b, scalar, e - b);
               });
  return *this;
}

namespace {

/// Block edge for the product's i/k loops: a 64-row rhs block is
/// 64 * cols * 8 bytes (512 KiB at n = 1000), which stays resident in a
/// megabyte-class L2 while all 64 rows of the output block sweep over it.
constexpr std::size_t kTile = 64;

}  // namespace

/// Shared kernel behind multiply() / multiply_add_scaled(): the product
/// plus an optional fused `scale * addend` epilogue per output row.
///
/// Structure: rows are block-distributed across the pool; inside a task,
/// i and k run in kTile blocks (rhs block reuse in L2), and each (row,
/// k-block) pair is one simd::gemm_accum call: the strip-blocked kernel
/// holds register accumulators across the block's whole k loop instead of
/// re-loading the output row per term. For every output element the k
/// terms still accumulate one `+=` at a time in ascending k order (zero
/// lhs entries skipped) — blocking only batches the loads — so the result
/// is bitwise-identical to the one-term-per-sweep kernel
/// (bench/perf_pipeline asserts this every run), and the epilogue lands
/// after all k terms, matching the separate-pass formulation. Each row is
/// produced by exactly one task.
Matrix Matrix::multiply_impl(const Matrix& lhs, const Matrix& rhs,
                             double scale, const Matrix* addend) {
  CR_EXPECTS(lhs.cols_ == rhs.rows_, "inner dimensions must match");
  const std::size_t n = lhs.rows_;
  const std::size_t k_dim = lhs.cols_;
  const std::size_t m = rhs.cols_;
  CR_EXPECTS(addend == nullptr ||
                 (addend->rows_ == n && addend->cols_ == m),
             "addend must be shaped like the product");
  // Dense-kernel accounting for the tracing layer: one relaxed-atomic load
  // when tracing is off, two sharded counter adds when on. The flop figure
  // is the dense upper bound (the kernel skips zero lhs entries).
  if (metrics::Counter* mults = trace::counter("matrix.multiplies")) {
    mults->add(1);
    trace::counter("matrix.flops")
        ->add(static_cast<std::uint64_t>(2) * n * k_dim * m);
  }
  Matrix out(n, m, 0.0);
  const auto row_block = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t ii = r0; ii < r1; ii += kTile) {
      const std::size_t i_end = std::min(ii + kTile, r1);
      for (std::size_t kk = 0; kk < k_dim; kk += kTile) {
        const std::size_t k_end = std::min(kk + kTile, k_dim);
        simd::gemm_accum(out.data_.data() + ii * m, m, i_end - ii,
                         lhs.data_.data() + ii * k_dim + kk, k_dim,
                         rhs.data_.data() + kk * m, k_end - kk, m, m);
      }
    }
    if (addend != nullptr) {
      // Fused epilogue: the rows this task just produced are still hot.
      for (std::size_t i = r0; i < r1; ++i) {
        simd::axpy(out.data_.data() + i * m, addend->data_.data() + i * m,
                   scale, m);
      }
    }
  };
  if (n * k_dim * m < kSerialFlopLimit) {
    row_block(0, n);
  } else {
    parallel_for(0, n, kRowGrain, row_block);
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& lhs, const Matrix& rhs) {
  return multiply_impl(lhs, rhs, 0.0, nullptr);
}

Matrix Matrix::multiply_add_scaled(const Matrix& lhs, const Matrix& rhs,
                                   double scale, const Matrix& addend) {
  return multiply_impl(lhs, rhs, scale, &addend);
}

Matrix Matrix::power_sum(const Matrix& w, std::size_t from, std::size_t to) {
  CR_EXPECTS(w.is_square(), "power_sum requires a square matrix");
  CR_EXPECTS(from >= 1 && from <= to, "power_sum requires 1 <= from <= to");
  Matrix current = w;  // w^1
  for (std::size_t p = 2; p <= from; ++p) {
    current = multiply(current, w);
  }
  Matrix acc = current;  // w^from
  for (std::size_t p = from + 1; p <= to; ++p) {
    current = multiply(current, w);
    acc += current;
  }
  return acc;
}

double Matrix::max_value() const {
  // max is an exact (rounding-free) reduction, so the chunked parallel
  // combine matches a serial scan bit for bit.
  return parallel_reduce(
      std::size_t{0}, data_.size(), kElementGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        return simd::max0(data_.data() + lo, hi - lo);
      },
      [](double acc, double part) { return std::max(acc, part); });
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  CR_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_,
             "matrix shapes must match for max_abs_diff");
  // max is an exact (rounding-free) reduction, so the chunked parallel
  // combine matches the serial scan bit for bit.
  return parallel_reduce(
      std::size_t{0}, a.data_.size(), kElementGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        return simd::max_abs_diff(a.data_.data() + lo, b.data_.data() + lo,
                                  hi - lo);
      },
      [](double acc, double part) { return std::max(acc, part); });
}

}  // namespace crowdrank
