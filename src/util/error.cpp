#include "util/error.hpp"

#include <sstream>

namespace crowdrank::detail {

void raise_contract_violation(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& message) {
  std::ostringstream oss;
  oss << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw Error(oss.str());
}

}  // namespace crowdrank::detail
