// Metrics registry: named counters, gauges, histograms, and series.
//
// Instrumentation primitives for the tracing layer (util/trace.hpp). The
// write paths are designed to be safe inside `parallel_for` lanes and
// near-free when sampled:
//  * Counter / Histogram updates go to a cache-line-padded per-thread
//    shard (relaxed atomics, no locks); readers merge the shards on flush.
//    Concurrent adds never lose increments and never serialize writers.
//  * Gauge is a single relaxed atomic slot (last writer wins).
//  * Series is an append-only ordered sequence of (timestamp, x, y) points
//    guarded by a mutex — it is meant for coarse per-iteration convergence
//    signals pushed by the coordinating thread, not for per-element use.
//
// Nothing here touches RNG state or the data being computed, so
// instrumented code produces bitwise-identical results with metrics on or
// off (tests/core/test_determinism.cpp pins this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank::metrics {

/// Small dense id for the calling thread: 0 for the first thread that asks,
/// 1 for the next, and so on for the life of the process. Used to pick
/// metric shards and as the exported trace `tid`.
std::uint32_t thread_ordinal();

/// Shard count for the per-thread storage. Thread ordinals are folded
/// modulo this, so two threads only ever share a shard (correct, slightly
/// contended) when more than kShardCount threads write one metric.
inline constexpr std::size_t kShardCount = 32;

namespace detail {
/// One cache line per shard so concurrent writers never false-share.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

inline std::size_t shard_index() {
  return static_cast<std::size_t>(thread_ordinal()) % kShardCount;
}
}  // namespace detail

/// Monotonic accumulator, merged across shards on read.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    shards_[detail::shard_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over all shards. Safe to call concurrently with writers; the
  /// result is a consistent lower bound of the eventual total.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::CounterShard, kShardCount> shards_;
};

/// Last-writer-wins double slot.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed histogram of non-negative samples. Bucket b
/// covers (2^(b-1), 2^b] (bucket 0 covers [0, 1]); observations are
/// sharded like Counter, min/max/sum kept per shard with CAS loops.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 40;

  void observe(double v) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::array<std::uint64_t, kBucketCount> buckets{};

    /// Quantile estimate from the bucket counts (q in [0, 1]): locates
    /// the bucket holding the q-th observation and interpolates linearly
    /// inside it, clamped to the observed [min, max]. This is the one
    /// percentile formula shared by the benches, the telemetry snapshot
    /// exporter, and `crowdrank top`, so every surface reports latency
    /// identically. Returns 0 when the histogram is empty.
    double quantile(double q) const noexcept;
  };
  /// Readable at any time without resetting: observation continues
  /// concurrently and later snapshots only grow.
  Snapshot snapshot() const noexcept;

  /// Upper bound of bucket b (inclusive): 2^b for b >= 1, 1.0 for b = 0.
  static double bucket_upper_bound(std::size_t b);

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    // min/max start at the identity of their CAS loops; they are only read
    // when count > 0, by which time at least one observe() has landed.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Shard, kShardCount> shards_;
};

/// Ordered (timestamp, x, y) sequence for convergence traces: x is the
/// caller's step axis (iteration, power, annealing step), y the measured
/// value, t_us the wall-clock offset supplied by the sink so the points
/// can also render as chrome counter tracks.
class Series {
 public:
  struct Point {
    double t_us = 0.0;
    double x = 0.0;
    double y = 0.0;
  };

  void push(double t_us, double x, double y);
  std::vector<Point> points() const;
  std::size_t size() const;

 private:
  mutable Mutex mutex_;
  std::vector<Point> points_ CR_GUARDED_BY(mutex_);
};

/// Name -> metric registry with stable addresses: handles returned by the
/// lookup calls stay valid for the registry's lifetime, so hot code can
/// resolve a handle once and update it lock-free afterwards.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Series& series(const std::string& name);

  /// Snapshot views in name order (deterministic export).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms() const;
  std::vector<std::pair<std::string, std::vector<Series::Point>>> all_series()
      const;

 private:
  mutable Mutex mutex_;
  // The maps (name -> slot) are guarded; the metric objects the slots own
  // are not — they are internally synchronized (sharded atomics / their
  // own mutex) and hot paths hold resolved references across calls, which
  // is exactly why the unique_ptrs pin their addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CR_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Series>> series_
      CR_GUARDED_BY(mutex_);
};

}  // namespace crowdrank::metrics
