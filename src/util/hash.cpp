#include "util/hash.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace crowdrank {

namespace {

constexpr std::uint64_t kC1 = 0x87c37b91114253d5ULL;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937fULL;

std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace

std::string HashDigest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const std::uint8_t byte = static_cast<std::uint8_t>(word >> shift);
    out[2 * static_cast<std::size_t>(i)] = kDigits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = kDigits[byte & 0xf];
  }
  return out;
}

StableHash::StableHash(std::uint64_t seed) : h1_(seed), h2_(seed) {}

void StableHash::mix_block(std::uint64_t k1, std::uint64_t k2) {
  k1 *= kC1;
  k1 = std::rotl(k1, 31);
  k1 *= kC2;
  h1_ ^= k1;
  h1_ = std::rotl(h1_, 27);
  h1_ += h2_;
  h1_ = h1_ * 5 + 0x52dce729;

  k2 *= kC2;
  k2 = std::rotl(k2, 33);
  k2 *= kC1;
  h2_ ^= k2;
  h2_ = std::rotl(h2_, 31);
  h2_ += h1_;
  h2_ = h2_ * 5 + 0x38495ab5;
}

void StableHash::add_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_ += size;
  while (size > 0) {
    const std::size_t take = std::min(size, sizeof(tail_) - tail_size_);
    std::memcpy(tail_ + tail_size_, p, take);
    tail_size_ += take;
    p += take;
    size -= take;
    if (tail_size_ == sizeof(tail_)) {
      mix_block(load_le64(tail_), load_le64(tail_ + 8));
      tail_size_ = 0;
    }
  }
}

void StableHash::add_u8(std::uint8_t value) { add_bytes(&value, 1); }

void StableHash::add_u32(std::uint32_t value) {
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  add_bytes(bytes, sizeof(bytes));
}

void StableHash::add_u64(std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  add_bytes(bytes, sizeof(bytes));
}

void StableHash::add_double(double value) {
  add_u64(std::bit_cast<std::uint64_t>(value));
}

void StableHash::add_string(std::string_view value) {
  add_u64(value.size());
  add_bytes(value.data(), value.size());
}

HashDigest StableHash::digest() const {
  std::uint64_t h1 = h1_;
  std::uint64_t h2 = h2_;

  // Tail: the buffered 0..15 bytes, zero-padded, mixed without the body
  // rotation (MurmurHash3's tail schedule, unrolled via the padded load).
  if (tail_size_ > 0) {
    std::uint8_t padded[16] = {};
    std::memcpy(padded, tail_, tail_size_);
    std::uint64_t k1 = load_le64(padded);
    std::uint64_t k2 = load_le64(padded + 8);
    k2 *= kC2;
    k2 = std::rotl(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
    k1 *= kC1;
    k1 = std::rotl(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
  }

  h1 ^= total_;
  h2 ^= total_;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

}  // namespace crowdrank
