// Clang Thread Safety Analysis (TSA) annotation macros.
//
// These compile the locking discipline into the type system: a member
// declared CR_GUARDED_BY(mu) cannot be read or written unless the
// capability `mu` is statically held, a function declared CR_REQUIRES(mu)
// cannot be called without it, and the `thread-safety` CMake preset
// (-Wthread-safety -Werror=thread-safety-analysis, clang only) turns any
// violation into a compile error. See DESIGN.md "Concurrency contracts &
// layering" for the per-module lock map and how to annotate new state.
//
// The macro set mirrors the vocabulary of the official mutex.h from the
// clang documentation (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
// with a CR_ prefix. Off clang — GCC builds, MSVC, anything without the
// attribute — every macro expands to nothing, so the annotations are pure
// documentation there and the tier-1 GCC build is unaffected.
//
// Known limits, and what this codebase does about them:
//  * TSA is intra-procedural and cannot model lock-free protocols. The
//    flight-recorder seqlock (src/obs/flight_recorder.hpp) stays on raw
//    atomics with explicit memory_order arguments and a documented
//    protocol comment; its runtime witness is the torn-read test.
//  * Constructors/destructors are not analyzed, and conditional or
//    address-ordered double locking (PhaseTimer::operator=) cannot be
//    expressed — such functions carry CR_NO_THREAD_SAFETY_ANALYSIS with a
//    comment explaining why the discipline holds anyway.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define CR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CR_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a class as a capability (e.g. CR_CAPABILITY("mutex")). The string
/// names the capability kind in diagnostics.
#define CR_CAPABILITY(x) CR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define CR_SCOPED_CAPABILITY CR_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define CR_GUARDED_BY(x) CR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define CR_PT_GUARDED_BY(x) CR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares lock-acquisition ordering between capabilities.
#define CR_ACQUIRED_BEFORE(...) \
  CR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CR_ACQUIRED_AFTER(...) \
  CR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function precondition: the caller must hold the capability (still held
/// on return).
#define CR_REQUIRES(...) \
  CR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CR_REQUIRES_SHARED(...) \
  CR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (not held on entry, held on return).
#define CR_ACQUIRE(...) CR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CR_ACQUIRE_SHARED(...) \
  CR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not held on return).
#define CR_RELEASE(...) CR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CR_RELEASE_SHARED(...) \
  CR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return
/// value meaning "acquired" (e.g. CR_TRY_ACQUIRE(true)).
#define CR_TRY_ACQUIRE(...) \
  CR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// documentation; catches re-entrant locking at compile time).
#define CR_EXCLUDES(...) CR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring).
#define CR_ASSERT_CAPABILITY(x) CR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define CR_RETURN_CAPABILITY(x) CR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use in src/ must
/// carry a comment explaining why the locking discipline holds anyway.
#define CR_NO_THREAD_SAFETY_ANALYSIS \
  CR_THREAD_ANNOTATION_(no_thread_safety_analysis)
