// Dense row-major square-friendly matrix used by preference propagation.
//
// Step 3 of the inference pipeline computes W* = sum_{k=2..L} W^k over the
// n x n smoothed preference matrix; at n = 1000 this is the hot loop of the
// whole system, so multiply() is cache-blocked and register-grouped: i and
// k run in 64-wide blocks (one rhs block stays resident in L2 while the
// whole output block sweeps it) and each pass over the streamed output row
// applies up to four nonzero lhs terms while the row value sits in a
// register, instead of a load/store round-trip per term. For every output
// element the k terms still accumulate one += at a time in ascending
// order — exactly the order of the one-term-per-sweep loop — so the
// optimization changes no bits (bench/perf_pipeline's matmul_naive vs
// matmul_blocked rows track the win). multiply(), multiply_add_scaled(),
// operator+=, operator*= and max_abs_diff()/max_value() run on the
// util/parallel thread pool over disjoint row/element blocks: every output
// element is produced by exactly one task with the same per-element
// arithmetic order as the serial loop, so results are bitwise-identical at
// any thread count. The inner j sweeps (axpy4/axpy/add/scale/max) dispatch
// through util/simd, whose AVX2 paths vectorize across output lanes with
// the identical per-element op order — same bits on every backend.
// Storage is a std::pmr::vector drawing from the *thread-local* resource
// `arena::current()` (util/arena.hpp): under a service executor's
// arena::Scope, per-job matrices become pointer bumps into a reusable
// region; everywhere else the default new/delete resource applies and
// nothing changes. Construction and copy-construction capture the calling
// thread's resource explicitly (the pmr default of "copies use the default
// resource" would silently punch through the arena); moves carry their
// source's resource with the storage, and assignments keep the
// destination's resource (cross-resource assigns copy elements, never
// alias another arena's memory).
#pragma once

#include <cstddef>
#include <memory_resource>
#include <span>
#include <vector>

#include "util/arena.hpp"
#include "util/error.hpp"

namespace crowdrank {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : data_(arena::current()) {}
  Matrix(const Matrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        data_(other.data_, arena::current()) {}
  Matrix(Matrix&& other) noexcept = default;
  Matrix& operator=(const Matrix& other) = default;
  Matrix& operator=(Matrix&& other) = default;
  ~Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Square n x n zero matrix.
  static Matrix zero(std::size_t n);

  /// Square n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Checked element access (throws on out-of-range). Not for inner loops;
  /// hot paths use operator() / row() which are debug-checked only.
  double at(std::size_t r, std::size_t c) const;

  /// View of row r (bounds-checked in debug builds only; see
  /// CR_DEBUG_EXPECTS in util/error.hpp).
  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Raw storage (row-major).
  std::span<const double> data() const { return data_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Cache-tiled matrix product; requires lhs.cols() == rhs.rows().
  static Matrix multiply(const Matrix& lhs, const Matrix& rhs);

  /// Fused `lhs * rhs + scale * addend` in one parallel pass: each row
  /// task finishes its product rows and immediately applies the scaled
  /// addend while the rows are cache-hot. Bitwise-identical to multiply()
  /// followed by a separate scaled add (per element: all k terms first,
  /// then + scale * addend). Requires addend shaped like the product.
  /// Used by the spectral doubling's carry step (core/propagation.cpp).
  static Matrix multiply_add_scaled(const Matrix& lhs, const Matrix& rhs,
                                    double scale, const Matrix& addend);

  /// Sum of powers: W^from + W^{from+1} + ... + W^to (from >= 1).
  /// Used by bounded-length walk propagation.
  static Matrix power_sum(const Matrix& w, std::size_t from, std::size_t to);

  /// Max |a - b| over all entries; requires equal shapes.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Maximum entry, floored at 0.0 (the parallel exact max-reduce starts
  /// from 0.0, matching the historical renormalize-scan semantics on the
  /// non-negative matrices propagation works with). The spectral-walk
  /// w_max/renormalize scans run through this instead of a serial pass
  /// over data().
  double max_value() const;

  bool operator==(const Matrix& other) const = default;

 private:
  /// Shared tiled kernel: product plus optional fused scaled-add epilogue
  /// (addend == nullptr skips it).
  static Matrix multiply_impl(const Matrix& lhs, const Matrix& rhs,
                              double scale, const Matrix* addend);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::pmr::vector<double> data_;
};

}  // namespace crowdrank
