// Dense row-major square-friendly matrix used by preference propagation.
//
// Step 3 of the inference pipeline computes W* = sum_{k=2..L} W^k over the
// n x n smoothed preference matrix; at n = 1000 this is the hot loop of the
// whole system, so multiply() is cache-blocked (i-k-j loop order with a
// hoisted A(i,k)), which is within a small factor of a tuned BLAS for the
// sizes we need without adding a dependency. multiply(), operator+= and
// max_abs_diff() run on the util/parallel thread pool over disjoint
// row/element blocks: every output element is produced by exactly one task
// with the same per-element arithmetic order as the serial loop, so results
// are bitwise-identical at any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace crowdrank {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Square n x n zero matrix.
  static Matrix zero(std::size_t n);

  /// Square n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Checked element access (throws on out-of-range). Not for inner loops;
  /// hot paths use operator() / row() which are debug-checked only.
  double at(std::size_t r, std::size_t c) const;

  /// View of row r (bounds-checked in debug builds only; see
  /// CR_DEBUG_EXPECTS in util/error.hpp).
  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Raw storage (row-major).
  std::span<const double> data() const { return data_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }

  /// Cache-blocked matrix product; requires lhs.cols() == rhs.rows().
  static Matrix multiply(const Matrix& lhs, const Matrix& rhs);

  /// Sum of powers: W^from + W^{from+1} + ... + W^to (from >= 1).
  /// Used by bounded-length walk propagation.
  static Matrix power_sum(const Matrix& w, std::size_t from, std::size_t to);

  /// Max |a - b| over all entries; requires equal shapes.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace crowdrank
