// Wall-clock timing helpers used by the pipeline's per-step breakdown
// (paper Fig. 4) and the bench harnesses.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace crowdrank {

/// Monotonic stopwatch. start() on construction; elapsed_*() reads without
/// stopping, restart() resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations, preserving first-seen order. The
/// inference pipeline uses this to report Step 1-4 timings like Fig. 4.
///
/// add() and the readers are mutex-guarded: phase scopes can close on
/// pooled code paths (e.g. trace::StepScope around a region that was
/// dispatched from a worker lane), so concurrent add() calls must not
/// corrupt the map. Reads taken while another thread is still adding see
/// a consistent snapshot of whatever has been recorded so far.
class PhaseTimer {
 public:
  PhaseTimer() = default;
  PhaseTimer(const PhaseTimer& other);
  PhaseTimer& operator=(const PhaseTimer& other);

  /// Adds `seconds` to the named phase (creating it on first use).
  void add(const std::string& phase, double seconds);

  /// Total seconds recorded for the phase (0 if never recorded).
  double seconds(const std::string& phase) const;

  /// Sum over all phases.
  double total_seconds() const;

  /// Phases in first-recorded order (copy: safe against concurrent add).
  std::vector<std::string> phases() const;

  void clear();

 private:
  mutable Mutex mutex_;
  std::unordered_map<std::string, double> totals_ CR_GUARDED_BY(mutex_);
  std::vector<std::string> order_ CR_GUARDED_BY(mutex_);
};

/// RAII guard: adds the scope's duration to `timer[phase]` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { timer_.add(phase_, watch_.elapsed_seconds()); }

 private:
  PhaseTimer& timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace crowdrank
