// Structured tracing: RAII spans forming a per-run span tree, a metrics
// registry (util/metrics.hpp), and two machine-readable exporters.
//
// Model
//  * A `TraceSink` collects everything for one run: spans (name, wall
//    time, thread, parent, key=value attributes) plus the counters /
//    gauges / histograms / series of its `metrics::Registry`.
//  * Instrumented code never holds a sink directly; it consults the
//    process-wide *active* sink (`trace::sink()`, a relaxed atomic
//    pointer, null by default). `ScopedSink` installs one for a scope;
//    `InferenceEngine` installs `InferenceConfig::trace` for the duration
//    of `infer()`.
//  * With no active sink every primitive is a no-op that performs **no
//    allocation and no synchronization** beyond one relaxed atomic load —
//    tests/util/test_trace.cpp pins the zero-allocation property, and
//    bench/perf_pipeline is the <2% overhead regression anchor.
//  * Tracing never perturbs results: instrumentation only reads the data
//    being computed and never touches RNG state, so traced and untraced
//    runs are bitwise-identical (tests/core/test_determinism.cpp).
//
// Exporters
//  * `write_chrome_trace()` — Chrome trace-event JSON (open in
//    chrome://tracing or https://ui.perfetto.dev): spans as complete "X"
//    events, series as counter "C" tracks.
//  * `RunReport` — a flat report JSON: build info stamp, config echo
//    notes, and per-run spans/phases/counters/gauges/histograms/series.
//    The CLI's `--metrics` and bench/perf_pipeline both emit this format.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace crowdrank::trace {

/// Span attribute value. Doubles keep full precision in the JSON output;
/// bools/ints stay typed rather than stringified.
using AttrValue = std::variant<std::int64_t, double, bool, std::string>;

/// One finished (or still-open) span as stored by the sink.
struct SpanRecord {
  std::string name;
  double start_us = 0.0;  ///< offset from the sink's epoch
  double dur_us = 0.0;    ///< 0 while the span is still open
  std::uint32_t tid = 0;  ///< metrics::thread_ordinal() of the opener
  /// Index of the parent span in the sink's span list, or kNoParent for a
  /// root. Parentage follows the opener thread's span stack.
  std::size_t parent = kNoParent;
  std::vector<std::pair<std::string, AttrValue>> attrs;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

/// Collects one run's spans and metrics. Thread-safe; create on the stack,
/// install with `ScopedSink` (or `InferenceConfig::trace`), export after
/// the run.
class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  /// Microseconds since this sink was constructed (its trace epoch).
  double now_us() const;

  /// Snapshot of all spans recorded so far, in open order.
  std::vector<SpanRecord> spans() const;

  /// Chrome trace-event JSON (complete events + counter tracks).
  void write_chrome_trace(std::ostream& os) const;

  /// Appends `key = value` to every span recorded under `root` (walking
  /// parent chains; `root` itself is not annotated). Lets a scheduler
  /// stamp a whole subtree with its work-item identity after the fact —
  /// the service tags each job's spans with the job id and outcome so
  /// Chrome traces stay per-job attributable when executors interleave.
  void annotate_descendants(std::size_t root, const char* key,
                            AttrValue value);

  // -- span bookkeeping (used by Span; not for direct calls) --
  std::size_t open_span(const char* name);
  void close_span(std::size_t index);
  void span_attr(std::size_t index, const char* key, AttrValue value);

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<SpanRecord> spans_ CR_GUARDED_BY(mutex_);
  // Internally synchronized (its own mutex + sharded atomics); no guard.
  metrics::Registry metrics_;
};

/// The process-wide active sink (null by default). Relaxed atomic load:
/// this is the only cost instrumentation pays when tracing is off.
TraceSink* sink() noexcept;

/// Installs `s` as the active sink (pass nullptr to disable). Prefer
/// ScopedSink, which restores the previous sink on scope exit.
void set_sink(TraceSink* s) noexcept;

/// RAII installer for the active sink.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* s);
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;
  ~ScopedSink();

 private:
  TraceSink* previous_;
};

/// RAII span. No-op (no allocation, no locks) when no sink is active at
/// construction. Spans nest per thread: a span opened while another span
/// of the same thread is open becomes its child.
class Span {
 public:
  /// `name` must outlive the constructor call (string literals in
  /// practice); it is copied into the sink only when tracing is active.
  explicit Span(const char* name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// True when this span is being recorded.
  bool active() const noexcept { return sink_ != nullptr; }

  void set_attr(const char* key, std::int64_t value);
  void set_attr(const char* key, std::uint64_t value);
  void set_attr(const char* key, double value);
  void set_attr(const char* key, bool value);
  void set_attr(const char* key, const char* value);
  void set_attr(const char* key, const std::string& value);

 private:
  TraceSink* sink_ = nullptr;
  std::size_t index_ = 0;
};

/// Span that also feeds a PhaseTimer on destruction, preserving the
/// pipeline's historical Fig.-4 per-step totals (same phase names, same
/// Stopwatch measurement) while adding the span to the trace.
class StepScope {
 public:
  StepScope(PhaseTimer& timer, const char* phase)
      : span_(phase), timer_(timer), phase_(phase) {}
  StepScope(const StepScope&) = delete;
  StepScope& operator=(const StepScope&) = delete;
  ~StepScope() { timer_.add(phase_, watch_.elapsed_seconds()); }

  Span& span() { return span_; }

 private:
  Span span_;  // declared first: closes (member dtor) after the timer feed
  PhaseTimer& timer_;
  const char* phase_;
  Stopwatch watch_;
};

/// Metric handles on the active sink, or nullptr when tracing is off.
/// Idiom: resolve once at function/stage entry, then guard updates with
/// `if (h) h->...`. The name-lookup cost (one mutex + map) is paid only
/// while tracing.
metrics::Counter* counter(const char* name);
metrics::Gauge* gauge(const char* name);
metrics::Histogram* histogram(const char* name);
metrics::Series* series(const char* name);

/// Pushes (now_us, x, y) onto the named series of the active sink; no-op
/// when tracing is off.
void push_series(metrics::Series* s, double x, double y);

// ---------------------------------------------------------------------
// RunReport: the flat machine-readable report exporter.
// ---------------------------------------------------------------------

/// JSON-ish scalar for config echo notes.
using NoteValue = std::variant<std::int64_t, double, bool, std::string>;

/// Builder for the run-report JSON. Stamped with build info (generated
/// version.hpp) at construction; `note()` echoes config scalars;
/// `add_run()` opens a labeled run section that can capture a TraceSink
/// (spans + metrics) and a PhaseTimer (per-stage totals).
class RunReport {
 public:
  class Run {
   public:
    explicit Run(std::string label) : label_(std::move(label)) {}

    void note(const std::string& key, NoteValue value);
    /// Snapshots the sink's spans, counters, gauges, histograms, series.
    void capture(const TraceSink& sink);
    /// Snapshots per-phase totals (milliseconds).
    void capture(const PhaseTimer& timer);

   private:
    friend class RunReport;
    std::string label_;
    std::vector<std::pair<std::string, NoteValue>> notes_;
    std::vector<std::pair<std::string, double>> phases_ms_;
    std::vector<SpanRecord> spans_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    std::vector<std::pair<std::string, double>> gauges_;
    std::vector<std::pair<std::string, metrics::Histogram::Snapshot>>
        histograms_;
    std::vector<std::pair<std::string, std::vector<metrics::Series::Point>>>
        series_;
  };

  explicit RunReport(std::string title);

  /// Top-level config echo (kept in insertion order).
  void note(const std::string& key, NoteValue value);

  /// Opens a new run section; the reference stays valid for the report's
  /// lifetime.
  Run& add_run(std::string label);

  void write(std::ostream& os) const;
  /// Writes to `path`; returns false (and leaves no partial file promise)
  /// on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::pair<std::string, NoteValue>> notes_;
  std::vector<std::unique_ptr<Run>> runs_;
};

}  // namespace crowdrank::trace
