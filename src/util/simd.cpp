// Backend dispatch + the portable scalar reference kernels.
//
// This TU is compiled with the project's base flags (plain x86-64, no
// AVX2, no FMA), so the scalar loops below are the rounding reference the
// AVX2 TU must reproduce bit for bit. Keep every loop a straight
// per-element op sequence: the compiler may auto-vectorize them with
// baseline SSE2, which preserves per-element order and rounding, but any
// manual restructuring here must be mirrored in kernels_avx2.cpp.
#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "util/logging.hpp"

namespace crowdrank::simd {

#ifndef CROWDRANK_NO_AVX2
// Implemented in kernels_avx2.cpp (the only TU built with -mavx2).
namespace avx2 {
void axpy(double* out, const double* x, double a, std::size_t n);
void axpy4(double* out, const double* r0, const double* r1, const double* r2,
           const double* r3, double a0, double a1, double a2, double a3,
           std::size_t n);
void gemm_accum(double* out, std::size_t out_stride, std::size_t rows,
                const double* a, std::size_t a_stride, const double* b,
                std::size_t k_len, std::size_t b_stride, std::size_t w);
void spmm_row_accum(double* out, const double* vals,
                    const std::uint32_t* idx, std::size_t nnz,
                    const double* b, std::size_t b_stride, std::size_t w);
void add(double* out, const double* x, std::size_t n);
void scale(double* x, double a, std::size_t n);
double max0(const double* x, std::size_t n);
double max_abs_diff(const double* a, const double* b, std::size_t n);
void neg_log_clamped(double* out, const double* w, std::size_t n,
                     double floor_log);
}  // namespace avx2
#endif

namespace {

bool cpu_has_avx2() {
#if defined(__GNUC__) && defined(__x86_64__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend default_backend() {
  const char* env = std::getenv("CROWDRANK_SIMD");
  const std::string mode = env == nullptr ? "auto" : env;
  if (mode == "scalar") {
    return Backend::Scalar;
  }
  if (mode != "auto" && mode != "avx2") {
    log_warn() << "CROWDRANK_SIMD=" << mode
               << " not recognized (want auto|avx2|scalar); using auto";
  }
  return avx2_supported() ? Backend::Avx2 : Backend::Scalar;
}

std::atomic<Backend>& backend_slot() {
  static std::atomic<Backend> slot{default_backend()};
  return slot;
}

inline bool use_avx2() {
#ifdef CROWDRANK_NO_AVX2
  return false;
#else
  return backend_slot().load(std::memory_order_relaxed) == Backend::Avx2;
#endif
}

}  // namespace

bool avx2_compiled() {
#ifdef CROWDRANK_NO_AVX2
  return false;
#else
  return true;
#endif
}

bool avx2_supported() { return avx2_compiled() && cpu_has_avx2(); }

Backend active_backend() {
  return backend_slot().load(std::memory_order_relaxed);
}

bool set_backend(Backend backend) {
  if (backend == Backend::Avx2 && !avx2_supported()) {
    return false;
  }
  backend_slot().store(backend, std::memory_order_relaxed);
  return true;
}

void reset_backend() {
  backend_slot().store(default_backend(), std::memory_order_relaxed);
}

const char* backend_name(Backend backend) {
  return backend == Backend::Avx2 ? "avx2" : "scalar";
}

// ---- scalar reference kernels ------------------------------------------

void axpy(double* out, const double* x, double a, std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::axpy(out, x, a, n);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    out[j] += a * x[j];
  }
}

void axpy4(double* out, const double* r0, const double* r1, const double* r2,
           const double* r3, double a0, double a1, double a2, double a3,
           std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::axpy4(out, r0, r1, r2, r3, a0, a1, a2, a3, n);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    double t = out[j];
    t += a0 * r0[j];
    t += a1 * r1[j];
    t += a2 * r2[j];
    t += a3 * r3[j];
    out[j] = t;
  }
}

void gemm_accum(double* out, std::size_t out_stride, std::size_t rows,
                const double* a, std::size_t a_stride, const double* b,
                std::size_t k_len, std::size_t b_stride, std::size_t w) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::gemm_accum(out, out_stride, rows, a, a_stride, b, k_len, b_stride,
                     w);
    return;
  }
#endif
  // Row-at-a-time, 8-wide strips with a local accumulator block the
  // compiler keeps in SSE2 registers across the k loop. Per output
  // element the op chain is ascending-k `t += a_rk * b_kj` regardless of
  // strip or row grouping, so the blocking is rounding-neutral; zero
  // terms are skipped like every other formulation of this kernel.
  for (std::size_t r = 0; r < rows; ++r) {
    double* out_row = out + r * out_stride;
    const double* a_row = a + r * a_stride;
    std::size_t j = 0;
    for (; j + 8 <= w; j += 8) {
      double t[8];
      for (std::size_t u = 0; u < 8; ++u) {
        t[u] = out_row[j + u];
      }
      const double* row = b + j;
      for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
        const double ak = a_row[k];
        if (ak == 0.0) {
          continue;
        }
        for (std::size_t u = 0; u < 8; ++u) {
          t[u] += ak * row[u];
        }
      }
      for (std::size_t u = 0; u < 8; ++u) {
        out_row[j + u] = t[u];
      }
    }
    for (; j < w; ++j) {
      double t = out_row[j];
      const double* row = b + j;
      for (std::size_t k = 0; k < k_len; ++k, row += b_stride) {
        const double ak = a_row[k];
        if (ak == 0.0) {
          continue;
        }
        t += ak * row[0];
      }
      out_row[j] = t;
    }
  }
}

void spmm_row_accum(double* out, const double* vals,
                    const std::uint32_t* idx, std::size_t nnz,
                    const double* b, std::size_t b_stride, std::size_t w) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::spmm_row_accum(out, vals, idx, nnz, b, b_stride, w);
    return;
  }
#endif
  // 8-wide strips with a local accumulator block the compiler keeps in
  // SSE2 registers across the entry loop; per output element the chain is
  // ascending-e `t += vals[e] * b_row[j]`, independent of the strip
  // grouping.
  std::size_t j = 0;
  for (; j + 8 <= w; j += 8) {
    double t[8];
    for (std::size_t u = 0; u < 8; ++u) {
      t[u] = out[j + u];
    }
    for (std::size_t e = 0; e < nnz; ++e) {
      const double a = vals[e];
      const double* row = b + static_cast<std::size_t>(idx[e]) * b_stride + j;
      for (std::size_t u = 0; u < 8; ++u) {
        t[u] += a * row[u];
      }
    }
    for (std::size_t u = 0; u < 8; ++u) {
      out[j + u] = t[u];
    }
  }
  for (; j < w; ++j) {
    double t = out[j];
    for (std::size_t e = 0; e < nnz; ++e) {
      t += vals[e] * b[static_cast<std::size_t>(idx[e]) * b_stride + j];
    }
    out[j] = t;
  }
}

void add(double* out, const double* x, std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::add(out, x, n);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    out[j] += x[j];
  }
}

void scale(double* x, double a, std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::scale(x, a, n);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    x[j] *= a;
  }
}

double max0(const double* x, std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    return avx2::max0(x, n);
  }
#endif
  double m = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    m = m < x[j] ? x[j] : m;
  }
  return m;
}

double max_abs_diff(const double* a, const double* b, std::size_t n) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    return avx2::max_abs_diff(a, b, n);
  }
#endif
  double m = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = std::fabs(a[j] - b[j]);
    m = m < d ? d : m;
  }
  return m;
}

double path_cost_sum(const double* costs, const std::size_t* path,
                     std::size_t len, std::size_t stride) {
  // Order-sensitive reduction: the per-step accumulation order is part of
  // the SAPS bitwise contract, so there is deliberately no vector variant.
  double total = 0.0;
  for (std::size_t s = 0; s + 1 < len; ++s) {
    total += costs[path[s] * stride + path[s + 1]];
  }
  return total;
}

double log_pinned(double x) {
  // fdlibm e_log reduction, branch-minimized: one unconditional op
  // sequence after normalization so the AVX2 lanes can mirror it exactly.
  using namespace detail;
  std::int64_t k = 0;
  if (x < std::numeric_limits<double>::min()) {  // subnormal pre-scale
    x *= kTwo54;
    k -= kTwo54Shift;
  }
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  k += static_cast<std::int64_t>((bits >> 52) & 0x7ff) - 1023;
  // Steer the mantissa into [sqrt(2)/2, sqrt(2)): when the top mantissa
  // bits put m above sqrt(2), halve it and bump k.
  const std::uint64_t hx = (bits >> 32) & 0xfffff;
  const std::uint64_t i = (hx + 0x95f64) & 0x100000;
  const std::uint64_t mbits = (bits & 0x000fffffffffffffULL) |
                              ((i ^ 0x3ff00000ULL) << 32);
  k += static_cast<std::int64_t>(i >> 20);
  const double m = std::bit_cast<double>(mbits);

  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * (f * f);
  const double dk = static_cast<double>(k);
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

void neg_log_clamped(double* out, const double* w, std::size_t n,
                     double floor_log) {
#ifndef CROWDRANK_NO_AVX2
  if (use_avx2()) {
    avx2::neg_log_clamped(out, w, n, floor_log);
    return;
  }
#endif
  for (std::size_t j = 0; j < n; ++j) {
    const double x = w[j];
    double lg;
    if (x <= 0.0) {
      lg = floor_log;
    } else if (!std::isfinite(x)) {
      lg = x;  // +inf -> +inf, NaN -> NaN (legacy safe_log behavior)
    } else {
      const double core = log_pinned(x);
      lg = core < floor_log ? floor_log : core;
    }
    out[j] = -lg;
  }
}

}  // namespace crowdrank::simd
