#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace crowdrank::metrics {

std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {

/// Relaxed CAS add for atomic<double> (fetch_add on floating atomics is
/// C++20 but spotty across standard libraries; the loop is equivalent).
void atomic_add(std::atomic<double>& slot, double delta) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t bucket_of(double v) noexcept {
  if (!(v > 1.0)) {  // also catches NaN and negatives -> bucket 0
    return 0;
  }
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  const auto b = static_cast<std::size_t>(exp > 0 ? exp : 0);
  return std::min(b, Histogram::kBucketCount - 1);
}

}  // namespace

void Histogram::observe(double v) noexcept {
  Shard& s = shards_[detail::shard_index()];
  s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(s.sum, v);
  atomic_min(s.min, v);
  atomic_max(s.max, v);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  bool any = false;
  for (const Shard& s : shards_) {
    const std::uint64_t c = s.count.load(std::memory_order_relaxed);
    if (c == 0) {
      continue;
    }
    const double lo = s.min.load(std::memory_order_relaxed);
    const double hi = s.max.load(std::memory_order_relaxed);
    out.count += c;
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.min = any ? std::min(out.min, lo) : lo;
    out.max = any ? std::max(out.max, hi) : hi;
    any = true;
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::bucket_upper_bound(std::size_t b) {
  return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then the bucket holding it.
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const std::uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside bucket b, whose nominal range is
      // (upper/2, upper] for b >= 1 and [0, 1] for b = 0.
      const double upper = bucket_upper_bound(b);
      const double lower = b == 0 ? 0.0 : upper * 0.5;
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[b]);
      const double estimate = lower + within * (upper - lower);
      return std::min(max, std::max(min, estimate));
    }
    cumulative = next;
  }
  return max;
}

void Series::push(double t_us, double x, double y) {
  MutexLock lock(mutex_);
  points_.push_back(Point{t_us, x, y});
}

std::vector<Series::Point> Series::points() const {
  MutexLock lock(mutex_);
  return points_;
}

std::size_t Series::size() const {
  MutexLock lock(mutex_);
  return points_.size();
}

namespace {

/// Shared lookup-or-create over the name-keyed maps. The caller locks the
/// registry mutex and passes the map with the lock held (passing the
/// guarded member by reference into an unannotated helper would otherwise
/// trip -Wthread-safety-reference).
template <typename Map>
auto& lookup(Map& map, const std::string& name) {
  auto& slot = map[name];
  if (!slot) {
    slot = std::make_unique<typename Map::mapped_type::element_type>();
  }
  return *slot;
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  return lookup(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  return lookup(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  return lookup(histograms_, name);
}

Series& Registry::series(const std::string& name) {
  MutexLock lock(mutex_);
  return lookup(series_, name);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters()
    const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::histograms() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, std::vector<Series::Point>>>
Registry::all_series() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::vector<Series::Point>>> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    out.emplace_back(name, s->points());
  }
  return out;
}

}  // namespace crowdrank::metrics
