// Aligned-text and CSV table emission for the bench harnesses.
//
// Every bench binary reproduces one table/figure from the paper; TableWriter
// lets them print the same rows both human-readably (aligned columns, like
// the paper's Table I) and machine-readably (CSV for re-plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace crowdrank {

/// Collects rows of string cells under a fixed header and renders them.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_percent(double fraction, int precision = 1);
  static std::string fmt_seconds(double seconds, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with space-padded columns and a header rule.
  void print_aligned(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing commas/quotes quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crowdrank
