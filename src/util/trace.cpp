#include "util/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string_view>

#include "util/build_info.hpp"

namespace crowdrank::trace {

namespace {

/// The process-wide active sink. Relaxed everywhere: installation happens
/// before the instrumented region starts (ScopedSink / engine setup), and
/// all sink internals are themselves synchronized.
std::atomic<TraceSink*> g_sink{nullptr};

/// Per-thread stack of open span indices, giving each thread's spans their
/// parent. Only meaningful for spans of the currently active sink; the
/// stack is naturally empty between runs because spans are RAII-scoped.
thread_local std::vector<std::size_t> t_span_stack;

}  // namespace

TraceSink* sink() noexcept { return g_sink.load(std::memory_order_relaxed); }

void set_sink(TraceSink* s) noexcept {
  g_sink.store(s, std::memory_order_relaxed);
}

ScopedSink::ScopedSink(TraceSink* s) : previous_(sink()) { set_sink(s); }

ScopedSink::~ScopedSink() { set_sink(previous_); }

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

double TraceSink::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<SpanRecord> TraceSink::spans() const {
  MutexLock lock(mutex_);
  return spans_;
}

std::size_t TraceSink::open_span(const char* name) {
  SpanRecord record;
  record.name = name;
  record.start_us = now_us();
  record.tid = metrics::thread_ordinal();
  if (!t_span_stack.empty()) {
    record.parent = t_span_stack.back();
  }
  MutexLock lock(mutex_);
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(record));
  t_span_stack.push_back(index);
  return index;
}

void TraceSink::close_span(std::size_t index) {
  const double end_us = now_us();
  MutexLock lock(mutex_);
  if (index < spans_.size()) {
    spans_[index].dur_us = end_us - spans_[index].start_us;
  }
  if (!t_span_stack.empty() && t_span_stack.back() == index) {
    t_span_stack.pop_back();
  }
}

void TraceSink::span_attr(std::size_t index, const char* key,
                          AttrValue value) {
  MutexLock lock(mutex_);
  if (index < spans_.size()) {
    spans_[index].attrs.emplace_back(key, std::move(value));
  }
}

void TraceSink::annotate_descendants(std::size_t root, const char* key,
                                     AttrValue value) {
  MutexLock lock(mutex_);
  // A parent always has a smaller index than its children (it opened
  // first), so only spans after `root` can descend from it, and a parent
  // chain can be walked downward until it passes `root`.
  for (std::size_t i = root + 1; i < spans_.size(); ++i) {
    std::size_t p = spans_[i].parent;
    while (p != SpanRecord::kNoParent && p > root) {
      p = spans_[p].parent;
    }
    if (p == root) {
      spans_[i].attrs.emplace_back(key, value);
    }
  }
}

Span::Span(const char* name) : sink_(trace::sink()) {
  if (sink_ != nullptr) {
    index_ = sink_->open_span(name);
  }
}

Span::~Span() {
  if (sink_ != nullptr) {
    sink_->close_span(index_);
  }
}

void Span::set_attr(const char* key, std::int64_t value) {
  if (sink_ != nullptr) sink_->span_attr(index_, key, value);
}
void Span::set_attr(const char* key, std::uint64_t value) {
  set_attr(key, static_cast<std::int64_t>(value));
}
void Span::set_attr(const char* key, double value) {
  if (sink_ != nullptr) sink_->span_attr(index_, key, value);
}
void Span::set_attr(const char* key, bool value) {
  if (sink_ != nullptr) sink_->span_attr(index_, key, value);
}
void Span::set_attr(const char* key, const char* value) {
  if (sink_ != nullptr) sink_->span_attr(index_, key, std::string(value));
}
void Span::set_attr(const char* key, const std::string& value) {
  if (sink_ != nullptr) sink_->span_attr(index_, key, value);
}

metrics::Counter* counter(const char* name) {
  TraceSink* s = sink();
  return s != nullptr ? &s->metrics().counter(name) : nullptr;
}

metrics::Gauge* gauge(const char* name) {
  TraceSink* s = sink();
  return s != nullptr ? &s->metrics().gauge(name) : nullptr;
}

metrics::Histogram* histogram(const char* name) {
  TraceSink* s = sink();
  return s != nullptr ? &s->metrics().histogram(name) : nullptr;
}

metrics::Series* series(const char* name) {
  TraceSink* s = sink();
  return s != nullptr ? &s->metrics().series(name) : nullptr;
}

void push_series(metrics::Series* s, double x, double y) {
  if (s == nullptr) {
    return;
  }
  TraceSink* active = sink();
  s->push(active != nullptr ? active->now_us() : 0.0, x, y);
}

// ---------------------------------------------------------------------
// JSON plumbing shared by both exporters.
// ---------------------------------------------------------------------

namespace {

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Shortest round-trippable decimal ("%.17g" made json-safe; non-finite
/// values have no JSON literal, so they serialize as null).
void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void json_value(std::ostream& os, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v)) {
    json_number(os, *d);
  } else if (const auto* b = std::get_if<bool>(&v)) {
    os << (*b ? "true" : "false");
  } else {
    json_string(os, std::get<std::string>(v));
  }
}

void json_span_attrs(
    std::ostream& os,
    const std::vector<std::pair<std::string, AttrValue>>& attrs) {
  os << '{';
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    if (a > 0) os << ',';
    json_string(os, attrs[a].first);
    os << ':';
    json_value(os, attrs[a].second);
  }
  os << '}';
}

}  // namespace

void TraceSink::write_chrome_trace(std::ostream& os) const {
  std::vector<SpanRecord> spans;
  {
    MutexLock lock(mutex_);
    spans = spans_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"crowdrank\"}}";
  for (const SpanRecord& s : spans) {
    os << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid << ",\"name\":";
    json_string(os, s.name);
    os << ",\"ts\":";
    json_number(os, s.start_us);
    os << ",\"dur\":";
    json_number(os, s.dur_us);
    os << ",\"args\":";
    json_span_attrs(os, s.attrs);
    os << '}';
  }
  // Series render as chrome counter tracks: one "C" event per point at the
  // wall time the point was pushed.
  for (const auto& [name, points] : metrics_.all_series()) {
    for (const metrics::Series::Point& p : points) {
      os << ",\n{\"ph\":\"C\",\"pid\":1,\"name\":";
      json_string(os, name);
      os << ",\"ts\":";
      json_number(os, p.t_us);
      os << ",\"args\":{\"value\":";
      json_number(os, p.y);
      os << "}}";
    }
  }
  os << "\n]}\n";
}

// ---------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------

RunReport::RunReport(std::string title) : title_(std::move(title)) {}

void RunReport::note(const std::string& key, NoteValue value) {
  notes_.emplace_back(key, std::move(value));
}

RunReport::Run& RunReport::add_run(std::string label) {
  runs_.push_back(std::make_unique<Run>(std::move(label)));
  return *runs_.back();
}

void RunReport::Run::note(const std::string& key, NoteValue value) {
  notes_.emplace_back(key, std::move(value));
}

void RunReport::Run::capture(const TraceSink& sink) {
  spans_ = sink.spans();
  const metrics::Registry& m = sink.metrics();
  counters_ = m.counters();
  gauges_ = m.gauges();
  histograms_ = m.histograms();
  series_ = m.all_series();
}

void RunReport::Run::capture(const PhaseTimer& timer) {
  phases_ms_.clear();
  for (const std::string& phase : timer.phases()) {
    phases_ms_.emplace_back(phase, timer.seconds(phase) * 1e3);
  }
}

namespace {

void write_notes(std::ostream& os, const char* indent,
                 const std::vector<std::pair<std::string, NoteValue>>& notes) {
  os << "{";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << indent << "  ";
    json_string(os, notes[i].first);
    os << ": ";
    json_value(os, notes[i].second);
  }
  if (!notes.empty()) os << "\n" << indent;
  os << "}";
}

}  // namespace

void RunReport::write(std::ostream& os) const {
  const BuildInfo build = build_info();
  os << "{\n  \"report\": ";
  json_string(os, title_);
  os << ",\n  \"build\": {\n"
     << "    \"version\": ";
  json_string(os, build.version);
  os << ",\n    \"git\": ";
  json_string(os, build.git_revision);
  os << ",\n    \"compiler\": ";
  json_string(os, build.compiler);
  os << ",\n    \"build_type\": ";
  json_string(os, build.build_type);
  os << ",\n    \"threads\": " << build.threads
     << ",\n    \"thread_source\": ";
  json_string(os, build.thread_source);
  os << "\n  },\n  \"notes\": ";
  write_notes(os, "  ", notes_);
  os << ",\n  \"runs\": [";
  for (std::size_t r = 0; r < runs_.size(); ++r) {
    const Run& run = *runs_[r];
    os << (r == 0 ? "\n" : ",\n") << "    {\n      \"label\": ";
    json_string(os, run.label_);
    os << ",\n      \"notes\": ";
    write_notes(os, "      ", run.notes_);

    os << ",\n      \"phases_ms\": {";
    for (std::size_t i = 0; i < run.phases_ms_.size(); ++i) {
      os << (i == 0 ? "" : ", ");
      json_string(os, run.phases_ms_[i].first);
      os << ": ";
      json_number(os, run.phases_ms_[i].second);
    }
    os << "},\n      \"counters\": {";
    for (std::size_t i = 0; i < run.counters_.size(); ++i) {
      os << (i == 0 ? "" : ", ");
      json_string(os, run.counters_[i].first);
      os << ": " << run.counters_[i].second;
    }
    os << "},\n      \"gauges\": {";
    for (std::size_t i = 0; i < run.gauges_.size(); ++i) {
      os << (i == 0 ? "" : ", ");
      json_string(os, run.gauges_[i].first);
      os << ": ";
      json_number(os, run.gauges_[i].second);
    }

    os << "},\n      \"histograms\": {";
    for (std::size_t i = 0; i < run.histograms_.size(); ++i) {
      const auto& [name, snap] = run.histograms_[i];
      os << (i == 0 ? "" : ", ");
      json_string(os, name);
      os << ": {\"count\": " << snap.count << ", \"sum\": ";
      json_number(os, snap.sum);
      os << ", \"min\": ";
      json_number(os, snap.count > 0 ? snap.min : 0.0);
      os << ", \"max\": ";
      json_number(os, snap.count > 0 ? snap.max : 0.0);
      // Sparse bucket dump: [upper_bound, count] for non-empty buckets.
      os << ", \"buckets\": [";
      bool first_bucket = true;
      for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
        if (snap.buckets[b] == 0) continue;
        if (!first_bucket) os << ", ";
        first_bucket = false;
        os << "[";
        json_number(os, metrics::Histogram::bucket_upper_bound(b));
        os << ", " << snap.buckets[b] << "]";
      }
      os << "]}";
    }

    os << "},\n      \"series\": {";
    for (std::size_t i = 0; i < run.series_.size(); ++i) {
      const auto& [name, points] = run.series_[i];
      os << (i == 0 ? "" : ", ");
      json_string(os, name);
      os << ": [";
      for (std::size_t p = 0; p < points.size(); ++p) {
        os << (p == 0 ? "" : ", ") << "[";
        json_number(os, points[p].x);
        os << ", ";
        json_number(os, points[p].y);
        os << "]";
      }
      os << "]";
    }

    os << "},\n      \"spans\": [";
    for (std::size_t s = 0; s < run.spans_.size(); ++s) {
      const SpanRecord& span = run.spans_[s];
      os << (s == 0 ? "\n" : ",\n") << "        {\"name\": ";
      json_string(os, span.name);
      os << ", \"start_us\": ";
      json_number(os, span.start_us);
      os << ", \"dur_us\": ";
      json_number(os, span.dur_us);
      os << ", \"tid\": " << span.tid << ", \"parent\": ";
      if (span.parent == SpanRecord::kNoParent) {
        os << -1;
      } else {
        os << static_cast<long long>(span.parent);
      }
      os << ", \"attrs\": ";
      json_span_attrs(os, span.attrs);
      os << "}";
    }
    if (!run.spans_.empty()) os << "\n      ";
    os << "]\n    }";
  }
  if (!runs_.empty()) os << "\n  ";
  os << "]\n}\n";
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  write(os);
  return os.good();
}

}  // namespace crowdrank::trace
