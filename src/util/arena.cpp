#include "util/arena.hpp"

#include <cstdint>
#include <new>

#include "util/error.hpp"

namespace crowdrank {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

Arena::~Arena() = default;

bool Arena::reset() {
  MutexLock lock(mutex_);
  if (outstanding_.load(std::memory_order_acquire) != 0) {
    ++stats_.skipped_resets;
    return false;
  }
  if (stats_.bytes_used > stats_.bytes_peak) {
    stats_.bytes_peak = stats_.bytes_used;
  }
  for (const Block& block : oversize_) {
    stats_.bytes_reserved -= block.capacity;
  }
  oversize_.clear();
  block_index_ = 0;
  offset_ = 0;
  stats_.bytes_used = 0;
  ++stats_.resets;
  return true;
}

ArenaStats Arena::stats() const {
  MutexLock lock(mutex_);
  ArenaStats out = stats_;
  out.outstanding = outstanding_.load(std::memory_order_relaxed);
  if (out.bytes_used > out.bytes_peak) {
    out.bytes_peak = out.bytes_used;
  }
  return out;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  MutexLock lock(mutex_);
  ++stats_.allocs;
  outstanding_.fetch_add(1, std::memory_order_relaxed);

  // Oversize requests get a dedicated block released at the next reset;
  // operator new[] honors fundamental alignment, stricter ones get slack.
  const std::size_t slack =
      alignment > alignof(std::max_align_t) ? alignment : 0;
  if (bytes + slack > block_bytes_) {
    ++stats_.oversize_allocs;
    ++stats_.system_allocs;
    Block block{std::make_unique<std::byte[]>(bytes + slack), bytes + slack};
    stats_.bytes_reserved += block.capacity;
    stats_.bytes_used += block.capacity;
    auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
    const std::uintptr_t aligned = (base + alignment - 1) & ~(alignment - 1);
    oversize_.push_back(std::move(block));
    return reinterpret_cast<void*>(aligned);
  }

  for (;;) {
    if (block_index_ < blocks_.size()) {
      Block& block = blocks_[block_index_];
      const auto base = reinterpret_cast<std::uintptr_t>(block.data.get());
      const std::uintptr_t aligned =
          (base + offset_ + alignment - 1) & ~(alignment - 1);
      const std::size_t end = (aligned - base) + bytes;
      if (end <= block.capacity) {
        stats_.bytes_used += end - offset_;
        offset_ = end;
        return reinterpret_cast<void*>(aligned);
      }
      ++block_index_;
      offset_ = 0;
      continue;
    }
    ++stats_.system_allocs;
    blocks_.push_back(
        Block{std::make_unique<std::byte[]>(block_bytes_), block_bytes_});
    stats_.bytes_reserved += block_bytes_;
    offset_ = 0;
  }
}

void Arena::do_deallocate(void* /*p*/, std::size_t /*bytes*/,
                          std::size_t /*alignment*/) {
  // Monotonic region: memory comes back only at reset(). The release
  // pairs with reset()'s acquire so a reset that observes zero knows all
  // frees (and the user code before them) happened-before the rewind.
  outstanding_.fetch_sub(1, std::memory_order_release);
}

bool Arena::do_is_equal(
    const std::pmr::memory_resource& other) const noexcept {
  return this == &other;
}

namespace arena {

namespace {
thread_local std::pmr::memory_resource* t_current = nullptr;
}  // namespace

std::pmr::memory_resource* current() {
  return t_current != nullptr ? t_current : std::pmr::new_delete_resource();
}

std::pmr::memory_resource* exchange_current(std::pmr::memory_resource* r) {
  std::pmr::memory_resource* previous = t_current;
  t_current = r;
  return previous;
}

}  // namespace arena

}  // namespace crowdrank
