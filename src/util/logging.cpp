#include "util/logging.hpp"

#include <iostream>

namespace crowdrank {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) {
    return;
  }
  const char* prefix = "?";
  switch (level) {
    case LogLevel::Debug:
      prefix = "DEBUG";
      break;
    case LogLevel::Info:
      prefix = "INFO ";
      break;
    case LogLevel::Warn:
      prefix = "WARN ";
      break;
    case LogLevel::Error:
      prefix = "ERROR";
      break;
    case LogLevel::Off:
      return;
  }
  // One lock per line: concurrent lanes may log freely without tearing a
  // line apart or interleaving partial messages. This is the single
  // sanctioned raw-stderr write in src/ — everything else routes through
  // the logger so log level and formatting stay centralized.
  MutexLock lock(write_mutex_);
  std::cerr << '[' << prefix  // lint:allow(stderr-outside-logger)
            << "] " << message << '\n';
}

namespace detail {

LogLine::~LogLine() {
  if (Logger::instance().enabled(level_)) {
    Logger::instance().write(level_, stream_.str());
  }
}

}  // namespace detail

}  // namespace crowdrank
