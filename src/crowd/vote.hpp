// A single pairwise preference returned by one worker (paper §II):
// the worker voted either O_i < O_j ("i preferred") or O_j < O_i.
#pragma once

#include <vector>

#include "crowd/worker.hpp"
#include "graph/types.hpp"

namespace crowdrank {

/// One worker's answer to one pairwise comparison task (O_i, O_j).
struct Vote {
  WorkerId worker = 0;
  VertexId i = 0;
  VertexId j = 0;
  /// true: O_i is preferred to O_j (x_ij^k = 1); false: the reverse.
  bool prefers_i = true;

  bool operator==(const Vote&) const = default;
};

/// The one-shot batch a non-interactive crowdsourcing round produces.
using VoteBatch = std::vector<Vote>;

}  // namespace crowdrank
