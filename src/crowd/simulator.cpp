#include "crowd/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace crowdrank {

SimulatedCrowd::SimulatedCrowd(Ranking truth,
                               std::vector<WorkerProfile> workers)
    : truth_(std::move(truth)), workers_(std::move(workers)) {
  CR_EXPECTS(!workers_.empty(), "need at least one worker");
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    CR_EXPECTS(workers_[k].id == k,
               "worker ids must be contiguous pool indices");
    CR_EXPECTS(workers_[k].sigma >= 0.0, "worker sigma must be >= 0");
  }
}

double SimulatedCrowd::sample_error_probability(const WorkerProfile& worker,
                                                Rng& rng) const {
  return std::clamp(std::abs(rng.normal(0.0, worker.sigma)), 0.0, 1.0);
}

Vote SimulatedCrowd::answer(WorkerId worker, VertexId i, VertexId j,
                            Rng& rng) const {
  CR_EXPECTS(worker < workers_.size(), "worker id out of range");
  CR_EXPECTS(i != j, "cannot compare an object with itself");
  const bool truth_prefers_i = truth_.position_of(i) < truth_.position_of(j);
  const double p_err = sample_error_probability(workers_[worker], rng);
  const bool correct = !rng.bernoulli(p_err);
  return Vote{worker, i, j, correct == truth_prefers_i};
}

VoteBatch SimulatedCrowd::collect(const HitAssignment& assignment,
                                  Rng& rng) const {
  VoteBatch batch;
  batch.reserve(assignment.total_answer_count());
  const auto& tasks = assignment.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Edge& e = tasks[t];
    for (const WorkerId k : assignment.workers_for_task(t)) {
      batch.push_back(answer(k, e.first, e.second, rng));
    }
  }
  return batch;
}

}  // namespace crowdrank
