// Non-interactive crowd simulator (paper §VI-A4; DESIGN.md substitution #1).
//
// Given a hidden ground-truth ranking and a worker pool, produces the
// one-shot batch of votes a real AMT round would return: for each
// (worker, task) pair the worker votes the *wrong* direction with
// probability clamp(|N(0, sigma_k^2)|, 0, 1), drawn independently per
// answer — the paper's error model verbatim.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/hit.hpp"
#include "crowd/vote.hpp"
#include "crowd/worker.hpp"
#include "metrics/ranking.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Simulates one non-interactive crowdsourcing round.
class SimulatedCrowd {
 public:
  /// `truth` is the hidden full ranking; `workers` the sampled pool.
  SimulatedCrowd(Ranking truth, std::vector<WorkerProfile> workers);

  const Ranking& truth() const { return truth_; }
  const std::vector<WorkerProfile>& workers() const { return workers_; }

  /// Probability that worker k answers a comparison incorrectly on this
  /// draw: clamp(|N(0, sigma_k^2)|, 0, 1).
  double sample_error_probability(const WorkerProfile& worker, Rng& rng) const;

  /// One worker's vote on the comparison (i, j).
  Vote answer(WorkerId worker, VertexId i, VertexId j, Rng& rng) const;

  /// Answers an entire pre-built assignment: every task, every assigned
  /// worker, one vote each. This is the non-interactive round.
  VoteBatch collect(const HitAssignment& assignment, Rng& rng) const;

 private:
  Ranking truth_;
  std::vector<WorkerProfile> workers_;
};

}  // namespace crowdrank
