#include "crowd/amt_dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace crowdrank {

AmtSmileDataset::AmtSmileDataset(const AmtDatasetConfig& config, Rng& rng)
    : config_(config), machine_ranking_(Ranking::identity(2)) {
  CR_EXPECTS(config.num_images >= 2, "need at least two study images");
  CR_EXPECTS(config.max_adjacent_gap >= 1, "adjacent gap bound must be >= 1");
  CR_EXPECTS(
      config.universe_size >=
          config.num_images * (config.max_adjacent_gap + 1),
      "universe too small for the requested selection");
  CR_EXPECTS(config.perceptual_noise > 0.0,
             "perceptual noise must be positive");

  // Latent smile scores for the whole universe, then sort descending: index
  // 0 of `sorted` is the most-smiling virtual image.
  std::vector<double> universe(config.universe_size);
  for (double& s : universe) {
    s = rng.normal();
  }
  std::vector<std::size_t> by_rank(config.universe_size);
  for (std::size_t i = 0; i < by_rank.size(); ++i) by_rank[i] = i;
  std::sort(by_rank.begin(), by_rank.end(), [&](std::size_t a, std::size_t b) {
    return universe[a] > universe[b];
  });

  // Pick num_images positions with adjacent gaps uniform in
  // [1, max_adjacent_gap], starting somewhere that leaves room.
  const std::size_t worst_span =
      (config.num_images - 1) * config.max_adjacent_gap;
  const std::size_t max_start = config.universe_size - 1 - worst_span;
  std::size_t pos = static_cast<std::size_t>(rng.uniform_index(max_start + 1));
  universe_positions_.push_back(pos);
  for (std::size_t k = 1; k < config.num_images; ++k) {
    pos += 1 + static_cast<std::size_t>(
                   rng.uniform_index(config.max_adjacent_gap));
    universe_positions_.push_back(pos);
  }

  scores_.reserve(config.num_images);
  for (const std::size_t p : universe_positions_) {
    scores_.push_back(universe[by_rank[p]]);
  }

  // Machine ranking of the *study* images by latent score (descending).
  machine_ranking_ = Ranking::from_scores(scores_);
}

double AmtSmileDataset::latent_score(VertexId v) const {
  CR_EXPECTS(v < scores_.size(), "image id out of range");
  return scores_[v];
}

Vote AmtSmileDataset::answer(const WorkerProfile& worker, VertexId i,
                             VertexId j, Rng& rng) const {
  CR_EXPECTS(i < scores_.size() && j < scores_.size(),
             "image id out of range");
  CR_EXPECTS(i != j, "cannot compare an image with itself");
  const double gap = scores_[i] - scores_[j];
  const double noise_sigma = config_.perceptual_noise * (1.0 + worker.sigma);
  const double perceived = gap + rng.normal(0.0, noise_sigma);
  return Vote{worker.id, i, j, perceived > 0.0};
}

VoteBatch AmtSmileDataset::collect(const HitAssignment& assignment,
                                   const std::vector<WorkerProfile>& workers,
                                   Rng& rng) const {
  VoteBatch batch;
  batch.reserve(assignment.total_answer_count());
  const auto& tasks = assignment.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Edge& e = tasks[t];
    for (const WorkerId k : assignment.workers_for_task(t)) {
      CR_EXPECTS(k < workers.size(), "assignment references unknown worker");
      batch.push_back(answer(workers[k], e.first, e.second, rng));
    }
  }
  return batch;
}

}  // namespace crowdrank
