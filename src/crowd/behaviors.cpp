#include "crowd/behaviors.hpp"

#include "util/error.hpp"

namespace crowdrank {

BehavioralCrowd::BehavioralCrowd(
    const SimulatedCrowd& base,
    std::map<WorkerId, WorkerBehavior> overrides)
    : base_(base), overrides_(std::move(overrides)) {
  for (const auto& [worker, behavior] : overrides_) {
    CR_EXPECTS(worker < base.workers().size(),
               "behavior override for an unknown worker");
    (void)behavior;
  }
}

WorkerBehavior BehavioralCrowd::behavior(WorkerId k) const {
  const auto it = overrides_.find(k);
  return it == overrides_.end() ? WorkerBehavior::Honest : it->second;
}

Vote BehavioralCrowd::answer(WorkerId worker, VertexId i, VertexId j,
                             Rng& rng) const {
  CR_EXPECTS(i != j, "cannot compare an object with itself");
  switch (behavior(worker)) {
    case WorkerBehavior::Honest:
      return base_.answer(worker, i, j, rng);
    case WorkerBehavior::Spammer:
      return Vote{worker, i, j, rng.bernoulli(0.5)};
    case WorkerBehavior::Adversary: {
      const bool truth_prefers_i =
          base_.truth().position_of(i) < base_.truth().position_of(j);
      return Vote{worker, i, j, !truth_prefers_i};
    }
    case WorkerBehavior::FirstBiased:
      return Vote{worker, i, j, true};
    case WorkerBehavior::LowIdBiased:
      return Vote{worker, i, j, i < j};
  }
  throw Error("unknown worker behavior");
}

VoteBatch BehavioralCrowd::collect(const HitAssignment& assignment,
                                   Rng& rng) const {
  VoteBatch batch;
  batch.reserve(assignment.total_answer_count());
  const auto& tasks = assignment.tasks();
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Edge& e = tasks[t];
    for (const WorkerId k : assignment.workers_for_task(t)) {
      batch.push_back(answer(k, e.first, e.second, rng));
    }
  }
  return batch;
}

double BehavioralCrowd::contamination_rate() const {
  std::size_t contaminated = 0;
  for (const auto& [worker, behavior] : overrides_) {
    (void)worker;
    if (behavior != WorkerBehavior::Honest) ++contaminated;
  }
  return static_cast<double>(contaminated) /
         static_cast<double>(base_.workers().size());
}

}  // namespace crowdrank
