// Interactive crowdsourcing oracle (paper §VI-B baselines).
//
// CrowdBT operates in the *interactive* setting: it repeatedly picks the
// next pair to crowdsource based on everything seen so far, until the
// budget runs out. This class wraps a SimulatedCrowd behind a pay-per-query
// interface with strict budget metering so interactive baselines spend
// exactly the same dollars as the non-interactive pipeline they are
// compared against.
#pragma once

#include <cstddef>
#include <optional>

#include "crowd/budget.hpp"
#include "crowd/simulator.hpp"
#include "crowd/vote.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Budget-metered interactive access to a simulated crowd.
class InteractiveCrowd {
 public:
  /// The oracle charges `budget.reward_per_comparison()` per answer.
  InteractiveCrowd(const SimulatedCrowd& crowd, const BudgetModel& budget,
                   Rng& rng);

  /// Remaining budget in dollars.
  double remaining_budget() const { return remaining_; }

  /// Answers remaining before the budget runs out.
  std::size_t remaining_answers() const;

  /// True while at least one more answer is affordable.
  bool can_query() const { return remaining_answers() > 0; }

  /// Asks worker `k` to compare (i, j). Returns nullopt when the budget is
  /// exhausted; otherwise charges one reward and returns the vote.
  std::optional<Vote> query(WorkerId k, VertexId i, VertexId j);

  /// Asks a uniformly random worker. Returns nullopt when broke.
  std::optional<Vote> query_random_worker(VertexId i, VertexId j);

  /// Total answers purchased so far.
  std::size_t answers_purchased() const { return purchased_; }

 private:
  const SimulatedCrowd& crowd_;
  double reward_;
  double remaining_;
  std::size_t purchased_ = 0;
  Rng& rng_;
};

}  // namespace crowdrank
