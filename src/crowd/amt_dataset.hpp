// Synthetic stand-in for the paper's AMT image-ranking experiment
// (§VI-A3; DESIGN.md substitution #2).
//
// The paper picked celebrity photos from the 1,800-image PubFig set, ranked
// them once with a relative-attributes model, and kept only photos whose
// adjacent machine-rank gaps never exceed 46 — i.e. deliberately
// hard-to-distinguish images — then asked AMT workers "who smiled more?".
// We reproduce the *statistical* situation: 1,800 virtual images with
// latent smile scores; a selection of 10/20 images with bounded adjacent
// rank gaps; and a Thurstonian vote model where the probability of a
// conflicting vote grows as two latent scores approach each other. The
// machine ranking is exposed for reference but — exactly as the paper
// stresses — is NOT ground truth; evaluation compares TAPS vs SAPS
// agreement instead.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/hit.hpp"
#include "crowd/vote.hpp"
#include "crowd/worker.hpp"
#include "metrics/ranking.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// Configuration of the synthetic smile-ranking study.
struct AmtDatasetConfig {
  std::size_t universe_size = 1800;   ///< PubFig-sized image universe
  std::size_t num_images = 10;        ///< 10- or 20-image setting
  std::size_t max_adjacent_gap = 46;  ///< paper's rank-closeness filter
  /// Thurstone comparison noise: the std-dev of the perceptual difference
  /// judgment for a score gap of 1.0. Larger = more conflicting opinions.
  double perceptual_noise = 1.0;
};

/// The selected image set plus its vote model.
class AmtSmileDataset {
 public:
  /// Samples the universe, applies the closeness filter, selects the study
  /// images. Deterministic given `rng`.
  AmtSmileDataset(const AmtDatasetConfig& config, Rng& rng);

  std::size_t num_images() const { return scores_.size(); }

  /// Latent smile score of study image v (hidden from algorithms).
  double latent_score(VertexId v) const;

  /// Ranking of the study images by latent score — the analog of the
  /// paper's machine ranking; a reference point, not ground truth.
  const Ranking& machine_ranking() const { return machine_ranking_; }

  /// Positions (in the 1800-image machine ranking) of the selected images,
  /// ascending; adjacent gaps are <= max_adjacent_gap by construction.
  const std::vector<std::size_t>& universe_positions() const {
    return universe_positions_;
  }

  /// One worker's vote: Thurstonian — the worker perceives
  /// (s_i - s_j) + noise where noise ~ N(0, (perceptual_noise * (1 +
  /// sigma_k))^2) and votes for the image perceived to smile more.
  Vote answer(const WorkerProfile& worker, VertexId i, VertexId j,
              Rng& rng) const;

  /// Collects one non-interactive round over a pre-built assignment.
  VoteBatch collect(const HitAssignment& assignment,
                    const std::vector<WorkerProfile>& workers,
                    Rng& rng) const;

 private:
  AmtDatasetConfig config_;
  std::vector<double> scores_;  ///< latent scores of the selected images
  std::vector<std::size_t> universe_positions_;
  Ranking machine_ranking_;
};

}  // namespace crowdrank
