// Behavioral crowd personas — failure-injection beyond the paper's
// Gaussian-error model.
//
// Real crowdsourcing rounds contain workers the N(0, sigma^2) model does
// not describe: spammers who click uniformly, adversaries who invert every
// answer, position-biased workers who favor whichever object is presented
// first, and lazy workers who answer a constant. BehavioralCrowd wraps the
// paper-faithful SimulatedCrowd and overrides designated workers with such
// personas, so robustness experiments (tests and the failure-injection
// bench) can mix them in controlled proportions.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "crowd/hit.hpp"
#include "crowd/simulator.hpp"
#include "crowd/vote.hpp"

namespace crowdrank {

/// Non-honest worker archetypes.
enum class WorkerBehavior {
  Honest,       ///< delegate to the underlying error model
  Spammer,      ///< uniform coin flip, ignores the objects
  Adversary,    ///< inverts the ground-truth comparison deliberately
  FirstBiased,  ///< always prefers the first-presented object
  LowIdBiased,  ///< always prefers the object with the smaller id
};

/// SimulatedCrowd decorator that overrides designated workers' behavior.
class BehavioralCrowd {
 public:
  /// `overrides` maps worker ids to non-honest personas; all other workers
  /// answer via `base`'s paper model.
  BehavioralCrowd(const SimulatedCrowd& base,
                  std::map<WorkerId, WorkerBehavior> overrides);

  const SimulatedCrowd& base() const { return base_; }

  /// Persona of worker k (Honest unless overridden).
  WorkerBehavior behavior(WorkerId k) const;

  /// One vote under the worker's persona.
  Vote answer(WorkerId worker, VertexId i, VertexId j, Rng& rng) const;

  /// Full non-interactive round, like SimulatedCrowd::collect.
  VoteBatch collect(const HitAssignment& assignment, Rng& rng) const;

  /// Fraction of the pool that is not honest.
  double contamination_rate() const;

 private:
  const SimulatedCrowd& base_;
  std::map<WorkerId, WorkerBehavior> overrides_;
};

}  // namespace crowdrank
