#include "crowd/budget.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace crowdrank {

BudgetModel::BudgetModel(double budget, double reward_per_comparison,
                         std::size_t workers_per_task,
                         double platform_fee_rate)
    : budget_(budget),
      reward_(reward_per_comparison),
      workers_per_task_(workers_per_task),
      fee_rate_(platform_fee_rate) {
  CR_EXPECTS(budget > 0.0, "budget must be positive");
  CR_EXPECTS(reward_per_comparison > 0.0, "reward must be positive");
  CR_EXPECTS(workers_per_task >= 1, "each task needs at least one worker");
  CR_EXPECTS(platform_fee_rate >= 0.0,
             "platform fee rate must be non-negative");
}

BudgetModel BudgetModel::for_unique_tasks(std::size_t unique_tasks,
                                          double reward_per_comparison,
                                          std::size_t workers_per_task,
                                          double platform_fee_rate) {
  CR_EXPECTS(unique_tasks >= 1, "need at least one task");
  const double budget = static_cast<double>(unique_tasks) *
                        static_cast<double>(workers_per_task) *
                        reward_per_comparison * (1.0 + platform_fee_rate);
  return BudgetModel(budget, reward_per_comparison, workers_per_task,
                     platform_fee_rate);
}

BudgetModel BudgetModel::for_selection_ratio(std::size_t n, double ratio,
                                             double reward_per_comparison,
                                             std::size_t workers_per_task,
                                             double platform_fee_rate) {
  CR_EXPECTS(n >= 2, "need at least two objects");
  CR_EXPECTS(ratio > 0.0 && ratio <= 1.0, "selection ratio must be in (0,1]");
  const std::size_t all_pairs = math::pair_count(n);
  auto l = static_cast<std::size_t>(
      std::llround(ratio * static_cast<double>(all_pairs)));
  l = std::clamp(l, n - 1, all_pairs);
  return for_unique_tasks(l, reward_per_comparison, workers_per_task,
                          platform_fee_rate);
}

std::size_t BudgetModel::unique_task_count() const {
  // Floor with a relative epsilon: budgets constructed as l * w * cost
  // must recover exactly l despite the round trip through floating point.
  const double exact =
      budget_ /
      (static_cast<double>(workers_per_task_) * cost_per_answer());
  return static_cast<std::size_t>(std::floor(exact * (1.0 + 1e-12) + 1e-9));
}

double BudgetModel::selection_ratio(std::size_t n) const {
  CR_EXPECTS(n >= 2, "need at least two objects");
  return static_cast<double>(unique_task_count()) /
         static_cast<double>(math::pair_count(n));
}

double BudgetModel::total_cost() const {
  return static_cast<double>(unique_task_count()) *
         static_cast<double>(workers_per_task_) * cost_per_answer();
}

double BudgetModel::total_fees() const {
  return static_cast<double>(unique_task_count()) *
         static_cast<double>(workers_per_task_) * reward_ * fee_rate_;
}

}  // namespace crowdrank
