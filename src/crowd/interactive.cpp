#include "crowd/interactive.hpp"

#include <cmath>

#include "util/error.hpp"

namespace crowdrank {

InteractiveCrowd::InteractiveCrowd(const SimulatedCrowd& crowd,
                                   const BudgetModel& budget, Rng& rng)
    : crowd_(crowd),
      reward_(budget.reward_per_comparison()),
      remaining_(budget.budget()),
      rng_(rng) {}

std::size_t InteractiveCrowd::remaining_answers() const {
  if (remaining_ < reward_) return 0;
  return static_cast<std::size_t>(std::floor(remaining_ / reward_));
}

std::optional<Vote> InteractiveCrowd::query(WorkerId k, VertexId i,
                                            VertexId j) {
  if (!can_query()) {
    return std::nullopt;
  }
  remaining_ -= reward_;
  ++purchased_;
  return crowd_.answer(k, i, j, rng_);
}

std::optional<Vote> InteractiveCrowd::query_random_worker(VertexId i,
                                                          VertexId j) {
  const auto k = static_cast<WorkerId>(
      rng_.uniform_index(crowd_.workers().size()));
  return query(k, i, j);
}

}  // namespace crowdrank
