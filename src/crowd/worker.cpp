#include "crowd/worker.hpp"

#include <cmath>

#include "util/error.hpp"

namespace crowdrank {

double gaussian_sigma_s(QualityLevel level) {
  switch (level) {
    case QualityLevel::High:
      return 0.01;
    case QualityLevel::Medium:
      return 0.1;
    case QualityLevel::Low:
      return 1.0;
  }
  throw Error("unknown quality level");
}

std::pair<double, double> uniform_sigma_range(QualityLevel level) {
  switch (level) {
    case QualityLevel::High:
      return {0.0, 0.2};
    case QualityLevel::Medium:
      return {0.1, 0.3};
    case QualityLevel::Low:
      return {0.2, 0.4};
  }
  throw Error("unknown quality level");
}

std::vector<WorkerProfile> sample_worker_pool(std::size_t count,
                                              const WorkerPoolConfig& config,
                                              Rng& rng) {
  CR_EXPECTS(count > 0, "a worker pool needs at least one worker");
  std::vector<WorkerProfile> pool;
  pool.reserve(count);
  for (WorkerId id = 0; id < count; ++id) {
    double sigma = 0.0;
    switch (config.distribution) {
      case QualityDistribution::Gaussian:
        sigma = std::abs(rng.normal(0.0, gaussian_sigma_s(config.level)));
        break;
      case QualityDistribution::Uniform: {
        const auto [lo, hi] = uniform_sigma_range(config.level);
        sigma = lo == hi ? lo : rng.uniform(lo, hi);
        break;
      }
    }
    pool.push_back(WorkerProfile{id, sigma});
  }
  return pool;
}

std::string to_string(QualityDistribution d) {
  return d == QualityDistribution::Gaussian ? "Gaussian" : "Uniform";
}

std::string to_string(QualityLevel l) {
  switch (l) {
    case QualityLevel::High:
      return "high";
    case QualityLevel::Medium:
      return "medium";
    case QualityLevel::Low:
      return "low";
  }
  return "?";
}

}  // namespace crowdrank
