// Worker model (paper §VI-A4).
//
// Worker W_k's voting error follows N(0, sigma_k^2); the smaller sigma_k,
// the higher the quality. The paper draws sigma_k from one of two families:
//   * Gaussian: sigma_k ~ N(0, sigma_s^2) with sigma_s in {0.01, 0.1, 1}
//     for high / medium / low quality (we take |.| since a std-dev is
//     non-negative — see DESIGN.md substitution #1);
//   * Uniform: sigma_k ~ U[a, b] with [0,.2] / [.1,.3] / [.2,.4] for
//     high / medium / low quality.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace crowdrank {

/// Identifier of a crowd worker (index into the worker pool).
using WorkerId = std::size_t;

/// Which family the per-worker error std-devs are drawn from.
enum class QualityDistribution { Gaussian, Uniform };

/// The three quality regimes the paper evaluates.
enum class QualityLevel { High, Medium, Low };

/// A single simulated worker: the std-dev of their voting error.
struct WorkerProfile {
  WorkerId id = 0;
  double sigma = 0.0;  ///< error std-dev; >= 0, smaller = better worker
};

/// Configuration of a worker pool draw.
struct WorkerPoolConfig {
  QualityDistribution distribution = QualityDistribution::Gaussian;
  QualityLevel level = QualityLevel::Medium;
};

/// The paper's sigma_s for a Gaussian-quality level (0.01 / 0.1 / 1).
double gaussian_sigma_s(QualityLevel level);

/// The paper's uniform range for a quality level ([0,.2]/[.1,.3]/[.2,.4]).
std::pair<double, double> uniform_sigma_range(QualityLevel level);

/// Draws `count` workers with std-devs from the configured family.
std::vector<WorkerProfile> sample_worker_pool(std::size_t count,
                                              const WorkerPoolConfig& config,
                                              Rng& rng);

/// Human-readable names for bench/table output.
std::string to_string(QualityDistribution d);
std::string to_string(QualityLevel l);

}  // namespace crowdrank
