#include "crowd/hit.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace crowdrank {

HitAssignment::HitAssignment(const std::vector<Edge>& tasks,
                             const HitConfig& config,
                             std::size_t worker_pool_size, Rng& rng)
    : tasks_(tasks) {
  CR_EXPECTS(!tasks.empty(), "need at least one comparison task");
  CR_EXPECTS(config.comparisons_per_hit >= 1, "HITs need c >= 1");
  CR_EXPECTS(config.workers_per_hit >= 1, "HITs need w >= 1");
  CR_EXPECTS(config.workers_per_hit <= worker_pool_size,
             "replication w must not exceed the worker pool size m");

  task_workers_.resize(tasks_.size());
  worker_tasks_.resize(worker_pool_size);

  // Pack tasks into HITs of c comparisons, in order; each HIT draws w
  // distinct workers uniformly at random from the pool.
  for (std::size_t start = 0; start < tasks_.size();
       start += config.comparisons_per_hit) {
    const std::size_t end =
        std::min(start + config.comparisons_per_hit, tasks_.size());
    Hit hit;
    hit.comparisons.assign(tasks_.begin() + static_cast<std::ptrdiff_t>(start),
                           tasks_.begin() + static_cast<std::ptrdiff_t>(end));
    const auto picked =
        rng.sample_without_replacement(worker_pool_size,
                                       config.workers_per_hit);
    hit.workers.assign(picked.begin(), picked.end());
    std::sort(hit.workers.begin(), hit.workers.end());

    for (std::size_t t = start; t < end; ++t) {
      task_workers_[t] = hit.workers;
      for (const WorkerId k : hit.workers) {
        worker_tasks_[k].push_back(t);
      }
    }
    hits_.push_back(std::move(hit));
  }
}

const std::vector<WorkerId>& HitAssignment::workers_for_task(
    std::size_t t) const {
  CR_EXPECTS(t < task_workers_.size(), "task index out of range");
  return task_workers_[t];
}

const std::vector<std::size_t>& HitAssignment::tasks_for_worker(
    WorkerId k) const {
  CR_EXPECTS(k < worker_tasks_.size(), "worker id out of range");
  return worker_tasks_[k];
}

std::size_t HitAssignment::total_answer_count() const {
  std::size_t total = 0;
  for (const auto& workers : task_workers_) {
    total += workers.size();
  }
  return total;
}

}  // namespace crowdrank
