// Budget model (paper §II).
//
// The requester has budget B; each pairwise comparison pays reward r and is
// replicated to w > 1 workers, so the number of unique comparison tasks the
// budget affords is l = floor(B / (w * r)). The *selection ratio*
// r_sel = l / C(n, 2) is the knob the evaluation sweeps (Figs 4-6).
#pragma once

#include <cstddef>

namespace crowdrank {

/// Crowdsourcing budget: dollars, per-comparison reward, replication
/// factor, and the platform's commission (AMT charges the requester a fee
/// of 20-40% *on top of* each reward; the paper's B/(w r) formula is the
/// fee-free special case).
class BudgetModel {
 public:
  /// budget > 0, reward_per_comparison > 0, workers_per_task >= 1,
  /// platform_fee_rate >= 0 (0.2 = a 20% commission on every reward).
  BudgetModel(double budget, double reward_per_comparison,
              std::size_t workers_per_task, double platform_fee_rate = 0.0);

  /// Builds the budget that yields exactly `unique_tasks` comparisons.
  static BudgetModel for_unique_tasks(std::size_t unique_tasks,
                                      double reward_per_comparison,
                                      std::size_t workers_per_task,
                                      double platform_fee_rate = 0.0);

  /// Builds the budget for a target selection ratio over n objects:
  /// l = round(ratio * C(n, 2)), clamped to [n-1, C(n, 2)] so the task
  /// graph can stay connected (l >= n-1 is required for any spanning HP).
  static BudgetModel for_selection_ratio(std::size_t n, double ratio,
                                         double reward_per_comparison,
                                         std::size_t workers_per_task,
                                         double platform_fee_rate = 0.0);

  double budget() const { return budget_; }
  double reward_per_comparison() const { return reward_; }
  std::size_t workers_per_task() const { return workers_per_task_; }
  double platform_fee_rate() const { return fee_rate_; }

  /// What one answer actually costs the requester: reward * (1 + fee).
  double cost_per_answer() const { return reward_ * (1.0 + fee_rate_); }

  /// l = floor(B / (w * cost_per_answer)) — affordable unique comparisons.
  std::size_t unique_task_count() const;

  /// unique_task_count() / C(n, 2).
  double selection_ratio(std::size_t n) const;

  /// Total paid out if the whole budget's worth of tasks is crowdsourced:
  /// l * w * cost_per_answer (<= budget by construction).
  double total_cost() const;

  /// The platform's cut of total_cost().
  double total_fees() const;

 private:
  double budget_;
  double reward_;
  std::size_t workers_per_task_;
  double fee_rate_;
};

}  // namespace crowdrank
