// HIT (Human Intelligence Task) model (paper §II).
//
// The requester groups the l unique pairwise comparisons into HITs of
// c >= 1 comparisons each, and assigns every HIT to w > 1 distinct workers
// out of the pool of m workers (w <= m). The assignment is one-time
// (non-interactive): it is fixed before any answer is seen.
#pragma once

#include <cstddef>
#include <vector>

#include "crowd/worker.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace crowdrank {

/// One HIT: a batch of pairwise comparison tasks plus the workers assigned.
struct Hit {
  std::vector<Edge> comparisons;   ///< the c pairwise tasks in this HIT
  std::vector<WorkerId> workers;   ///< the w workers assigned to it
};

/// Configuration of HIT construction.
struct HitConfig {
  std::size_t comparisons_per_hit = 1;  ///< c
  std::size_t workers_per_hit = 3;      ///< w (replication factor)
};

/// The full one-round assignment: HITs plus fast lookup indexes.
class HitAssignment {
 public:
  /// Packs `tasks` into HITs of c comparisons and assigns each HIT to w
  /// distinct workers sampled uniformly from the pool. Requires
  /// w <= pool size and at least one task.
  HitAssignment(const std::vector<Edge>& tasks, const HitConfig& config,
                std::size_t worker_pool_size, Rng& rng);

  const std::vector<Hit>& hits() const { return hits_; }
  std::size_t unique_task_count() const { return tasks_.size(); }
  const std::vector<Edge>& tasks() const { return tasks_; }

  /// Workers assigned to task index t (into tasks()).
  const std::vector<WorkerId>& workers_for_task(std::size_t t) const;

  /// Task indices assigned to worker k (empty if the worker got none).
  const std::vector<std::size_t>& tasks_for_worker(WorkerId k) const;

  /// Total pairwise answers that will be collected (sum over tasks of its
  /// replication) — what the budget actually pays for.
  std::size_t total_answer_count() const;

 private:
  std::vector<Hit> hits_;
  std::vector<Edge> tasks_;
  std::vector<std::vector<WorkerId>> task_workers_;
  std::vector<std::vector<std::size_t>> worker_tasks_;
};

}  // namespace crowdrank
