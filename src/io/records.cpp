#include "io/records.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "util/error.hpp"

namespace crowdrank::io {

namespace {

std::size_t parse_index(const std::string& cell, std::size_t line,
                        const char* what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc() || ptr != cell.data() + cell.size()) {
    throw Error("line " + std::to_string(line) + ": invalid " + what +
                " '" + cell + "'");
  }
  return value;
}

void expect_header(const CsvDocument& doc,
                   const std::vector<std::string>& expected,
                   const char* format_name) {
  CR_EXPECTS(!doc.empty(), std::string(format_name) + ": empty document");
  CR_EXPECTS(doc.rows.front() == expected,
             std::string(format_name) + ": missing or wrong header row");
}

}  // namespace

VoteBatch parse_votes(const std::string& csv_text) {
  const CsvDocument doc = parse_csv(csv_text);
  expect_header(doc, {"worker", "i", "j", "prefers_i"}, "votes.csv");
  VoteBatch votes;
  votes.reserve(doc.row_count() - 1);
  for (std::size_t r = 1; r < doc.row_count(); ++r) {
    const auto& row = doc.rows[r];
    CR_EXPECTS(row.size() == 4, "votes.csv line " + std::to_string(r + 1) +
                                    ": expected 4 fields");
    Vote v;
    v.worker = parse_index(row[0], r + 1, "worker id");
    v.i = parse_index(row[1], r + 1, "object id");
    v.j = parse_index(row[2], r + 1, "object id");
    const std::size_t flag = parse_index(row[3], r + 1, "prefers_i flag");
    CR_EXPECTS(flag <= 1, "votes.csv line " + std::to_string(r + 1) +
                              ": prefers_i must be 0 or 1");
    CR_EXPECTS(v.i != v.j, "votes.csv line " + std::to_string(r + 1) +
                               ": self-comparison");
    v.prefers_i = flag == 1;
    votes.push_back(v);
  }
  return votes;
}

std::string format_votes(const VoteBatch& votes) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(votes.size() + 1);
  rows.push_back({"worker", "i", "j", "prefers_i"});
  for (const Vote& v : votes) {
    rows.push_back({std::to_string(v.worker), std::to_string(v.i),
                    std::to_string(v.j), v.prefers_i ? "1" : "0"});
  }
  std::ostringstream out;
  write_csv(out, rows);
  return out.str();
}

Ranking parse_ranking(const std::string& csv_text) {
  const CsvDocument doc = parse_csv(csv_text);
  expect_header(doc, {"position", "object"}, "ranking.csv");
  const std::size_t n = doc.row_count() - 1;
  CR_EXPECTS(n >= 1, "ranking.csv: no data rows");
  std::vector<VertexId> order(n, n);  // sentinel
  for (std::size_t r = 1; r < doc.row_count(); ++r) {
    const auto& row = doc.rows[r];
    CR_EXPECTS(row.size() == 2, "ranking.csv line " + std::to_string(r + 1) +
                                    ": expected 2 fields");
    const std::size_t position = parse_index(row[0], r + 1, "position");
    const std::size_t object = parse_index(row[1], r + 1, "object id");
    CR_EXPECTS(position < n, "ranking.csv line " + std::to_string(r + 1) +
                                 ": position out of range");
    CR_EXPECTS(order[position] == n,
               "ranking.csv line " + std::to_string(r + 1) +
                   ": duplicate position");
    order[position] = object;
  }
  return Ranking(std::move(order));  // validates the permutation
}

std::string format_ranking(const Ranking& ranking) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(ranking.size() + 1);
  rows.push_back({"position", "object"});
  for (std::size_t p = 0; p < ranking.size(); ++p) {
    rows.push_back({std::to_string(p), std::to_string(ranking.object_at(p))});
  }
  std::ostringstream out;
  write_csv(out, rows);
  return out.str();
}

std::vector<Edge> parse_tasks(const std::string& csv_text) {
  const CsvDocument doc = parse_csv(csv_text);
  expect_header(doc, {"i", "j"}, "tasks.csv");
  std::vector<Edge> tasks;
  tasks.reserve(doc.row_count() - 1);
  for (std::size_t r = 1; r < doc.row_count(); ++r) {
    const auto& row = doc.rows[r];
    CR_EXPECTS(row.size() == 2, "tasks.csv line " + std::to_string(r + 1) +
                                    ": expected 2 fields");
    const std::size_t i = parse_index(row[0], r + 1, "object id");
    const std::size_t j = parse_index(row[1], r + 1, "object id");
    CR_EXPECTS(i != j, "tasks.csv line " + std::to_string(r + 1) +
                           ": self-comparison");
    tasks.push_back(Edge::canonical(i, j));
  }
  return tasks;
}

std::string format_tasks(const std::vector<Edge>& tasks) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(tasks.size() + 1);
  rows.push_back({"i", "j"});
  for (const Edge& e : tasks) {
    rows.push_back({std::to_string(e.first), std::to_string(e.second)});
  }
  std::ostringstream out;
  write_csv(out, rows);
  return out.str();
}

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  CR_EXPECTS(in.good(), "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spill(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  CR_EXPECTS(out.good(), "cannot write file: " + path);
  out << text;
  CR_EXPECTS(out.good(), "write failed: " + path);
}

}  // namespace

VoteBatch load_votes(const std::string& path) {
  return parse_votes(slurp(path));
}
void save_votes(const std::string& path, const VoteBatch& votes) {
  spill(path, format_votes(votes));
}
Ranking load_ranking(const std::string& path) {
  return parse_ranking(slurp(path));
}
void save_ranking(const std::string& path, const Ranking& ranking) {
  spill(path, format_ranking(ranking));
}
std::vector<Edge> load_tasks(const std::string& path) {
  return parse_tasks(slurp(path));
}
void save_tasks(const std::string& path, const std::vector<Edge>& tasks) {
  spill(path, format_tasks(tasks));
}

}  // namespace crowdrank::io
