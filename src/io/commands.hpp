// The crowdrank CLI's subcommands, as a testable library.
//
//   crowdrank assign   — generate the fair task graph for a budget
//   crowdrank simulate — run one full simulated round (votes + truth out)
//   crowdrank infer    — aggregate a votes.csv into a ranking.csv
//   crowdrank eval     — score a ranking against a reference
//   crowdrank plan     — cheapest budget for a target accuracy
//
// Each command reads/writes the CSV record formats of io/records.hpp,
// prints a human-readable summary to `out`, and returns a process exit
// code. main() is a thin dispatcher around run_cli().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace crowdrank::io {

/// Executes one CLI invocation (argv[0] ignored; argv[1] is the
/// subcommand). Writes human output to `out` and errors to `err`.
/// Returns the process exit code (0 success, 1 usage/runtime error).
int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err);

/// The usage/help text.
std::string cli_usage();

}  // namespace crowdrank::io
