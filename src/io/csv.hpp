// Minimal RFC-4180-ish CSV parsing/serialization for the I/O layer.
//
// The CLI tool exchanges votes, rankings, and task lists as CSV because
// that is what crowdsourcing platforms (AMT result downloads in
// particular) emit. Supports quoted fields with embedded commas/quotes/
// newlines, optional header rows, and CRLF input.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace crowdrank::io {

/// A parsed CSV document: rows of string cells.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;

  bool empty() const { return rows.empty(); }
  std::size_t row_count() const { return rows.size(); }
};

/// Parses CSV text. Handles quoted fields ("" escapes a quote), CRLF and
/// LF line endings, and a trailing newline. Throws crowdrank::Error on an
/// unterminated quoted field.
CsvDocument parse_csv(const std::string& text);

/// Reads an entire stream and parses it.
CsvDocument read_csv(std::istream& in);

/// Serializes rows as CSV, quoting any cell containing a comma, quote, or
/// newline.
void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& rows);

/// Loads a file; throws crowdrank::Error when it cannot be opened.
CsvDocument load_csv_file(const std::string& path);

/// Saves rows to a file; throws crowdrank::Error when it cannot be written.
void save_csv_file(const std::string& path,
                   const std::vector<std::vector<std::string>>& rows);

}  // namespace crowdrank::io
