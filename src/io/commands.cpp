#include "io/commands.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/invariants.hpp"
#include "core/confidence.hpp"
#include "core/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "core/planning.hpp"
#include "graph/task_graph.hpp"
#include "io/args.hpp"
#include "io/job_record.hpp"
#include "io/records.hpp"
#include "metrics/kendall.hpp"
#include "metrics/spearman.hpp"
#include "metrics/topk.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "service/api.hpp"
#include "service/artifact.hpp"
#include "service/result_cache.hpp"
#include "service/service.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace crowdrank::io {

namespace {

std::vector<const char*> to_argv(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  return argv;
}

// -- the shared parser table --------------------------------------------
//
// Every command draws its options from these groups, so one concept is
// spelled one way everywhere, and the canonical spellings match the
// crowdrank::api / config field names (--object-count <-> object_count).
// Historical spellings keep working as hidden aliases; they are rewritten
// onto the canonical key before validation and stay out of the usage text.

const std::map<std::string, std::string>& flag_aliases() {
  static const std::map<std::string, std::string> aliases{
      {"objects", "object-count"},
      {"workers", "worker-count"},
      {"pool", "worker-pool"},
      {"replication", "workers-per-task"},
      {"ratio", "selection-ratio"},
      {"target", "target-accuracy"},
      {"reward", "reward-per-comparison"},
  };
  return aliases;
}

std::set<std::string> merge(std::initializer_list<std::set<std::string>>
                                groups) {
  std::set<std::string> all;
  for (const auto& group : groups) {
    all.insert(group.begin(), group.end());
  }
  return all;
}

/// Batch shape: how many objects / workers the data covers.
const std::set<std::string> kShapeOptions{"object-count", "worker-count"};
/// Simulated crowd profile.
const std::set<std::string> kCrowdOptions{"worker-pool", "workers-per-task",
                                          "reward-per-comparison", "quality",
                                          "distribution"};
/// Budget selection.
const std::set<std::string> kBudgetOptions{"selection-ratio", "budget"};
/// Inference pipeline knobs.
const std::set<std::string> kInferenceOptions{
    "search", "saps-iterations", "propagation-fill-threshold",
    "propagation-horizon"};
/// Observability outputs.
const std::set<std::string> kObservabilityOptions{"trace", "metrics"};

Args parse_args(const std::vector<const char*>& raw,
                const std::set<std::string>& options,
                const std::set<std::string>& flags = {}) {
  return Args(static_cast<int>(raw.size()), raw.data(), 2, options, flags,
              flag_aliases());
}

WorkerPoolConfig parse_quality(const Args& args) {
  WorkerPoolConfig config;
  const std::string dist = args.get_string("distribution", "gaussian");
  if (dist == "gaussian") {
    config.distribution = QualityDistribution::Gaussian;
  } else if (dist == "uniform") {
    config.distribution = QualityDistribution::Uniform;
  } else {
    throw Error("--distribution must be gaussian or uniform");
  }
  const std::string level = args.get_string("quality", "medium");
  if (level == "high") {
    config.level = QualityLevel::High;
  } else if (level == "medium") {
    config.level = QualityLevel::Medium;
  } else if (level == "low") {
    config.level = QualityLevel::Low;
  } else {
    throw Error("--quality must be high, medium, or low");
  }
  return config;
}

RankSearchMethod search_from_name(const std::string& method) {
  if (method == "saps") return RankSearchMethod::Saps;
  if (method == "taps") return RankSearchMethod::Taps;
  if (method == "heldkarp") return RankSearchMethod::HeldKarp;
  throw Error("search method must be saps, taps, or heldkarp (got '" +
              method + "')");
}

RankSearchMethod parse_search(const Args& args) {
  return search_from_name(args.get_string("search", "saps"));
}

/// Batch shape shared by infer / diagnose / index / query: n and m come
/// from the flags when given, otherwise from the data. index and query
/// must agree on this derivation — the derived counts enter the content
/// key, so a disagreement would be a guaranteed cache miss.
struct BatchShape {
  std::size_t object_count = 0;
  std::size_t worker_count = 0;
};

BatchShape derive_shape(const VoteBatch& votes, const Args& args) {
  std::size_t max_object = 0;
  WorkerId max_worker = 0;
  for (const Vote& v : votes) {
    max_object = std::max({max_object, v.i, v.j});
    max_worker = std::max(max_worker, v.worker);
  }
  return {args.get_size("object-count", max_object + 1),
          args.get_size("worker-count", max_worker + 1)};
}

/// The kInferenceOptions knobs applied onto the default config, validated.
/// infer, index, and query all build their configs through this one
/// function, so the same flags always describe the same work (and index /
/// query derive identical cache keys).
InferenceConfig inference_from_args(const Args& args) {
  InferenceConfig config;
  config.search = parse_search(args);
  config.saps.iterations =
      args.get_size("saps-iterations", config.saps.iterations);
  // Sparse-first propagation knobs (SpectralLimit mode; see DESIGN.md §7c):
  // the fill ratio past which the doubling densifies, and an optional
  // truncated walk-length horizon for very large n.
  config.propagation.fill_threshold = args.get_double(
      "propagation-fill-threshold", config.propagation.fill_threshold);
  config.propagation.spectral_horizon = args.get_size(
      "propagation-horizon", config.propagation.spectral_horizon);
  if (const auto errors = config.validate(); !errors.empty()) {
    throw Error("invalid inference config: " + format_config_errors(errors));
  }
  return config;
}

int cmd_assign(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw, merge({kBudgetOptions,
                  {"object-count", "reward-per-comparison",
                   "workers-per-task", "seed", "tasks-out"}}));
  const std::size_t n = args.require_size("object-count");
  const double reward = args.get_double("reward-per-comparison", 0.025);
  const std::size_t w = args.get_size("workers-per-task", 3);
  Rng rng(args.get_seed("seed", 42));

  BudgetModel budget =
      args.has("budget")
          ? BudgetModel(args.get_double("budget", 0.0), reward, w)
          : BudgetModel::for_selection_ratio(
                n, args.get_double("selection-ratio", 0.1), reward, w);
  const auto assignment =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  const std::vector<Edge> tasks(assignment.graph.edges().begin(),
                                assignment.graph.edges().end());

  out << "objects " << n << ", comparisons " << tasks.size() << " (ratio "
      << budget.selection_ratio(n) << "), degrees "
      << assignment.stats.min_degree << ".." << assignment.stats.max_degree
      << ", Pr_l " << assignment.stats.hp_likelihood_lower_bound
      << ", cost $" << budget.total_cost() << "\n";
  if (args.has("tasks-out")) {
    save_tasks(args.value("tasks-out"), tasks);
    out << "wrote " << args.value("tasks-out") << "\n";
  }
  return 0;
}

int cmd_simulate(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw, merge({kCrowdOptions,
                  {"object-count", "selection-ratio", "seed", "votes-out",
                   "truth-out", "tasks-out"}}));
  const std::size_t n = args.require_size("object-count");
  Rng rng(args.get_seed("seed", 42));

  const auto truth_perm = rng.permutation(n);
  const Ranking truth(
      std::vector<VertexId>(truth_perm.begin(), truth_perm.end()));
  const std::size_t pool = args.get_size("worker-pool", 30);
  const auto workers = sample_worker_pool(pool, parse_quality(args), rng);
  const BudgetModel budget = BudgetModel::for_selection_ratio(
      n, args.get_double("selection-ratio", 0.1),
      args.get_double("reward-per-comparison", 0.025),
      args.get_size("workers-per-task", 3));
  const auto assignment =
      generate_task_assignment(n, budget.unique_task_count(), rng);
  const std::vector<Edge> tasks(assignment.graph.edges().begin(),
                                assignment.graph.edges().end());
  const HitAssignment hits(
      tasks, HitConfig{5, args.get_size("workers-per-task", 3)}, pool, rng);
  const SimulatedCrowd crowd(truth, workers);
  const VoteBatch votes = crowd.collect(hits, rng);

  out << "simulated " << votes.size() << " votes over " << tasks.size()
      << " comparisons of " << n << " objects ($" << budget.total_cost()
      << ")\n";
  if (args.has("votes-out")) {
    save_votes(args.value("votes-out"), votes);
    out << "wrote " << args.value("votes-out") << "\n";
  }
  if (args.has("truth-out")) {
    save_ranking(args.value("truth-out"), truth);
    out << "wrote " << args.value("truth-out") << "\n";
  }
  if (args.has("tasks-out")) {
    save_tasks(args.value("tasks-out"), tasks);
    out << "wrote " << args.value("tasks-out") << "\n";
  }
  return 0;
}

int cmd_infer(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw,
      merge({kShapeOptions, kInferenceOptions, kObservabilityOptions,
             {"votes", "seed", "ranking-out"}}),
      {"check-invariants"});
  const VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");
  const auto [n, m] = derive_shape(votes, args);

  // Observability outputs: --trace (Chrome trace-event JSON) and --metrics
  // (RunReport JSON). CROWDRANK_TRACE=path stands in for --trace when the
  // flag is absent, so traces can be pulled from wrapped invocations.
  std::string trace_path = args.get_string("trace", "");
  if (trace_path.empty()) {
    if (const char* env = std::getenv("CROWDRANK_TRACE")) {
      trace_path = env;
    }
  }
  const std::string metrics_path = args.get_string("metrics", "");
  std::unique_ptr<trace::TraceSink> sink;
  if (!trace_path.empty() || !metrics_path.empty()) {
    sink = std::make_unique<trace::TraceSink>();
  }

  InferenceConfig config = inference_from_args(args);
  config.trace = sink.get();
  // Stage invariant validation: --check-invariants, or the process-wide
  // CROWDRANK_CHECK_INVARIANTS env switch (analysis/invariants.hpp).
  config.check_invariants = args.flag("check-invariants");
  const InferenceEngine engine(config);
  Rng rng(args.get_seed("seed", 1));
  const InferenceResult result = engine.infer(votes, n, m, rng);

  out << "inferred full ranking of " << n << " objects from "
      << votes.size() << " votes by " << m << " workers\n";
  if (config.check_invariants || analysis::invariant_checks_enabled()) {
    out << "invariant checks: all stage validators passed\n";
  }
  out << "truth discovery: " << result.step1.iterations << " iterations, "
      << result.one_edge_count << " 1-edges smoothed\n";
  out << "log preference probability: " << result.log_probability << "\n";
  const RankingConfidence confidence =
      ranking_confidence(result.closure, result.ranking);
  const auto tied =
      effectively_tied_groups(result.closure, result.ranking, 0.55);
  out << "boundary confidence: mean " << confidence.mean_belief << ", min "
      << confidence.min_belief << " (weakest boundary at position "
      << confidence.weakest_boundary << "); " << tied.size()
      << " groups at tie threshold 0.55\n";
  out << "ranking:";
  for (std::size_t p = 0; p < std::min<std::size_t>(n, 20); ++p) {
    out << ' ' << result.ranking.object_at(p);
  }
  if (n > 20) out << " ...";
  out << "\n";
  if (args.has("ranking-out")) {
    save_ranking(args.value("ranking-out"), result.ranking);
    out << "wrote " << args.value("ranking-out") << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    CR_EXPECTS(os.good(), "cannot open --trace output file");
    sink->write_chrome_trace(os);
    out << "wrote " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    trace::RunReport report("crowdrank infer");
    report.note("votes_file", args.require_string("votes"));
    report.note("objects", static_cast<std::int64_t>(n));
    report.note("workers", static_cast<std::int64_t>(m));
    report.note("votes", static_cast<std::int64_t>(votes.size()));
    report.note("search", args.get_string("search", "saps"));
    report.note("seed",
                static_cast<std::int64_t>(args.get_seed("seed", 1)));
    report.note("saps_iterations",
                static_cast<std::int64_t>(config.saps.iterations));
    trace::RunReport::Run& run = report.add_run("infer");
    run.note("log_probability", result.log_probability);
    run.note("one_edges", static_cast<std::int64_t>(result.one_edge_count));
    run.note("truth_discovery_iterations",
             static_cast<std::int64_t>(result.step1.iterations));
    run.capture(*sink);
    run.capture(result.timings);
    CR_EXPECTS(report.write_file(metrics_path),
               "cannot write --metrics output file");
    out << "wrote " << metrics_path << "\n";
  }
  return 0;
}

// -- crowdrank index / query: persistent artifacts + warm serving --------

/// Writes one framed artifact into the bundle directory; filesystem
/// refusals surface as CLI errors (artifact encoding itself cannot fail).
void write_bundle_artifact(const std::string& dir, const std::string& name,
                           const std::string& bytes, std::ostream& out) {
  const std::string path = (std::filesystem::path(dir) / name).string();
  if (const auto err = service::artifact::write_file(path, bytes)) {
    throw Error("cannot write artifact " + path + ": " + err->to_string());
  }
  out << "wrote " << path << "\n";
}

/// The request both commands build; everything here enters the content
/// key, so index and query share one constructor for it.
api::Request request_from_args(const Args& args, VoteBatch votes,
                               service::ResultCache& cache) {
  api::Request request;
  const BatchShape shape = derive_shape(votes, args);
  request.votes = std::move(votes);
  request.object_count = shape.object_count;
  request.worker_count = shape.worker_count;
  request.seed = args.get_seed("seed", 1);
  request.inference = inference_from_args(args);
  request.cache = &cache;
  return request;
}

int cmd_index(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw, merge({kShapeOptions, kInferenceOptions,
                  {"votes", "seed", "artifacts"}}));
  VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");
  const std::string dir = args.require_string("artifacts");

  // The ranked result lands on the cache's disk tier (<dir>/<key>.crart).
  // Refresh recomputes even when a stale artifact already sits under the
  // same key, so `index` is always overwrite-with-fresh-truth.
  service::ResultCacheConfig cache_config;
  cache_config.capacity = 1;
  cache_config.disk_dir = dir;
  service::ResultCache cache(cache_config);

  api::Request request = request_from_args(args, std::move(votes), cache);
  request.cache_control = service::CacheControl::Refresh;
  const api::Response response = api::rank(request);
  if (!response.ok()) {
    out << "indexing failed (" << service::outcome_name(response.outcome)
        << " at stage " << stage_name(response.stage)
        << "): " << response.reason << "\n";
    return 2;
  }

  out << "indexed " << request.object_count << " objects from "
      << request.votes.size() << " votes (seed " << request.seed << ")\n";
  out << "artifact key " << response.artifact_key << " (result schema "
      << response.artifact_schema_version << ")\n";

  // Supporting artifacts alongside the result: the input batch, the
  // comparison graph over original ids, and the engine's intermediate
  // products (which live in the hardened batch's compact id space).
  write_bundle_artifact(dir, "votes.crart",
                        service::artifact::encode(request.votes), out);
  TaskGraph tasks(request.object_count);
  for (const Vote& v : request.votes) {
    if (v.i == v.j || v.i >= request.object_count ||
        v.j >= request.object_count) {
      continue;  // hardening's problem, not the comparison graph's
    }
    tasks.add_edge(std::min(v.i, v.j), std::max(v.i, v.j));
  }
  write_bundle_artifact(dir, "task_graph.crart",
                        service::artifact::encode(tasks), out);
  if (response.inference.has_value()) {
    const std::size_t compact_n = response.inference->closure.rows();
    write_bundle_artifact(
        dir, "preference_graph.crart",
        service::artifact::encode(
            response.inference->step1.to_preference_graph(compact_n)),
        out);
    write_bundle_artifact(dir, "closure.crart",
                          service::artifact::encode(response.inference->closure),
                          out);
  }
  return 0;
}

int cmd_query(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw, merge({kShapeOptions, kInferenceOptions,
                  {"votes", "seed", "artifacts", "ranking-out"}}));
  VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");

  service::ResultCacheConfig cache_config;
  cache_config.capacity = 1;
  cache_config.disk_dir = args.require_string("artifacts");
  service::ResultCache cache(cache_config);

  api::Request request = request_from_args(args, std::move(votes), cache);
  request.cache_control = service::CacheControl::RequireHit;
  const api::Response response = api::rank(request);
  if (!response.served_from_cache) {
    // RequireHit turns a miss into a structured Rejected outcome; the
    // reason names the missing key. Exit 2 = "not indexed", distinct from
    // usage errors (1).
    out << "query miss: " << response.reason << "\n";
    return 2;
  }

  out << "served from artifact " << response.artifact_key
      << " (result schema " << response.artifact_schema_version
      << "), outcome " << service::outcome_name(response.outcome) << "\n";
  out << "log preference probability: " << response.log_probability << "\n";
  const std::vector<VertexId>& order = response.ranking.order;
  out << "ranking:";
  for (std::size_t p = 0; p < std::min<std::size_t>(order.size(), 20); ++p) {
    out << ' ' << order[p];
  }
  if (order.size() > 20) out << " ...";
  out << "\n";
  if (!response.ranking.excluded.empty()) {
    out << response.ranking.excluded.size()
        << " objects excluded (degraded result)\n";
  }
  if (args.has("ranking-out")) {
    save_ranking(args.value("ranking-out"),
                 Ranking(std::vector<VertexId>(order)));
    out << "wrote " << args.value("ranking-out") << "\n";
  }
  return 0;
}

int cmd_eval(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(raw, {"reference", "ranking", "k"});
  const Ranking reference = load_ranking(args.require_string("reference"));
  const Ranking ranking = load_ranking(args.require_string("ranking"));
  CR_EXPECTS(reference.size() == ranking.size(),
             "rankings cover different object counts");

  out << "objects            : " << reference.size() << "\n";
  out << "accuracy (1 - KT)  : " << ranking_accuracy(reference, ranking)
      << "\n";
  out << "kendall tau coeff  : "
      << kendall_tau_coefficient(reference, ranking) << "\n";
  out << "spearman rho       : " << spearman_rho(reference, ranking) << "\n";
  if (args.has("k")) {
    const std::size_t k = args.get_size("k", 5);
    out << "top-" << k << " precision    : "
        << top_k_precision(reference, ranking, k) << "\n";
    out << "top-" << k << " pair accuracy: "
        << top_k_pair_accuracy(reference, ranking, k) << "\n";
  }
  return 0;
}

int cmd_diagnose(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(raw, merge({kShapeOptions, {"votes"}}));
  const VoteBatch votes = load_votes(args.require_string("votes"));
  CR_EXPECTS(!votes.empty(), "votes file contains no votes");
  const auto [n, m] = derive_shape(votes, args);
  const RankabilityReport report = diagnose_votes(votes, n, m);
  out << format_report(report);
  return report.rankable ? 0 : 2;
}

int cmd_plan(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw,
      merge({kCrowdOptions, {"object-count", "target-accuracy", "seed"}}));
  PlanningConfig config;
  config.object_count = args.require_size("object-count");
  config.target_accuracy = args.get_double("target-accuracy", 0.9);
  config.worker_pool_size = args.get_size("worker-pool", 30);
  config.workers_per_task = args.get_size("workers-per-task", 3);
  config.reward_per_comparison =
      args.get_double("reward-per-comparison", 0.025);
  config.worker_quality = parse_quality(args);
  config.seed = args.get_seed("seed", 1);

  const auto plan = plan_budget_for_accuracy(config);
  if (!plan.has_value()) {
    out << "no budget reaches accuracy " << config.target_accuracy
        << " with this crowd profile (even all pairs miss it)\n";
    return 1;
  }
  out << "cheapest plan clearing accuracy " << config.target_accuracy
      << ":\n";
  out << "  selection ratio   : " << plan->selection_ratio << "\n";
  out << "  comparisons       : " << plan->unique_comparisons << "\n";
  out << "  cost              : $" << plan->total_cost << "\n";
  out << "  estimated accuracy: " << plan->estimated_accuracy << "\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(
      raw,
      merge({kObservabilityOptions,
             {"jobs", "results", "service-workers", "queue-capacity",
              "queue-policy", "deadline-ms", "telemetry",
              "telemetry-period-ms", "cache-dir", "cache-capacity"}}),
      {"check-invariants"});
  const std::vector<JobRecord> records =
      load_job_records(args.require_string("jobs"));
  CR_EXPECTS(!records.empty(), "jobs file contains no jobs");

  trace::TraceSink sink;
  service::ServiceConfig config;
  config.worker_count = args.get_size("service-workers", 1);
  config.queue_capacity = args.get_size("queue-capacity", records.size());
  const std::string policy = args.get_string("queue-policy", "reject");
  if (policy == "reject") {
    config.policy = service::QueuePolicy::RejectNew;
  } else if (policy == "shed-oldest") {
    config.policy = service::QueuePolicy::ShedOldest;
  } else {
    throw Error("--queue-policy must be reject or shed-oldest");
  }
  config.default_deadline =
      std::chrono::milliseconds(args.get_size("deadline-ms", 0));
  config.check_invariants = args.flag("check-invariants");
  config.trace = &sink;

  // The live telemetry plane (--telemetry DIR): periodic JSONL +
  // Prometheus snapshots while the batch runs, plus per-job postmortems.
  // Constructed before the service scope and reset right after it, so the
  // final flush lands before the results are reported.
  std::optional<obs::Telemetry> telemetry;
  if (args.has("telemetry")) {
    obs::TelemetryConfig telemetry_config;
    telemetry_config.directory = args.value("telemetry");
    telemetry_config.period = std::chrono::milliseconds(
        args.get_size("telemetry-period-ms", 250));
    telemetry.emplace(std::move(telemetry_config), config.worker_count);
    config.telemetry = &*telemetry;
  }

  // Warm-path result cache (--cache-dir / --cache-capacity), shared by
  // all executors; repeat jobs in the batch settle from it without the
  // infer stage. With --cache-dir the disk tier is the same bundle format
  // `crowdrank index` writes, so it persists across serve runs. The cache
  // keeps its own stats; per-job hit/miss counters land on telemetry.
  std::optional<service::ResultCache> cache;
  if (args.has("cache-dir") || args.has("cache-capacity")) {
    service::ResultCacheConfig cache_config;
    cache_config.capacity =
        std::max<std::size_t>(1, args.get_size("cache-capacity", 64));
    cache_config.disk_dir = args.get_string("cache-dir", "");
    cache.emplace(std::move(cache_config));
    config.cache = &*cache;
  }

  // The service records its own per-job spans on `sink`; installing the
  // same sink as the process-global one here additionally captures the
  // engine's internal step spans (the sink is thread-safe and parentage
  // is per-thread, so concurrent jobs interleave without corruption).
  const trace::ScopedSink scoped(&sink);

  // Jobs whose votes file cannot be read still get a structured Failed
  // line instead of aborting the whole batch. `slots` maps each record to
  // its drained result (or the synthesized failure).
  std::vector<service::JobResult> results(records.size());
  std::vector<std::size_t> submitted_slots;
  {
    service::RankingService svc(config);
    for (std::size_t slot = 0; slot < records.size(); ++slot) {
      const JobRecord& record = records[slot];
      service::RankingJob job;
      try {
        job.votes = load_votes(record.votes_path);
        job.inference.search = search_from_name(record.search);
      } catch (const std::exception& e) {
        results[slot].id = record.id;
        results[slot].outcome = service::JobOutcome::Failed;
        results[slot].stage = PipelineStage::Validation;
        results[slot].reason = e.what();
        continue;
      }
      job.object_count = record.object_count;
      job.worker_count = record.worker_count;
      job.seed = record.seed;
      job.deadline = std::chrono::milliseconds(record.deadline_ms);
      if (record.saps_iterations > 0) {
        job.inference.saps.iterations = record.saps_iterations;
      }
      if (!record.fail_before.empty()) {
        // Validated at parse time, so the lookup cannot miss here.
        job.fault.fail_before = stage_from_name(record.fail_before);
        if (!record.fail_reason.empty()) {
          job.fault.fail_reason = record.fail_reason;
        }
      }
      svc.submit(std::move(job));
      submitted_slots.push_back(slot);
    }
    const std::vector<service::JobResult> drained = svc.drain();
    for (std::size_t k = 0; k < drained.size(); ++k) {
      results[submitted_slots[k]] = drained[k];
      results[submitted_slots[k]].id = records[submitted_slots[k]].id;
    }
  }
  if (telemetry.has_value()) {
    const std::string dir = telemetry->config().directory;
    telemetry.reset();  // stops the exporter and flushes a final snapshot
    out << "wrote telemetry to " << dir << "\n";
  }
  if (cache.has_value()) {
    const service::CacheStats cache_stats = cache->stats();
    out << "cache: " << (cache_stats.hits + cache_stats.disk_hits)
        << " hits (" << cache_stats.disk_hits << " disk), "
        << cache_stats.misses << " misses, " << cache_stats.evictions
        << " evictions\n";
  }

  std::size_t ok_count = 0;
  std::map<std::string, std::size_t> outcome_counts;
  for (const service::JobResult& r : results) {
    ++outcome_counts[service::outcome_name(r.outcome)];
    if (r.outcome == service::JobOutcome::Completed ||
        r.outcome == service::JobOutcome::Degraded) {
      ++ok_count;
    }
  }

  if (args.has("results")) {
    std::ofstream os(args.value("results"));
    CR_EXPECTS(os.good(), "cannot open --results output file");
    for (const service::JobResult& r : results) {
      os << format_job_result(r) << "\n";
    }
    out << "wrote " << args.value("results") << "\n";
  } else {
    for (const service::JobResult& r : results) {
      out << format_job_result(r, /*include_ranking=*/false) << "\n";
    }
  }
  out << "served " << records.size() << " jobs with "
      << config.worker_count << " workers: ";
  bool first = true;
  for (const auto& [name, count] : outcome_counts) {
    if (!first) out << ", ";
    out << count << " " << name;
    first = false;
  }
  out << "\n";

  if (args.has("trace")) {
    std::ofstream os(args.value("trace"));
    CR_EXPECTS(os.good(), "cannot open --trace output file");
    sink.write_chrome_trace(os);
    out << "wrote " << args.value("trace") << "\n";
  }
  if (args.has("metrics")) {
    trace::RunReport report("crowdrank serve");
    report.note("jobs_file", args.require_string("jobs"));
    report.note("jobs", static_cast<std::int64_t>(records.size()));
    report.note("service_workers",
                static_cast<std::int64_t>(config.worker_count));
    report.note("queue_policy", policy);
    trace::RunReport::Run& run = report.add_run("serve");
    for (const auto& [name, count] : outcome_counts) {
      run.note("outcome_" + name, static_cast<std::int64_t>(count));
    }
    run.capture(sink);
    CR_EXPECTS(report.write_file(args.value("metrics")),
               "cannot write --metrics output file");
    out << "wrote " << args.value("metrics") << "\n";
  }
  return ok_count == records.size() ? 0 : 2;
}

// -- crowdrank top: render the live telemetry stream ---------------------

/// Accepts either the telemetry directory or the telemetry.jsonl file.
std::string telemetry_file(const std::string& arg) {
  const std::filesystem::path path(arg);
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return (path / "telemetry.jsonl").string();
  }
  return arg;
}

/// Parses every complete snapshot line. A malformed line is skipped, not
/// fatal: the exporter may be mid-append while we read (tail semantics).
std::vector<obs::JsonValue> load_snapshots(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("cannot open telemetry file '" + path + "'");
  }
  std::vector<obs::JsonValue> snapshots;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      obs::JsonValue value = obs::parse_json(line);
      if (value.kind == obs::JsonValue::Kind::Object) {
        snapshots.push_back(std::move(value));
      }
    } catch (const Error&) {
      // truncated trailing line during a live append
    }
  }
  return snapshots;
}

void render_top(const std::vector<obs::JsonValue>& snapshots,
                std::size_t rows, std::ostream& out) {
  const auto as_count = [](double v) {
    return std::to_string(static_cast<std::uint64_t>(v));
  };

  // History: one row per snapshot window, newest last.
  TableWriter history({"seq", "uptime_s", "jobs/s", "p50_ms", "p99_ms",
                       "queue", "finished"});
  const std::size_t first =
      snapshots.size() > rows ? snapshots.size() - rows : 0;
  for (std::size_t i = first; i < snapshots.size(); ++i) {
    const obs::JsonValue& s = snapshots[i];
    const obs::JsonValue* window = s.find("window");
    const obs::JsonValue* gauges = s.find("gauges");
    double p50 = 0.0;
    double p99 = 0.0;
    if (const obs::JsonValue* histograms = s.find("histograms")) {
      if (const obs::JsonValue* job = histograms->find("service.job_ms")) {
        p50 = job->number_at("p50", 0.0);
        p99 = job->number_at("p99", 0.0);
      }
    }
    history.add_row(
        {as_count(s.number_at("seq", 0.0)),
         TableWriter::fmt(s.number_at("t_us", 0.0) / 1e6, 1),
         TableWriter::fmt(
             window != nullptr ? window->number_at("jobs_per_sec", 0.0)
                               : 0.0,
             2),
         TableWriter::fmt(p50, 2), TableWriter::fmt(p99, 2),
         as_count(gauges != nullptr
                      ? gauges->number_at("service.queue_depth", 0.0)
                      : 0.0),
         as_count(window != nullptr ? window->number_at("finished", 0.0)
                                    : 0.0)});
  }
  history.print_aligned(out);

  const obs::JsonValue& latest = snapshots.back();

  // Outcome counters of the latest snapshot, one summary line.
  if (const obs::JsonValue* counters = latest.find("counters")) {
    const std::string outcome_prefix = "service.outcome.";
    bool any = false;
    for (const auto& [name, value] : counters->members) {
      if (name.rfind(outcome_prefix, 0) != 0 || !value.is_number()) {
        continue;
      }
      out << (any ? ", " : "\noutcomes: ")
          << name.substr(outcome_prefix.size()) << " "
          << as_count(value.number);
      any = true;
    }
    if (any) {
      out << "\n";
    }
  }

  // Per-stage latency ladder of the latest snapshot.
  if (const obs::JsonValue* histograms = latest.find("histograms")) {
    TableWriter stages({"stage", "count", "p50_ms", "p99_ms", "total_ms"});
    const std::string stage_prefix = "service.stage_ms.";
    for (const auto& [name, value] : histograms->members) {
      if (name.rfind(stage_prefix, 0) != 0) {
        continue;
      }
      stages.add_row({name.substr(stage_prefix.size()),
                      as_count(value.number_at("count", 0.0)),
                      TableWriter::fmt(value.number_at("p50", 0.0), 2),
                      TableWriter::fmt(value.number_at("p99", 0.0), 2),
                      TableWriter::fmt(value.number_at("sum", 0.0), 1)});
    }
    if (stages.row_count() > 0) {
      out << "\n";
      stages.print_aligned(out);
    }
  }
}

int cmd_top(const std::vector<std::string>& argv, std::ostream& out) {
  const auto raw = to_argv(argv);
  const Args args = parse_args(raw, {"telemetry", "interval-ms", "rows"},
                               {"follow"});
  const std::string path = telemetry_file(args.require_string("telemetry"));
  const std::size_t rows = std::max<std::size_t>(1, args.get_size("rows", 10));
  const bool follow = args.flag("follow");
  const auto interval =
      std::chrono::milliseconds(args.get_size("interval-ms", 500));

  bool rendered = false;
  while (true) {
    const std::vector<obs::JsonValue> snapshots = load_snapshots(path);
    if (follow) {
      out << "\x1b[2J\x1b[H";  // clear + home between refreshes
    }
    if (snapshots.empty()) {
      out << "no telemetry snapshots yet in " << path << "\n";
    } else {
      rendered = true;
      render_top(snapshots, rows, out);
    }
    if (!follow) {
      break;
    }
    std::this_thread::sleep_for(interval);
  }
  return rendered ? 0 : 2;
}

}  // namespace

std::string cli_usage() {
  std::ostringstream usage;
  usage
      << "crowdrank — pairwise ranking aggregation by non-interactive "
         "crowdsourcing\n\n"
      << "usage: crowdrank <command> [options]\n\n"
      << "commands:\n"
      << "  assign    --object-count N [--selection-ratio R | --budget $]\n"
      << "            [--reward-per-comparison $] [--workers-per-task W]\n"
      << "            [--seed S] [--tasks-out F]\n"
      << "  simulate  --object-count N [--selection-ratio R]\n"
      << "            [--worker-pool M] [--workers-per-task W]\n"
      << "            [--quality high|medium|low]\n"
      << "            [--distribution gaussian|uniform] [--seed S]\n"
      << "            [--votes-out F] [--truth-out F] [--tasks-out F]\n"
      << "  infer     --votes F [--object-count N] [--worker-count M]\n"
      << "            [--search saps|taps|heldkarp] [--saps-iterations I]\n"
      << "            [--propagation-fill-threshold T] "
         "[--propagation-horizon H]\n"
      << "            [--seed S] [--ranking-out F] [--check-invariants]\n"
      << "            [--trace F.json] [--metrics F.json]\n"
      << "            (CROWDRANK_TRACE=F.json substitutes for --trace;\n"
      << "             CROWDRANK_CHECK_INVARIANTS=1 for --check-invariants)\n"
      << "  index     --votes F --artifacts DIR [--object-count N]\n"
      << "            [--worker-count M] [--search ...] "
         "[--saps-iterations I]\n"
      << "            [--propagation-fill-threshold T] "
         "[--propagation-horizon H]\n"
      << "            [--seed S]\n"
      << "            (ranks and persists the artifact bundle: the framed\n"
      << "             result under its content key plus votes / task graph\n"
      << "             / preference graph / closure artifacts)\n"
      << "  query     --votes F --artifacts DIR [--object-count N]\n"
      << "            [--worker-count M] [--search ...] "
         "[--saps-iterations I]\n"
      << "            [--propagation-fill-threshold T] "
         "[--propagation-horizon H]\n"
      << "            [--seed S] [--ranking-out F]\n"
      << "            (serves the stored result without running inference;\n"
      << "             exit 2 when the bundle has no entry for this work)\n"
      << "  serve     --jobs F.jsonl [--results F.jsonl]\n"
      << "            [--service-workers N] [--queue-capacity C]\n"
      << "            [--queue-policy reject|shed-oldest] [--deadline-ms D]\n"
      << "            [--check-invariants] [--trace F.json]\n"
      << "            [--metrics F.json] [--telemetry DIR]\n"
      << "            [--telemetry-period-ms P] [--cache-dir DIR]\n"
      << "            [--cache-capacity C]\n"
      << "            (exit 0 all jobs ranked, 2 otherwise; --telemetry\n"
      << "             writes telemetry.jsonl, metrics.prom, postmortems/;\n"
      << "             --cache-dir/--cache-capacity serve repeat jobs from\n"
      << "             the result cache)\n"
      << "  top       --telemetry DIR|F.jsonl [--follow] [--interval-ms I]\n"
      << "            [--rows N]\n"
      << "            (renders the serve telemetry stream as a live table;\n"
      << "             one-shot by default, exit 2 when no snapshots yet)\n"
      << "  eval      --reference F --ranking F [--k K]\n"
      << "  diagnose  --votes F [--object-count N] [--worker-count M]\n"
      << "            (exit 0 rankable, 2 not cleanly rankable)\n"
      << "  plan      --object-count N [--target-accuracy A]\n"
      << "            [--worker-pool M] [--workers-per-task W]\n"
      << "            [--reward-per-comparison $] [--quality ...]\n"
      << "            [--distribution ...] [--seed S]\n"
      << "  version   print build information (also --version)\n";
  return usage.str();
}

int run_cli(const std::vector<std::string>& argv, std::ostream& out,
            std::ostream& err) {
  try {
    if (argv.size() < 2) {
      err << cli_usage();
      return 1;
    }
    const std::string& command = argv[1];
    if (command == "assign") return cmd_assign(argv, out);
    if (command == "simulate") return cmd_simulate(argv, out);
    if (command == "infer") return cmd_infer(argv, out);
    if (command == "index") return cmd_index(argv, out);
    if (command == "query") return cmd_query(argv, out);
    if (command == "serve") return cmd_serve(argv, out);
    if (command == "top") return cmd_top(argv, out);
    if (command == "eval") return cmd_eval(argv, out);
    if (command == "plan") return cmd_plan(argv, out);
    if (command == "diagnose") return cmd_diagnose(argv, out);
    if (command == "version" || command == "--version") {
      out << build_info_string() << "\n";
      return 0;
    }
    if (command == "help" || command == "--help") {
      out << cli_usage();
      return 0;
    }
    err << "unknown command '" << command << "'\n\n" << cli_usage();
    return 1;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace crowdrank::io
